//! Noise-aware routing of a VQE ansatz: the Figure 11 experiment in
//! miniature. Compares SABRE, NASSC and their +HA variants on the synthetic
//! `ibmq_montreal` calibration and reports the simulated success rate.
//!
//! Run with: `cargo run --release --example vqe_noise_aware`

use nassc::{RouterKind, TranspileOptions, Transpiler};
use nassc_benchmarks::bernstein_vazirani;
use nassc_sim::{success_rate, NoiseModel};
use nassc_topology::{Calibration, CouplingMap};

fn main() {
    // A small deterministic-output circuit so the success rate is meaningful.
    let circuit = bernstein_vazirani(5);
    let device = CouplingMap::ibmq_montreal();
    let calibration = Calibration::synthetic(&device, 2022);
    let noise = NoiseModel::from_calibration(&device, calibration.clone());
    let shots = 2048;

    let variants = [
        ("SABRE", TranspileOptions::new().router(RouterKind::Sabre)),
        ("NASSC", TranspileOptions::new()),
        (
            "SABRE+HA",
            TranspileOptions::new()
                .router(RouterKind::Sabre)
                .calibration(calibration.clone()),
        ),
        ("NASSC+HA", TranspileOptions::new().calibration(calibration)),
    ];

    // One session serves all four variants: the baseline is prepared once,
    // and the distance cache holds one matrix per calibration (the plain
    // hop-count one and the noise-aware one of the +HA variants).
    let session = Transpiler::new(device.clone(), TranspileOptions::new().seed(3));
    println!("Bernstein-Vazirani (5 qubits) on ibmq_montreal, {shots} shots\n");
    println!(
        "{:<10} {:>7} {:>7} {:>13}",
        "router", "CNOTs", "depth", "success rate"
    );
    for (name, options) in variants {
        let result = session
            .transpile_with(&circuit, &options.seed(3))
            .expect("transpile");
        let rate = success_rate(&result.circuit, &noise, shots, 7);
        println!(
            "{:<10} {:>7} {:>7} {:>12.1}%",
            name,
            result.cx_count(),
            result.depth(),
            100.0 * rate
        );
    }
    let stats = session.cache_stats();
    println!(
        "\nsession caches: {} hits, {} misses (distance matrices: {} built)",
        stats.hits(),
        stats.misses(),
        stats.distance_misses
    );
}
