//! How device connectivity shapes routing overhead: runs the QFT benchmark
//! over progressively better-connected devices and reports NASSC's advantage
//! on each (§VI-C's observation that sparser maps leave more room for
//! optimization-aware routing).
//!
//! Run with: `cargo run --release --example topology_comparison`

use nassc::{RouterKind, TranspileOptions, Transpiler};
use nassc_benchmarks::qft;
use nassc_topology::CouplingMap;

fn main() {
    let circuit = qft(10);

    let devices = [
        ("linear-16", CouplingMap::linear(16)),
        ("grid-4x4", CouplingMap::grid(4, 4)),
        ("ibmq_montreal", CouplingMap::ibmq_montreal()),
        ("fully connected", CouplingMap::fully_connected(16)),
    ];

    // A session is per-device; the device-independent pre-routing baseline
    // still only costs once per session thanks to the prepared cache.
    let baseline = Transpiler::new(devices[0].1.clone(), TranspileOptions::new())
        .prepared(&circuit)
        .expect("baseline")
        .cx_count();
    println!("QFT-10: {baseline} CNOTs before routing\n");

    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12}",
        "topology", "diameter", "SABRE added", "NASSC added", "NASSC gain"
    );
    for (name, device) in devices {
        let session = Transpiler::new(device.clone(), TranspileOptions::new().seed(5));
        let sabre = session
            .transpile_with(
                &circuit,
                &TranspileOptions::new().router(RouterKind::Sabre).seed(5),
            )
            .expect("sabre");
        let nassc = session.transpile(&circuit).expect("nassc");
        let sabre_add = sabre.cx_count().saturating_sub(baseline);
        let nassc_add = nassc.cx_count().saturating_sub(baseline);
        let gain = if sabre_add == 0 {
            0.0
        } else {
            100.0 * (1.0 - nassc_add as f64 / sabre_add as f64)
        };
        println!(
            "{:<18} {:>9} {:>12} {:>12} {:>11.1}%",
            name,
            device.diameter().unwrap_or(0),
            sabre_add,
            nassc_add,
            gain
        );
    }
}
