//! How device connectivity shapes routing overhead: runs the QFT benchmark
//! over progressively better-connected devices and reports NASSC's advantage
//! on each (§VI-C's observation that sparser maps leave more room for
//! optimization-aware routing).
//!
//! Run with: `cargo run --release --example topology_comparison`

use nassc::{optimize_without_routing, transpile, TranspileOptions};
use nassc_benchmarks::qft;
use nassc_topology::CouplingMap;

fn main() {
    let circuit = qft(10);
    let baseline = optimize_without_routing(&circuit)
        .expect("baseline")
        .cx_count();
    println!("QFT-10: {baseline} CNOTs before routing\n");

    let devices = [
        ("linear-16", CouplingMap::linear(16)),
        ("grid-4x4", CouplingMap::grid(4, 4)),
        ("ibmq_montreal", CouplingMap::ibmq_montreal()),
        ("fully connected", CouplingMap::fully_connected(16)),
    ];

    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>12}",
        "topology", "diameter", "SABRE added", "NASSC added", "NASSC gain"
    );
    for (name, device) in devices {
        let sabre = transpile(&circuit, &device, &TranspileOptions::sabre(5)).expect("sabre");
        let nassc = transpile(&circuit, &device, &TranspileOptions::nassc(5)).expect("nassc");
        let sabre_add = sabre.cx_count().saturating_sub(baseline);
        let nassc_add = nassc.cx_count().saturating_sub(baseline);
        let gain = if sabre_add == 0 {
            0.0
        } else {
            100.0 * (1.0 - nassc_add as f64 / sabre_add as f64)
        };
        println!(
            "{:<18} {:>9} {:>12} {:>12} {:>11.1}%",
            name,
            device.diameter().unwrap_or(0),
            sabre_add,
            nassc_add,
            gain
        );
    }
}
