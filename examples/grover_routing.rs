//! Routing a Grover benchmark onto the three evaluation topologies and
//! comparing SABRE with NASSC on each.
//!
//! Run with: `cargo run --release --example grover_routing`

use nassc::{RouterKind, SessionJob, TranspileOptions, Transpiler};
use nassc_benchmarks::grover;
use nassc_topology::CouplingMap;

fn main() {
    let circuit = grover(6);

    let devices = [
        ("ibmq_montreal (heavy-hex)", CouplingMap::ibmq_montreal()),
        ("25-qubit line", CouplingMap::linear(25)),
        ("5x5 grid", CouplingMap::grid(5, 5)),
    ];
    let baseline = Transpiler::new(devices[0].1.clone(), TranspileOptions::new())
        .prepared(&circuit)
        .expect("baseline");
    println!(
        "Grover (6 qubits): {} CNOTs, depth {} before routing\n",
        baseline.cx_count(),
        baseline.depth()
    );

    println!(
        "{:<28} {:>11} {:>11} {:>10}",
        "topology", "SABRE CNOTs", "NASSC CNOTs", "reduction"
    );
    let runs = 3u64;
    for (name, device) in devices {
        // One session per device; the whole seed × router grid goes through
        // it as a single batch, fanned across the worker pool.
        let session = Transpiler::new(device.clone(), TranspileOptions::new());
        let mut jobs = Vec::new();
        for seed in 0..runs {
            jobs.push(SessionJob::with_options(
                &circuit,
                TranspileOptions::new().router(RouterKind::Sabre).seed(seed),
            ));
            jobs.push(SessionJob::with_options(
                &circuit,
                TranspileOptions::new().seed(seed),
            ));
        }
        let results = session.transpile_jobs(&jobs);
        let mut sabre_cx = 0usize;
        let mut nassc_cx = 0usize;
        for pair in results.chunks_exact(2) {
            sabre_cx += pair[0].as_ref().expect("sabre").cx_count();
            nassc_cx += pair[1].as_ref().expect("nassc").cx_count();
        }
        let sabre_avg = sabre_cx as f64 / runs as f64;
        let nassc_avg = nassc_cx as f64 / runs as f64;
        println!(
            "{:<28} {:>11.1} {:>11.1} {:>9.1}%",
            name,
            sabre_avg,
            nassc_avg,
            100.0 * (1.0 - nassc_avg / sabre_avg)
        );
    }
}
