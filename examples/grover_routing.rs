//! Routing a Grover benchmark onto the three evaluation topologies and
//! comparing SABRE with NASSC on each.
//!
//! Run with: `cargo run --release --example grover_routing`

use nassc::{optimize_without_routing, transpile, TranspileOptions};
use nassc_benchmarks::grover;
use nassc_topology::CouplingMap;

fn main() {
    let circuit = grover(6);
    let baseline = optimize_without_routing(&circuit).expect("baseline");
    println!(
        "Grover (6 qubits): {} CNOTs, depth {} before routing\n",
        baseline.cx_count(),
        baseline.depth()
    );

    let devices = [
        ("ibmq_montreal (heavy-hex)", CouplingMap::ibmq_montreal()),
        ("25-qubit line", CouplingMap::linear(25)),
        ("5x5 grid", CouplingMap::grid(5, 5)),
    ];
    println!(
        "{:<28} {:>11} {:>11} {:>10}",
        "topology", "SABRE CNOTs", "NASSC CNOTs", "reduction"
    );
    for (name, device) in devices {
        let mut sabre_cx = 0usize;
        let mut nassc_cx = 0usize;
        let runs = 3;
        for seed in 0..runs {
            sabre_cx += transpile(&circuit, &device, &TranspileOptions::sabre(seed))
                .expect("sabre")
                .cx_count();
            nassc_cx += transpile(&circuit, &device, &TranspileOptions::nassc(seed))
                .expect("nassc")
                .cx_count();
        }
        let sabre_avg = sabre_cx as f64 / runs as f64;
        let nassc_avg = nassc_cx as f64 / runs as f64;
        println!(
            "{:<28} {:>11.1} {:>11.1} {:>9.1}%",
            name,
            sabre_avg,
            nassc_avg,
            100.0 * (1.0 - nassc_avg / sabre_avg)
        );
    }
}
