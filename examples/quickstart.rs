//! Quickstart: build a circuit, open a [`Transpiler`] session for the
//! device, transpile with SABRE and with NASSC, and compare the CNOT
//! overhead.
//!
//! Run with: `cargo run --example quickstart`

use nassc::{RouterKind, TranspileOptions, Transpiler};
use nassc_circuit::QuantumCircuit;
use nassc_topology::CouplingMap;

fn main() {
    // A small entangling circuit whose connectivity does not match a line.
    let mut circuit = QuantumCircuit::new(5);
    circuit.h(0);
    for i in 0..4 {
        circuit.cx(i, i + 1);
    }
    circuit.cx(0, 4).cx(1, 3).cx(0, 2);

    // One session per device. Both routers share its caches: the pre-routing
    // baseline is computed once and served back by `prepared`.
    let session = Transpiler::new(CouplingMap::linear(5), TranspileOptions::new().seed(7));
    let baseline = session.prepared(&circuit).expect("baseline optimization");
    println!(
        "original circuit: {} CNOTs, depth {}",
        baseline.cx_count(),
        baseline.depth()
    );

    let sabre = session
        .transpile_with(
            &circuit,
            &TranspileOptions::new().router(RouterKind::Sabre).seed(7),
        )
        .expect("sabre");
    let nassc = session.transpile(&circuit).expect("nassc");

    println!(
        "Qiskit+SABRE : {} CNOTs ({} added), depth {}, {} SWAPs inserted",
        sabre.cx_count(),
        sabre.cx_count() - baseline.cx_count(),
        sabre.depth(),
        sabre.swap_count
    );
    println!(
        "Qiskit+NASSC : {} CNOTs ({} added), depth {}, {} SWAPs inserted",
        nassc.cx_count(),
        nassc.cx_count() - baseline.cx_count(),
        nassc.depth(),
        nassc.swap_count
    );
    println!(
        "NASSC saves {} CNOTs on this routing problem.",
        sabre.cx_count().saturating_sub(nassc.cx_count())
    );
    let stats = session.cache_stats();
    println!(
        "session caches: {} hits, {} misses across both requests",
        stats.hits(),
        stats.misses()
    );
}
