//! Quickstart: build a circuit, transpile it with SABRE and with NASSC, and
//! compare the CNOT overhead.
//!
//! Run with: `cargo run --example quickstart`

use nassc::{optimize_without_routing, transpile, TranspileOptions};
use nassc_circuit::QuantumCircuit;
use nassc_topology::CouplingMap;

fn main() {
    // A small entangling circuit whose connectivity does not match a line.
    let mut circuit = QuantumCircuit::new(5);
    circuit.h(0);
    for i in 0..4 {
        circuit.cx(i, i + 1);
    }
    circuit.cx(0, 4).cx(1, 3).cx(0, 2);

    let device = CouplingMap::linear(5);
    let baseline = optimize_without_routing(&circuit).expect("baseline optimization");
    println!(
        "original circuit: {} CNOTs, depth {}",
        baseline.cx_count(),
        baseline.depth()
    );

    let sabre = transpile(&circuit, &device, &TranspileOptions::sabre(7)).expect("sabre");
    let nassc = transpile(&circuit, &device, &TranspileOptions::nassc(7)).expect("nassc");

    println!(
        "Qiskit+SABRE : {} CNOTs ({} added), depth {}, {} SWAPs inserted",
        sabre.cx_count(),
        sabre.cx_count() - baseline.cx_count(),
        sabre.depth(),
        sabre.swap_count
    );
    println!(
        "Qiskit+NASSC : {} CNOTs ({} added), depth {}, {} SWAPs inserted",
        nassc.cx_count(),
        nassc.cx_count() - baseline.cx_count(),
        nassc.depth(),
        nassc.swap_count
    );
    println!(
        "NASSC saves {} CNOTs on this routing problem.",
        sabre.cx_count().saturating_sub(nassc.cx_count())
    );
}
