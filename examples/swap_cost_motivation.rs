//! The paper's motivating observation (Figures 1, 3 and 4): not all SWAPs
//! cost three CNOTs once the optimizer has run.
//!
//! Run with: `cargo run --example swap_cost_motivation`

use nassc_circuit::QuantumCircuit;
use nassc_math::Matrix4;
use nassc_passes::standard_optimization_pipeline;
use nassc_synthesis::two_qubit_cnot_cost;

fn main() {
    // A SWAP in isolation really does cost three CNOTs.
    let lone_swap = two_qubit_cnot_cost(&Matrix4::swap()).expect("decomposition");
    println!("SWAP alone                      : {lone_swap} CNOTs");

    // Merged with a neighbouring CNOT (Figure 1b / Figure 3), re-synthesis of
    // the two-qubit block needs only two CNOTs — the SWAP costs one extra.
    let merged = Matrix4::swap().mul(&Matrix4::cnot());
    let merged_cost = two_qubit_cnot_cost(&merged).expect("decomposition");
    println!("SWAP merged with a CNOT block   : {merged_cost} CNOTs (1 extra)");

    // Next to a generic three-CNOT block the SWAP is free.
    let mut block = QuantumCircuit::new(2);
    block
        .cx(0, 1)
        .rz(0.31, 1)
        .ry(0.7, 0)
        .cx(1, 0)
        .rz(0.9, 0)
        .cx(0, 1)
        .ry(1.2, 1);
    block.swap(0, 1);
    let optimized = standard_optimization_pipeline()
        .run(&block)
        .expect("optimization");
    println!(
        "SWAP appended to a 3-CNOT block : {} CNOTs after re-synthesis (0 extra)",
        optimized.cx_count()
    );

    // Figure 4: with the right decomposition orientation a SWAP's first CNOT
    // cancels against a commuting CNOT already in the circuit.
    let mut cancellation = QuantumCircuit::new(3);
    cancellation.cx(2, 1); // original gate
    cancellation.cx(1, 2).cx(2, 1).cx(1, 2); // badly oriented SWAP
    let bad = standard_optimization_pipeline()
        .run(&cancellation)
        .expect("optimization");
    let mut oriented = QuantumCircuit::new(3);
    oriented.cx(2, 1);
    oriented.cx(2, 1).cx(1, 2).cx(2, 1); // optimization-aware orientation
    let good = standard_optimization_pipeline()
        .run(&oriented)
        .expect("optimization");
    println!(
        "SWAP after a commuting CNOT     : {} CNOTs with the fixed template, {} with the optimization-aware orientation",
        bad.cx_count(),
        good.cx_count()
    );
}
