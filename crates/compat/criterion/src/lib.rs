//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim reproduces
//! the subset of criterion's API that the `nassc-bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `criterion_group!`
//! and `criterion_main!` — with plain wall-clock timing instead of
//! statistics. Each benchmark runs a short warm-up followed by `sample_size`
//! timed iterations and prints the mean per-iteration time. Swap in the real
//! criterion (same manifest entry, registry source) when network access is
//! available for publication-grade numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement state handed to the `|b| b.iter(...)` closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `routine`, keeping each return value alive
    /// until after the measurement so it cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up pass, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identity function that defeats constant-folding of benchmark results.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, e.g. `sabre/grover_n4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `function/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Top-level harness object, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLE_SIZE: u64 = 10;

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: sample_size.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!(
        "{label:<40} time: {:>12.3} µs/iter ({} iters)",
        per_iter * 1e6,
        bencher.iterations
    );
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing configuration such as `sample_size`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("  {}", id.id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Declares a function running every listed benchmark against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0u64;
        Criterion::default().bench_function("counter", |b| b.iter(|| runs += 1));
        // One warm-up call plus DEFAULT_SAMPLE_SIZE timed calls.
        assert_eq!(runs, DEFAULT_SAMPLE_SIZE + 1);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("f", "x"), &2u64, |b, step| {
            b.iter(|| runs += step)
        });
        group.finish();
        assert_eq!(runs, 2 * (3 + 1));
    }
}
