//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of proptest that `tests/property_tests.rs` relies on: the
//! [`proptest!`] macro over named `arg in strategy` bindings, range and tuple
//! strategies, [`any`], `proptest::collection::vec`, [`ProptestConfig`], and
//! the `prop_assert*` macros. Sampling is purely random (deterministically
//! seeded per case index) — there is no shrinking, so a failure reports the
//! exact sampled inputs via the panic message instead of a minimized case.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy just
/// samples directly from a seeded generator.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for the full value domain of `T` (see [`any`]).
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Mirrors `proptest::prelude::any::<T>()`: every value of `T` equally likely.
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Builds the per-case generator. Public for use by the [`proptest!`]
/// expansion only.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // A stable per-test stream: hash the test name, mix in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run for `cases` deterministically seeded random samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.5f64..1.5) {
            prop_assert!(x < 10);
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(
            values in crate::collection::vec((any::<u8>(), 0usize..4), 2..7),
        ) {
            prop_assert!((2..7).contains(&values.len()));
            prop_assert!(values.iter().all(|(_, small)| *small < 4));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: f64 = crate::__case_rng("t", 3).gen();
        let b: f64 = crate::__case_rng("t", 3).gen();
        let c: f64 = crate::__case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
