//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the (small) subset of the `rand 0.8` API that the NASSC
//! crates use: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — fast, tiny,
//! and statistically solid enough for seeded test/benchmark reproducibility
//! (it is the generator Vigna recommends for seeding xoshiro).
//!
//! Determinism contract: for a fixed seed the whole sequence is fixed, which
//! is all the NASSC pipelines (seeded routing, synthetic calibrations,
//! property tests) rely on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose sequence is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution,
/// mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`inclusive == false`) or
    /// `[low, high]` (`inclusive == true`). Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "cannot sample from an empty range"
                );
                // Width via i128 so signed bounds cannot overflow.
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                // Modulo bias is < span / 2^64 — irrelevant for the tiny
                // spans used in tests and benchmark generators.
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        let _ = inclusive; // [low, high) and [low, high] coincide for floats here
        assert!(low < high, "cannot sample from an empty range");
        let unit = f64::sample(rng);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        let _ = inclusive;
        assert!(low < high, "cannot sample from an empty range");
        let unit = f32::sample(rng);
        low + (high - low) * unit
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (only `shuffle` is provided).

    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
