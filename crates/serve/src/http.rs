//! A minimal HTTP/1.1 subset over `std::io` — just enough protocol for the
//! transpilation daemon, with zero dependencies.
//!
//! Supported: one request per connection (every response carries
//! `Connection: close`), request line + headers + `Content-Length` bodies,
//! query strings with percent-decoding. Not supported (and rejected
//! cleanly): chunked transfer encoding, multiline headers, bodies above the
//! configured cap.

use std::io::{BufRead, Write};

/// Hard cap on a single request/header line, against unbounded buffering.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Hard cap on the number of request headers.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// The path without its query string (e.g. `/transpile`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The first query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-level protocol failure, carrying the HTTP status the server
/// should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The status to respond with (400, 408, 413, …).
    pub status: u16,
    /// Human-readable description for the response body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason(self.status),
            self.message
        )
    }
}

impl std::error::Error for HttpError {}

/// Reads one line (up to CRLF or LF), rejecting lines above the cap.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = std::io::Read::read(reader, &mut byte)
            .map_err(|e| HttpError::new(408, format!("reading request: {e}")))?;
        if n == 0 {
            if line.is_empty() {
                return Err(HttpError::new(400, "connection closed before request"));
            }
            break;
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::new(431, "request line or header too long"));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::new(400, "request is not valid UTF-8"))
}

/// Percent-decodes a query component (`%41` → `A`, `+` → space). Malformed
/// escapes pass through verbatim rather than failing the whole request.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads and parses one HTTP request from `reader`.
///
/// # Errors
///
/// [`HttpError`] with the status the caller should answer with: 400 for
/// malformed syntax, 408 for read timeouts, 413 for bodies above
/// `max_body_bytes`, 431 for oversized header lines.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported version {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(
            400,
            "chunked transfer encoding is not supported",
        ));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body_bytes {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body)
        .map_err(|e| HttpError::new(408, format!("reading body: {e}")))?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::new(400, "body is not valid UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((path, raw)) => (path.to_string(), parse_query(raw)),
        None => (target, Vec::new()),
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (`X-*` metrics and the like).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response (the body should end with a newline).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            content_type: "application/json",
            ..Self::text(status, body)
        }
    }

    /// A transpiled-QASM response.
    pub fn qasm(body: impl Into<String>) -> Self {
        Self {
            content_type: "application/x-qasm",
            ..Self::text(200, body)
        }
    }

    /// Appends one extra header (builder style).
    #[must_use]
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response to `writer` (always `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the caller drops the connection either way.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "\r\n")?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let req = parse(
            "POST /transpile?router=nassc&seed=7&device=grid%3A3x3 HTTP/1.1\r\n\
             Host: localhost\r\n\
             Content-Length: 4\r\n\
             \r\n\
             body",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/transpile");
        assert_eq!(req.query_param("router"), Some("nassc"));
        assert_eq!(req.query_param("seed"), Some("7"));
        assert_eq!(req.query_param("device"), Some("grid:3x3"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, "body");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.body, "");
        assert!(req.query.is_empty());
    }

    #[test]
    fn rejects_malformed_requests_with_the_right_status() {
        assert_eq!(parse("").unwrap_err().status, 400);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn truncated_body_is_a_timeout_class_error() {
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
                .unwrap_err()
                .status,
            408
        );
    }

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("a%3Ab+c"), "a:b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_serializes_with_extra_headers() {
        let mut out = Vec::new();
        Response::qasm("OPENQASM 2.0;\n")
            .header("X-Elapsed-Ms", "1.5")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/x-qasm\r\n"));
        assert!(text.contains("Content-Length: 14\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Elapsed-Ms: 1.5\r\n"));
        assert!(text.ends_with("\r\n\r\nOPENQASM 2.0;\n"));
    }

    #[test]
    fn json_escape_covers_the_control_set() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
