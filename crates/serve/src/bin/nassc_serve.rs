//! The `nassc-serve` daemon binary.
//!
//! ```text
//! nassc-serve --addr 127.0.0.1:7878 --device montreal --device linear:16 \
//!             --workers 4 --queue-depth 64 --timeout-ms 60000
//! ```
//!
//! Every `--device <spec>` adds a served device (specs as accepted by
//! `Device::from_str`: `montreal`, `eagle`, `osprey`, `heavy-hex:<d>`,
//! `linear:<n>`, `grid:<rows>x<cols>`); the
//! first one is the default for requests without `?device=`. SIGINT/SIGTERM
//! drain in-flight requests before exit.

use std::process::ExitCode;

use nassc::Device;
use nassc_bench::{cli_usize, cli_value};
use nassc_serve::{signal, ServeConfig, Server};

/// Collects every occurrence of `--device <spec>` (unlike
/// [`cli_value`], which returns only the first).
fn devices_from_args() -> Result<Vec<Device>, ExitCode> {
    let mut devices = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--device" {
            let Some(spec) = args.next() else {
                eprintln!("error: --device expects a value");
                return Err(ExitCode::FAILURE);
            };
            match spec.parse() {
                Ok(device) => devices.push(device),
                Err(e) => {
                    eprintln!("error: --device: {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
    }
    if devices.is_empty() {
        devices.push(Device::montreal());
    }
    Ok(devices)
}

fn main() -> ExitCode {
    if std::env::args().any(|arg| arg == "--help" || arg == "-h") {
        eprintln!(
            "usage: nassc-serve [--addr HOST:PORT] [--device SPEC]... \
             [--workers N] [--queue-depth N] [--timeout-ms N] \
             [--max-gates N] [--max-qubits N]"
        );
        return ExitCode::SUCCESS;
    }
    let devices = match devices_from_args() {
        Ok(devices) => devices,
        Err(code) => return code,
    };
    let config = ServeConfig {
        addr: cli_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        devices,
        workers: cli_usize("--workers").unwrap_or(4).max(1),
        queue_depth: cli_usize("--queue-depth").unwrap_or(64).max(1),
        default_timeout_ms: cli_usize("--timeout-ms").unwrap_or(60_000).max(1) as u64,
        options: Default::default(),
        max_gates: cli_usize("--max-gates"),
        max_qubits: cli_usize("--max-qubits"),
    };
    signal::install_handlers();
    let server = match Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let device_names: Vec<String> = config
        .devices
        .iter()
        .map(|d| format!("{} ({}q)", d.name(), d.num_qubits()))
        .collect();
    eprintln!(
        "nassc-serve listening on {} — devices: {}; {} workers, queue depth {}",
        server.local_addr(),
        device_names.join(", "),
        config.workers,
        config.queue_depth,
    );
    server.run();
    eprintln!("nassc-serve drained and stopped");
    ExitCode::SUCCESS
}
