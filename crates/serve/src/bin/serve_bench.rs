//! `serve_bench`: load generator for the `nassc-serve` daemon.
//!
//! Default (in-process) mode boots a daemon at 1 and at 8 handler workers,
//! drives the committed QASM corpus through it — a sequential *cold* phase
//! (fresh session, empty caches) and a concurrent *warm* phase (`--clients`
//! connections × `--rounds` corpus passes) — and writes `BENCH_serve.json`
//! with throughput and exact client-side p50/p99 latency rows:
//!
//! ```text
//! serve_bench --qasm-dir benchmarks/qasm --clients 8 --rounds 2 --json BENCH_serve.json
//! ```
//!
//! Every response body is compared byte-for-byte against a direct
//! [`Transpiler`] call with the same options — the daemon must be a
//! transparent wrapper, so `serve_mismatches` must be 0 regardless of worker
//! count, concurrency or cache temperature.
//!
//! `--addr HOST:PORT` switches to external mode: the same phases against an
//! already-running daemon (which must serve the montreal device with default
//! options). CI's bench-smoke boots `nassc-serve`, points `serve_bench
//! --addr` at it, and gates the report:
//!
//! After the warm phase, a *traced* corpus pass drives
//! `POST /transpile?trace=1` with client-chosen `X-Request-Id`s: every
//! response must echo the id, carry a non-empty span table, and round-trip
//! the exact QASM bytes of the untraced reference (`serve_trace_mismatches`
//! must be 0 — tracing is observational only).
//!
//! ```text
//! bench_gate BENCH_serve.json --max error_responses 0 --max serve_mismatches 0 \
//!            --max serve_trace_mismatches 0
//! ```
//!
//! `--chaos <rate>` (requires `--features failpoints`) switches to the
//! fault-injection harness instead: it arms the pipeline failpoints at the
//! given per-hit probability (panicking parse/pass/routing/commit sites,
//! slow layout trials, dying handler workers), sweeps the corpus under
//! chaos, then disarms and replays it, writing `BENCH_chaos.json`. Every
//! injected fault must be *contained* (an error status or at worst a
//! dropped connection — never a dead daemon) and every post-recovery
//! response must be byte-identical to the unfaulted reference:
//!
//! ```text
//! serve_bench --chaos 0.05 --json BENCH_chaos.json
//! bench_gate BENCH_chaos.json --max post_recovery_mismatches 0 --max uncontained_faults 0
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use nassc::{qasm, Device, TranspileOptions, Transpiler};
use nassc_bench::{cli_usize, cli_value, BenchReport, ReportRow};
use nassc_serve::{client, ServeConfig, Server};

/// Worker counts exercised by in-process mode.
const WORKER_COUNTS: [usize; 2] = [1, 8];

/// Arms the chaos failpoints at the given per-hit probability. The slow
/// site gets a higher probability (delays are contained by construction);
/// the worker-killing site a lower one (each hit costs a whole connection).
#[cfg(feature = "failpoints")]
fn arm_chaos_sites(rate: f64) {
    use nassc::circuit::failpoints::{arm, Action};
    arm("parse", Action::Panic, rate);
    arm("pass", Action::Panic, rate);
    arm("route_step", Action::Panic, rate);
    arm(
        "layout_trial",
        Action::Delay(std::time::Duration::from_millis(5)),
        (2.0 * rate).min(1.0),
    );
    arm("cache_commit", Action::Panic, rate);
    arm("handler", Action::Panic, rate / 4.0);
}

#[cfg(feature = "failpoints")]
fn disarm_chaos_sites() {
    nassc::circuit::failpoints::disarm_all();
}

#[cfg(feature = "failpoints")]
fn injections_so_far() -> u64 {
    nassc::circuit::failpoints::total_injections()
}

#[cfg(not(feature = "failpoints"))]
fn arm_chaos_sites(_rate: f64) {
    unreachable!("--chaos is rejected before arming when failpoints are compiled out");
}

#[cfg(not(feature = "failpoints"))]
fn disarm_chaos_sites() {}

#[cfg(not(feature = "failpoints"))]
fn injections_so_far() -> u64 {
    0
}

/// The `--chaos <rate>` harness: sweep the corpus with failpoints armed,
/// then disarm and verify full recovery. Returns the process exit code.
fn chaos_main(
    rate: f64,
    expected: Arc<Vec<Expected>>,
    clients: usize,
    rounds: usize,
    json: Option<PathBuf>,
    qubits: usize,
    suite_label: String,
) -> ExitCode {
    let server = match Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 256,
        default_timeout_ms: 300_000,
        ..ServeConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding in-process server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let running = std::thread::spawn(move || server.run());
    eprintln!("chaos daemon at {addr}, fault rate {rate}");

    // Phase 1 — chaos: contained faults show up as error statuses or
    // dropped connections; any 200 must still be byte-correct (the
    // determinism contract holds *during* the faults, not just after).
    let injected_before = injections_so_far();
    arm_chaos_sites(rate);
    let chaos = run_phase(&addr, Arc::clone(&expected), clients, rounds);
    disarm_chaos_sites();
    let injected = injections_so_far() - injected_before;

    // The daemon must have survived: supervision respawns dead workers and
    // poison recovery resets the caches, so /health and a fresh transpile
    // both still work.
    let alive = matches!(client::get(&addr, "/health"), Ok(r) if r.status == 200);

    // Phase 2 — recovery: every response byte-identical, no errors.
    let recovery = run_phase(&addr, Arc::clone(&expected), 1, 1);

    shutdown.shutdown();
    running.join().expect("server thread panicked");

    let uncontained = u64::from(!alive) + chaos.mismatches;
    let mut report = BenchReport::new(
        "serve_chaos",
        "nassc-serve fault-injection harness: corpus sweep under armed failpoints, then recovery",
        suite_label,
        rounds,
    );
    push_row(&mut report, &format!("chaos_rate_{rate}"), qubits, &chaos);
    push_row(&mut report, "recovery", qubits, &recovery);
    report.summary = vec![
        ("fault_rate".to_string(), rate),
        ("injected_faults".to_string(), injected as f64),
        ("chaos_requests".to_string(), chaos.requests() as f64),
        ("contained_faults".to_string(), chaos.error_responses as f64),
        ("uncontained_faults".to_string(), uncontained as f64),
        (
            "post_recovery_requests".to_string(),
            recovery.requests() as f64,
        ),
        (
            "post_recovery_errors".to_string(),
            recovery.error_responses as f64,
        ),
        (
            "post_recovery_mismatches".to_string(),
            recovery.mismatches as f64,
        ),
    ];
    eprintln!(
        "chaos: {injected} faults injected over {} requests — {} contained as error \
         responses, {uncontained} uncontained; recovery: {} requests, {} errors, \
         {} mismatches",
        chaos.requests(),
        chaos.error_responses,
        recovery.requests(),
        recovery.error_responses,
        recovery.mismatches,
    );
    if let Some(path) = &json {
        if let Err(e) = report.write_to_file(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    if uncontained > 0 || recovery.error_responses > 0 || recovery.mismatches > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One corpus circuit with its expected (direct-call) transpiled QASM.
struct Expected {
    name: String,
    source: String,
    body: String,
}

/// Measurements from one load phase.
struct PhaseStats {
    latencies_ms: Vec<f64>,
    wall_seconds: f64,
    error_responses: u64,
    mismatches: u64,
}

impl PhaseStats {
    fn requests(&self) -> usize {
        self.latencies_ms.len()
    }

    fn throughput_rps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Exact quantile over the recorded client-side latencies.
    fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

/// Builds the reference answers by transpiling the corpus directly through
/// one `Transpiler` session with the daemon's default options.
fn build_expected(dir: &Path, device: &Device) -> Result<Vec<Expected>, String> {
    let corpus = qasm::load_corpus(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    if corpus.is_empty() {
        return Err(format!("no .qasm files in {}", dir.display()));
    }
    let session = Transpiler::new(device.clone(), TranspileOptions::new());
    let mut expected = Vec::new();
    for file in corpus {
        let source = std::fs::read_to_string(&file.path)
            .map_err(|e| format!("reading {}: {e}", file.path.display()))?;
        match file.circuit {
            Ok(circuit) if circuit.num_qubits() > device.num_qubits() => {
                eprintln!("skipping {} (wider than the device)", file.name);
            }
            Ok(_) => {
                let result = session
                    .transpile_qasm(&source)
                    .map_err(|e| format!("direct transpile of {}: {e}", file.name))?;
                let body = qasm::export(&result.circuit)
                    .map_err(|e| format!("exporting {}: {e}", file.name))?;
                expected.push(Expected {
                    name: file.name,
                    source,
                    body,
                });
            }
            Err(e) => return Err(format!("parse failure in {}: {e}", file.path.display())),
        }
    }
    Ok(expected)
}

/// Runs one pass of the full corpus on the calling thread.
fn run_corpus_pass(addr: &str, expected: &[Expected]) -> PhaseStats {
    let mut stats = PhaseStats {
        latencies_ms: Vec::new(),
        wall_seconds: 0.0,
        error_responses: 0,
        mismatches: 0,
    };
    for item in expected {
        let started = Instant::now();
        match client::post(addr, "/transpile", &item.source) {
            Ok(response) => {
                stats
                    .latencies_ms
                    .push(1000.0 * started.elapsed().as_secs_f64());
                if response.status != 200 {
                    eprintln!("{}: status {}", item.name, response.status);
                    stats.error_responses += 1;
                } else if response.body != item.body {
                    eprintln!("{}: body differs from direct transpile", item.name);
                    stats.mismatches += 1;
                }
            }
            Err(e) => {
                eprintln!("{}: request failed: {e}", item.name);
                stats
                    .latencies_ms
                    .push(1000.0 * started.elapsed().as_secs_f64());
                stats.error_responses += 1;
            }
        }
    }
    stats
}

/// Extracts and unescapes the first JSON string field named `key` — enough
/// JSON to read the `?trace=1` envelope the daemon emits.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = body[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// One corpus pass through `POST /transpile?trace=1`: every response must
/// echo the client-chosen `X-Request-Id`, carry a non-empty span table, and
/// round-trip the exact QASM bytes of the untraced reference — tracing is
/// observational only, so any divergence counts as a mismatch.
fn run_traced_pass(addr: &str, expected: &[Expected], tag: &str) -> PhaseStats {
    let mut stats = PhaseStats {
        latencies_ms: Vec::new(),
        wall_seconds: 0.0,
        error_responses: 0,
        mismatches: 0,
    };
    let started_pass = Instant::now();
    for (index, item) in expected.iter().enumerate() {
        let request_id = format!("{tag}-{index}-{}", item.name);
        let started = Instant::now();
        let response = client::request_with_headers(
            addr,
            "POST",
            "/transpile?trace=1",
            &[("x-request-id", &request_id)],
            &item.source,
        );
        stats
            .latencies_ms
            .push(1000.0 * started.elapsed().as_secs_f64());
        let response = match response {
            Ok(response) => response,
            Err(e) => {
                eprintln!("{}: traced request failed: {e}", item.name);
                stats.error_responses += 1;
                continue;
            }
        };
        if response.status != 200 {
            eprintln!("{}: traced status {}", item.name, response.status);
            stats.error_responses += 1;
            continue;
        }
        let id_ok = response.header("x-request-id") == Some(request_id.as_str())
            && response
                .body
                .contains(&format!("\"request_id\":\"{request_id}\""));
        let spans_ok = response.body.contains("\"spans\":[{");
        let qasm_ok = json_str_field(&response.body, "qasm").as_deref() == Some(item.body.as_str());
        if !id_ok || !spans_ok || !qasm_ok {
            eprintln!(
                "{}: traced round-trip mismatch (id {}, spans {}, qasm {})",
                item.name, id_ok, spans_ok, qasm_ok
            );
            stats.mismatches += 1;
        }
    }
    stats.wall_seconds = started_pass.elapsed().as_secs_f64();
    stats
}

/// Runs `clients` threads × `rounds` corpus passes each, merging the stats.
fn run_phase(
    addr: &str,
    expected: Arc<Vec<Expected>>,
    clients: usize,
    rounds: usize,
) -> PhaseStats {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut merged = PhaseStats {
                    latencies_ms: Vec::new(),
                    wall_seconds: 0.0,
                    error_responses: 0,
                    mismatches: 0,
                };
                for _ in 0..rounds {
                    let pass = run_corpus_pass(&addr, &expected);
                    merged.latencies_ms.extend(pass.latencies_ms);
                    merged.error_responses += pass.error_responses;
                    merged.mismatches += pass.mismatches;
                }
                merged
            })
        })
        .collect();
    let mut total = PhaseStats {
        latencies_ms: Vec::new(),
        wall_seconds: 0.0,
        error_responses: 0,
        mismatches: 0,
    };
    for handle in handles {
        let stats = handle.join().expect("client thread panicked");
        total.latencies_ms.extend(stats.latencies_ms);
        total.error_responses += stats.error_responses;
        total.mismatches += stats.mismatches;
    }
    total.wall_seconds = started.elapsed().as_secs_f64();
    total
}

/// Appends one report row for a phase.
fn push_row(report: &mut BenchReport, name: &str, qubits: usize, stats: &PhaseStats) {
    report.rows.push(ReportRow {
        name: name.to_string(),
        qubits,
        metrics: vec![
            ("requests".to_string(), stats.requests() as f64),
            ("throughput_rps".to_string(), stats.throughput_rps()),
            ("mean_ms".to_string(), stats.mean_ms()),
            ("p50_ms".to_string(), stats.quantile_ms(0.50)),
            ("p99_ms".to_string(), stats.quantile_ms(0.99)),
            ("error_responses".to_string(), stats.error_responses as f64),
            ("mismatches".to_string(), stats.mismatches as f64),
        ],
    });
    eprintln!(
        "{name}: {} requests in {:.2}s — {:.1} req/s, p50 {:.1} ms, p99 {:.1} ms, \
         {} errors, {} mismatches",
        stats.requests(),
        stats.wall_seconds,
        stats.throughput_rps(),
        stats.quantile_ms(0.50),
        stats.quantile_ms(0.99),
        stats.error_responses,
        stats.mismatches,
    );
}

fn main() -> ExitCode {
    let dir = cli_value("--qasm-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("benchmarks/qasm"));
    let clients = cli_usize("--clients").unwrap_or(8).max(1);
    let rounds = cli_usize("--rounds").unwrap_or(2).max(1);
    let json = cli_value("--json").map(PathBuf::from);
    let device = Device::montreal();

    eprintln!("building reference answers with a direct Transpiler session...");
    let expected = match build_expected(&dir, &device) {
        Ok(expected) => Arc::new(expected),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{} corpus circuits", expected.len());

    if let Some(raw) = cli_value("--chaos") {
        let rate = match raw.parse::<f64>() {
            Ok(rate) if (0.0..=1.0).contains(&rate) => rate,
            _ => {
                eprintln!("error: --chaos expects a probability in [0, 1], got {raw:?}");
                return ExitCode::FAILURE;
            }
        };
        if !cfg!(feature = "failpoints") {
            eprintln!(
                "error: --chaos requires the fault-injection hooks; rebuild with \
                 `--features failpoints`"
            );
            return ExitCode::FAILURE;
        }
        return chaos_main(
            rate,
            expected,
            clients,
            rounds,
            json,
            device.num_qubits(),
            format!("qasm:{}", dir.display()),
        );
    }

    let mut report = BenchReport::new(
        "serve_bench",
        "nassc-serve daemon load test over the QASM corpus",
        format!("qasm:{}", dir.display()),
        rounds,
    );
    let qubits = device.num_qubits();
    let mut phases: Vec<PhaseStats> = Vec::new();
    let mut traced_phases: Vec<PhaseStats> = Vec::new();
    let mut warm_p99: f64 = 0.0;
    let mut warm_throughput: f64 = 0.0;

    if let Some(addr) = cli_value("--addr") {
        // External mode: phases against an already-running daemon.
        eprintln!("external daemon at {addr}");
        let cold = run_phase(&addr, Arc::clone(&expected), 1, 1);
        push_row(&mut report, "external_cold", qubits, &cold);
        let warm = run_phase(&addr, Arc::clone(&expected), clients, rounds);
        push_row(&mut report, "external_warm", qubits, &warm);
        let traced = run_traced_pass(&addr, &expected, "bench-ext");
        push_row(&mut report, "external_traced", qubits, &traced);
        warm_p99 = warm.quantile_ms(0.99);
        warm_throughput = warm.throughput_rps();
        phases.push(cold);
        phases.push(warm);
        traced_phases.push(traced);
    } else {
        // In-process mode: boot a fresh daemon per worker count so every
        // cold phase really is cold.
        for workers in WORKER_COUNTS {
            let server = match Server::bind(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                devices: vec![device.clone()],
                workers,
                queue_depth: 256,
                default_timeout_ms: 300_000,
                options: TranspileOptions::new(),
                max_gates: None,
                max_qubits: None,
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: binding in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr().to_string();
            let shutdown = server.shutdown_handle();
            let running = std::thread::spawn(move || server.run());
            eprintln!("in-process daemon at {addr} with {workers} workers");

            let cold = run_phase(&addr, Arc::clone(&expected), 1, 1);
            push_row(
                &mut report,
                &format!("workers{workers}_cold"),
                qubits,
                &cold,
            );
            let warm = run_phase(&addr, Arc::clone(&expected), clients, rounds);
            push_row(
                &mut report,
                &format!("workers{workers}_warm"),
                qubits,
                &warm,
            );
            warm_p99 = warm_p99.max(warm.quantile_ms(0.99));
            warm_throughput = warm_throughput.max(warm.throughput_rps());
            phases.push(cold);
            phases.push(warm);

            let traced = run_traced_pass(&addr, &expected, &format!("bench-w{workers}"));
            push_row(
                &mut report,
                &format!("workers{workers}_traced"),
                qubits,
                &traced,
            );
            traced_phases.push(traced);

            shutdown.shutdown();
            running.join().expect("server thread panicked");
        }
    }

    let total_requests: usize = phases.iter().map(PhaseStats::requests).sum();
    let error_responses: u64 = phases.iter().map(|p| p.error_responses).sum::<u64>()
        + traced_phases.iter().map(|p| p.error_responses).sum::<u64>();
    let mismatches: u64 = phases.iter().map(|p| p.mismatches).sum();
    let trace_requests: usize = traced_phases.iter().map(PhaseStats::requests).sum();
    let trace_mismatches: u64 = traced_phases.iter().map(|p| p.mismatches).sum();
    report.summary = vec![
        (
            "total_requests".to_string(),
            (total_requests + trace_requests) as f64,
        ),
        ("error_responses".to_string(), error_responses as f64),
        ("serve_mismatches".to_string(), mismatches as f64),
        ("trace_requests".to_string(), trace_requests as f64),
        (
            "serve_trace_mismatches".to_string(),
            trace_mismatches as f64,
        ),
        ("p99_ms".to_string(), warm_p99),
        ("best_warm_throughput_rps".to_string(), warm_throughput),
    ];
    eprintln!(
        "total: {} requests, {error_responses} error responses, \
         {mismatches} mismatches vs direct Transpiler calls, \
         {trace_mismatches} traced round-trip mismatches over {trace_requests} traced requests",
        total_requests + trace_requests,
    );
    if let Some(path) = &json {
        if let Err(e) = report.write_to_file(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    if error_responses > 0 || mismatches > 0 || trace_mismatches > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
