//! Daemon observability: latency histograms and response counters.
//!
//! The histogram uses fixed log-spaced millisecond buckets so `/metrics` can
//! report p50/p99 without storing every sample. Quantiles are read from the
//! bucket upper bounds — coarse, but monotone and constant-memory, which is
//! what a long-running daemon wants.

use std::collections::BTreeMap;

/// Upper bounds (milliseconds) of the histogram buckets; a final implicit
/// overflow bucket catches everything above the last bound.
const BUCKET_BOUNDS_MS: [f64; 16] = [
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
    20000.0, 60000.0,
];

/// A fixed-bucket latency histogram over milliseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// One count per bound, plus the overflow bucket at the end.
    counts: [u64; BUCKET_BOUNDS_MS.len() + 1],
    total: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKET_BOUNDS_MS.len() + 1],
            total: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, ms: f64) {
        let ms = if ms.is_finite() && ms >= 0.0 { ms } else { 0.0 };
        let bucket = BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// The number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The mean of the recorded samples (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ms / self.total as f64
        }
    }

    /// The largest recorded sample.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// The sum of every recorded sample, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// The raw buckets as `(upper bound ms, count)` pairs, the overflow
    /// bucket last with an infinite bound. Both `/metrics` renderings (JSON
    /// quantiles and the Prometheus text histogram) read from here, so they
    /// cannot disagree on the underlying numbers.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(bucket, &count)| {
                let bound = BUCKET_BOUNDS_MS
                    .get(bucket)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                (bound, count)
            })
            .collect()
    }

    /// The upper bound of the bucket holding quantile `q` in `[0, 1]` —
    /// an upper estimate of the true quantile (the exact max for the
    /// overflow bucket). Returns 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return BUCKET_BOUNDS_MS.get(bucket).copied().unwrap_or(self.max_ms);
            }
        }
        self.max_ms
    }
}

/// Mutable counters shared by the acceptor and the handler workers
/// (guarded by one mutex in the server).
#[derive(Debug, Default, Clone)]
pub struct ServerMetrics {
    /// Completed responses by HTTP status code (includes errors).
    pub responses_by_status: BTreeMap<u16, u64>,
    /// Connections shed by the acceptor because the queue was full (429).
    pub rejected_busy: u64,
    /// Requests that timed out waiting in the queue (504).
    pub deadline_expired: u64,
    /// End-to-end latency (accept to response written) of `/transpile`
    /// requests that produced a transpiled circuit.
    pub transpile_latency: LatencyHistogram,
    /// Time requests spent queued before a worker picked them up.
    pub queue_wait: LatencyHistogram,
}

impl ServerMetrics {
    /// Counts one completed response.
    pub fn count_response(&mut self, status: u16) {
        *self.responses_by_status.entry(status).or_insert(0) += 1;
    }

    /// Total responses written, across all statuses.
    pub fn total_responses(&self) -> u64 {
        self.responses_by_status.values().sum()
    }

    /// Total non-2xx responses written.
    pub fn error_responses(&self) -> u64 {
        self.responses_by_status
            .iter()
            .filter(|(status, _)| !(200..300).contains(&(**status as u32)))
            .map(|(_, count)| count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(3.0); // bucket bound 5.0
        }
        h.record(150.0); // bucket bound 200.0
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ms(0.5), 5.0);
        assert_eq!(h.quantile_ms(0.99), 5.0);
        assert_eq!(h.quantile_ms(1.0), 200.0);
        assert_eq!(h.max_ms(), 150.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(120_000.0);
        assert_eq!(h.quantile_ms(0.99), 120_000.0);
    }

    #[test]
    fn negative_and_nan_samples_clamp_to_zero() {
        let mut h = LatencyHistogram::new();
        h.record(-4.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ms(1.0), 0.5);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn buckets_expose_the_same_counts_the_quantiles_use() {
        let mut h = LatencyHistogram::new();
        h.record(3.0);
        h.record(3.0);
        h.record(120_000.0); // overflow bucket
        let buckets = h.buckets();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_MS.len() + 1);
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), h.count());
        assert_eq!(buckets[3], (5.0, 2));
        let (last_bound, last_count) = buckets[buckets.len() - 1];
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 1);
        assert_eq!(h.sum_ms(), 120_006.0);
    }

    #[test]
    fn metrics_count_statuses_and_errors() {
        let mut m = ServerMetrics::default();
        m.count_response(200);
        m.count_response(200);
        m.count_response(400);
        m.count_response(429);
        assert_eq!(m.total_responses(), 4);
        assert_eq!(m.error_responses(), 2);
        assert_eq!(m.responses_by_status[&200], 2);
    }
}
