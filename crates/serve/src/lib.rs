//! `nassc-serve`: a transpilation daemon over the [`Transpiler`] session API.
//!
//! The daemon is dependency-free — a hand-rolled HTTP/1.1 subset over
//! [`std::net::TcpListener`] — and keeps one long-lived [`Transpiler`] per
//! configured [`Device`], so every request shares the session's worker pool
//! and its distance/baseline/layout caches. The serving pipeline is:
//!
//! ```text
//!   acceptor (non-blocking accept, polls shutdown)
//!      │  try_push            ── full → 429 written by the acceptor
//!      ▼
//!   BoundedQueue<Conn>        ── backpressure valve (queue_depth)
//!      │  pop (blocking)
//!      ▼
//!   N handler workers         ── deadline check → 504 before transpiling
//!      │                         /transpile → session.transpile_qasm_with
//!      ▼
//!   response (+ X-* metric headers), Connection: close
//! ```
//!
//! Endpoints:
//!
//! * `POST /transpile?device=<spec>&router=<sabre|nassc>&seed=<n>&layout-trials=<n>&timeout-ms=<n>`
//!   — body is OpenQASM 2.0 in, body is transpiled OpenQASM 2.0 out.
//!   Per-request metrics travel as `X-Elapsed-Ms`, `X-Queue-Ms`,
//!   `X-Cx-Count`, `X-Swap-Count`, `X-Depth`, `X-Chosen-Trial`,
//!   `X-Cache-Hits`/`X-Cache-Misses` response headers, so the body stays
//!   byte-comparable against a direct [`Transpiler`] call.
//!   Appending `?trace=1` runs the transpile under the process-wide trace
//!   recorder and returns a JSON envelope with the per-span table. Traced
//!   requests serialize on a recorder lock; spans from concurrent untraced
//!   requests may appear in the table (best-effort attribution — outputs
//!   are never affected).
//! * `GET /metrics` — JSON: response counts by status, p50/p99 latency
//!   histograms, cumulative per-device [`CacheStats`](nassc::CacheStats),
//!   worker-pool status, uptime/start time, dropped trace events. With
//!   `Accept: text/plain` the same numbers render in Prometheus text
//!   exposition format instead.
//! * `GET /trace` — the span table of the most recent `?trace=1` request.
//! * `GET /version` — crate version and compiled-in features.
//! * `GET /health` — liveness probe.
//!
//! **Request correlation.** Every response carries `X-Request-Id` — the
//! inbound `x-request-id` header when the client sent a well-formed one,
//! else a server-assigned `serve-<n>` — and every request is logged as a
//! single-line JSON object on stderr keyed by that id.
//!
//! Error taxonomy is derived from [`nassc::ErrorKind`], not string matching:
//! parse failures → 400, circuit wider than the device or over the
//! configured admission limits → 422, internal pass errors and contained
//! panics → 500; a full queue → 429; a request whose deadline expired —
//! waiting in the queue or mid-transpile — → 504. Every error response
//! carries an `X-Error-Kind` header.
//!
//! **Fault containment.** A request's `?timeout-ms=` covers *execution*,
//! not just queue wait: whatever remains of the deadline when transpilation
//! starts becomes the session's cooperative [`TranspileOptions::deadline`],
//! so a slow transpile aborts mid-routing with a 504 instead of pinning a
//! worker. Panics inside the session are contained there and surface as
//! 500 + `X-Error-Kind: internal`. Should a worker thread itself unwind
//! (a panic outside every containment boundary), a supervision guard
//! respawns a replacement before the thread dies and counts it in the
//! `worker_restarts` metric — the daemon never loses serving capacity.
//!
//! Shutdown is graceful: SIGINT/SIGTERM (or [`ShutdownHandle::shutdown`])
//! stops the acceptor, closes the queue, lets the workers drain in-flight
//! requests, and joins them before [`Server::run`] returns.

// Production code must not `unwrap()` — a stray panic in a handler is a
// dropped connection and a respawned worker, so every lock/parse site
// either recovers or maps to a taxonomy error. Tests are exempt: an
// unwrap there *is* the assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod signal;

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use nassc::qasm;
use nassc::{Device, ErrorKind, RouterKind, TranspileOptions, Transpiler};

use http::{read_request, HttpError, Request, Response};
use metrics::ServerMetrics;
use queue::{BoundedQueue, PushError};

/// Largest accepted request body (QASM source), in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// How long the acceptor sleeps between non-blocking `accept` attempts —
/// also the shutdown-poll latency bound.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Per-socket read timeout so a stalled client cannot pin a worker.
const SOCKET_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Devices to serve; the first is the default for requests that do not
    /// pass `?device=`. Each gets its own long-lived [`Transpiler`].
    pub devices: Vec<Device>,
    /// Handler worker threads. `0` is allowed (nothing drains the queue) so
    /// tests can provoke deterministic 429s; the binary enforces `>= 1`.
    pub workers: usize,
    /// Bounded queue capacity — connections beyond it are answered 429.
    pub queue_depth: usize,
    /// Default per-request deadline (queue wait), overridable per request
    /// via `?timeout-ms=` or the `x-timeout-ms` header.
    pub default_timeout_ms: u64,
    /// Base transpile options for every session; requests may override
    /// `router`, `seed` and `layout-trials`.
    pub options: TranspileOptions,
    /// Admission limit: circuits with more gates are refused with 422
    /// before any transpilation work. `None` admits any size.
    pub max_gates: Option<usize>,
    /// Admission limit: circuits declaring more qubits are refused with 422
    /// before any transpilation work (device capacity still applies on top).
    /// `None` admits any width the device fits.
    pub max_qubits: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            devices: vec![Device::montreal()],
            workers: 4,
            queue_depth: 64,
            default_timeout_ms: 60_000,
            options: TranspileOptions::new(),
            max_gates: None,
            max_qubits: None,
        }
    }
}

/// A connection waiting in the queue. `accepted_at` anchors both the
/// queue-wait metric and the request deadline.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// State shared between the acceptor and the handler workers.
struct Shared {
    sessions: Vec<(String, Arc<Transpiler>)>,
    queue: BoundedQueue<Conn>,
    metrics: Mutex<ServerMetrics>,
    default_timeout_ms: u64,
    workers: usize,
    max_gates: Option<usize>,
    max_qubits: Option<usize>,
    /// Workers respawned after an uncontained panic (see [`RespawnGuard`]).
    worker_restarts: AtomicU64,
    started: Instant,
    /// Unix timestamp of [`Server::bind`], reported by `/metrics`.
    started_at_epoch_seconds: u64,
    /// Source of server-assigned request ids (`serve-<n>`).
    next_request_id: AtomicU64,
    /// Serializes `?trace=1` requests: the trace recorder is process-wide,
    /// so at most one request records at a time.
    trace_serial: Mutex<()>,
    /// The span-table JSON of the most recent traced request (`/trace`).
    last_trace: Mutex<Option<String>>,
}

/// Requests the server stop accepting and drain; cloneable across threads.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Triggers graceful shutdown: the acceptor stops, queued requests
    /// drain, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and builds one [`Transpiler`] session per device.
    ///
    /// # Errors
    ///
    /// I/O errors from binding; an invalid config (no devices, duplicate
    /// device names) is reported as [`std::io::ErrorKind::InvalidInput`].
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        if config.devices.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "at least one device is required",
            ));
        }
        let mut sessions: Vec<(String, Arc<Transpiler>)> = Vec::new();
        for device in &config.devices {
            let name = device.name().to_string();
            if sessions.iter().any(|(existing, _)| *existing == name) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("duplicate device {name:?}"),
                ));
            }
            sessions.push((
                name,
                Arc::new(Transpiler::new(device.clone(), config.options.clone())),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                sessions,
                queue: BoundedQueue::new(config.queue_depth),
                metrics: Mutex::new(ServerMetrics::default()),
                default_timeout_ms: config.default_timeout_ms,
                workers: config.workers,
                max_gates: config.max_gates,
                max_qubits: config.max_qubits,
                worker_restarts: AtomicU64::new(0),
                started: Instant::now(),
                started_at_epoch_seconds: std::time::SystemTime::now()
                    .duration_since(std::time::SystemTime::UNIX_EPOCH)
                    .map(|since| since.as_secs())
                    .unwrap_or(0),
                next_request_id: AtomicU64::new(1),
                trace_serial: Mutex::new(()),
                last_trace: Mutex::new(None),
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Runs the daemon: spawns the handler workers, accepts until shutdown
    /// is requested (via [`ShutdownHandle`] or SIGINT/SIGTERM), then closes
    /// the queue, drains in-flight requests and joins the workers.
    pub fn run(self) {
        let registry: Arc<WorkerRegistry> = Arc::new(Mutex::new(Vec::new()));
        for index in 0..self.shared.workers {
            spawn_worker(&self.shared, &registry, index);
        }

        while !self.shutdown.load(Ordering::SeqCst) && !signal::signalled() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn = Conn {
                        stream,
                        accepted_at: Instant::now(),
                    };
                    match self.shared.queue.try_push(conn) {
                        Ok(()) => {}
                        Err(PushError::Full(conn)) => {
                            let mut metrics = lock_metrics(&self.shared);
                            metrics.rejected_busy += 1;
                            drop(metrics);
                            reject(&self.shared, conn.stream, 429, "queue full");
                        }
                        Err(PushError::Closed(conn)) => {
                            reject(&self.shared, conn.stream, 503, "shutting down");
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }

        self.shared.queue.close();
        // Join until the registry stays empty: a worker that panics while
        // draining respawns (and registers) its replacement before it dies,
        // so after joining a handle there may be late registrations.
        loop {
            let drained: Vec<_> = lock_registry(&registry).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for worker in drained {
                let _ = worker.join();
            }
        }
    }
}

/// The join handles of every live handler worker — including supervision
/// respawns, which register themselves here so shutdown joins them too.
type WorkerRegistry = Mutex<Vec<std::thread::JoinHandle<()>>>;

fn lock_registry(
    registry: &WorkerRegistry,
) -> std::sync::MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
    // Nothing in the registry can be half-updated by a panic: recover.
    registry.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Spawns one supervised handler worker and registers its handle.
fn spawn_worker(shared: &Arc<Shared>, registry: &Arc<WorkerRegistry>, index: usize) {
    let worker_shared = Arc::clone(shared);
    let guard_shared = Arc::clone(shared);
    let guard_registry = Arc::clone(registry);
    let handle = std::thread::Builder::new()
        .name(format!("nassc-serve-worker-{index}"))
        .spawn(move || {
            let _guard = RespawnGuard {
                shared: guard_shared,
                registry: guard_registry,
                index,
            };
            worker_loop(&worker_shared);
        })
        .expect("spawning handler worker");
    lock_registry(registry).push(handle);
}

/// Worker supervision: dropped on every worker exit, but acts only when the
/// worker is *unwinding* — a panic that escaped every containment boundary
/// (the session catches its own; this is the last line). It respawns a
/// replacement before the thread dies and counts the loss, so the daemon's
/// serving capacity never decays. Clean exits (queue closed and drained)
/// fall through untouched.
struct RespawnGuard {
    shared: Arc<Shared>,
    registry: Arc<WorkerRegistry>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
            spawn_worker(&self.shared, &self.registry, self.index);
        }
    }
}

fn lock_metrics(shared: &Shared) -> std::sync::MutexGuard<'_, ServerMetrics> {
    // Metrics are monotone counters and histograms — no invariant spans two
    // fields — so a panic mid-update (the only poison source) leaves them
    // usable. Recover instead of cascading the panic into every request.
    shared
        .metrics
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Writes a bare error response from the acceptor (load shedding and
/// shutdown refusals never reach the queue).
fn reject(shared: &Shared, mut stream: TcpStream, status: u16, message: &str) {
    let response = Response::text(status, format!("{message}\n"));
    if response.write_to(&mut stream).is_ok() {
        let _ = stream.flush();
    }
    lock_metrics(shared).count_response(status);
}

/// One handler worker: drain the queue until it is closed and empty.
fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.queue.pop() {
        handle_connection(shared, conn);
    }
}

/// Serves exactly one request on the connection (`Connection: close`).
fn handle_connection(shared: &Shared, conn: Conn) {
    // Deliberately *outside* every containment boundary: arming
    // `handler:panic` kills the worker itself, exercising supervision.
    nassc::circuit::failpoints::hit("handler");
    let Conn {
        mut stream,
        accepted_at,
    } = conn;
    let queue_ms = 1000.0 * accepted_at.elapsed().as_secs_f64();
    lock_metrics(shared).queue_wait.record(queue_ms);
    let _ = stream.set_read_timeout(Some(SOCKET_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);

    let request = {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        });
        read_request(&mut reader, MAX_BODY_BYTES)
    };
    let request_id = request_id(shared, request.as_ref().ok());
    let (method, path) = match &request {
        Ok(request) => (request.method.clone(), request.path.clone()),
        Err(_) => ("-".to_string(), "-".to_string()),
    };
    let response = match request {
        Ok(request) => route(shared, &request, accepted_at, queue_ms, &request_id),
        Err(HttpError { status, message }) => Response::text(status, format!("{message}\n")),
    };
    let response = response.header("X-Request-Id", &request_id);
    if response.write_to(&mut stream).is_ok() {
        let _ = stream.flush();
    }
    lock_metrics(shared).count_response(response.status);
    // The access log: one JSON object per request on stderr, keyed by the
    // same id the client saw in `X-Request-Id`.
    eprintln!(
        "{{\"request_id\":\"{}\",\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\
         \"queue_ms\":{:.3},\"elapsed_ms\":{:.3}}}",
        http::json_escape(&request_id),
        http::json_escape(&method),
        http::json_escape(&path),
        response.status,
        queue_ms,
        1000.0 * accepted_at.elapsed().as_secs_f64(),
    );
}

/// The correlation id for a request: an inbound `x-request-id` header when
/// it is non-empty printable ASCII of sane length (it is echoed into a
/// response header and the access log), else a server-assigned `serve-<n>`.
fn request_id(shared: &Shared, request: Option<&Request>) -> String {
    if let Some(id) = request.and_then(|request| request.header("x-request-id")) {
        if !id.is_empty() && id.len() <= 128 && id.bytes().all(|b| b.is_ascii_graphic()) {
            return id.to_string();
        }
    }
    format!(
        "serve-{}",
        shared.next_request_id.fetch_add(1, Ordering::Relaxed)
    )
}

/// Dispatches a parsed request to an endpoint.
fn route(
    shared: &Shared,
    request: &Request,
    accepted_at: Instant,
    queue_ms: f64,
    request_id: &str,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::text(200, "ok\n"),
        ("GET", "/version") => Response::json(200, version_json()),
        ("GET", "/trace") => trace_endpoint(shared),
        ("GET", "/metrics") => {
            // Content negotiation: Prometheus exposition text on
            // `Accept: text/plain`, the JSON document otherwise. Both read
            // the same counters and histogram buckets.
            if request
                .header("accept")
                .is_some_and(|accept| accept.contains("text/plain"))
            {
                Response::text(200, metrics_prometheus(shared))
            } else {
                Response::json(200, metrics_json(shared))
            }
        }
        ("POST", "/transpile") => {
            transpile_endpoint(shared, request, accepted_at, queue_ms, request_id)
        }
        ("GET" | "HEAD", "/transpile") => {
            Response::text(405, "use POST with an OpenQASM 2.0 body\n")
        }
        _ => Response::text(404, format!("no route for {}\n", request.path)),
    }
}

/// The `/version` document: crate version plus compiled-in feature flags.
fn version_json() -> String {
    format!(
        "{{\"name\":\"nassc-serve\",\"version\":\"{}\",\"features\":{{\"failpoints\":{}}}}}",
        env!("CARGO_PKG_VERSION"),
        cfg!(feature = "failpoints"),
    )
}

/// `GET /trace` — the span table of the most recent `?trace=1` request.
fn trace_endpoint(shared: &Shared) -> Response {
    let last = shared
        .last_trace
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    match last {
        Some(json) => Response::json(200, json),
        None => Response::text(
            404,
            "no traced request yet; POST /transpile?trace=1 first\n",
        ),
    }
}

/// The deadline for a request: `?timeout-ms=`, then the `x-timeout-ms`
/// header, then the server default.
fn deadline_ms(shared: &Shared, request: &Request) -> Result<u64, Response> {
    let raw = request
        .query_param("timeout-ms")
        .or_else(|| request.header("x-timeout-ms"));
    match raw {
        None => Ok(shared.default_timeout_ms),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            Response::text(
                400,
                format!("invalid timeout-ms {raw:?}: expected integer milliseconds\n"),
            )
        }),
    }
}

/// `POST /transpile` — QASM in, transpiled QASM plus metric headers out.
///
/// With `?trace=1` the transpile runs under the process-wide trace recorder
/// and the response becomes a JSON envelope `{"request_id", "status",
/// "trace", "qasm"|"error"}` carrying the per-span table alongside the
/// usual `X-*` headers. Traced requests serialize on one lock (the recorder
/// is process-wide), and spans of untraced requests running concurrently on
/// other workers may appear in the table — attribution is best-effort, the
/// transpiled output is not affected.
fn transpile_endpoint(
    shared: &Shared,
    request: &Request,
    accepted_at: Instant,
    queue_ms: f64,
    request_id: &str,
) -> Response {
    let traced = matches!(request.query_param("trace"), Some("1" | "true"));
    if !traced {
        return transpile_core(shared, request, accepted_at, queue_ms);
    }

    let serial = shared
        .trace_serial
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    nassc::trace::enable();
    let response = transpile_core(shared, request, accepted_at, queue_ms);
    let report = nassc::trace::take_report();
    nassc::trace::disable();
    drop(serial);

    let spans = report.span_table_json();
    let escaped_id = http::json_escape(request_id);
    *shared
        .last_trace
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(format!(
        "{{\"request_id\":\"{escaped_id}\",\"trace\":{spans}}}"
    ));
    let body_key = if response.status == 200 {
        "qasm"
    } else {
        "error"
    };
    let envelope = format!(
        "{{\"request_id\":\"{escaped_id}\",\"status\":{},\"trace\":{spans},\"{body_key}\":\"{}\"}}",
        response.status,
        http::json_escape(&response.body),
    );
    let mut wrapped = Response::json(response.status, envelope);
    wrapped.headers = response.headers;
    wrapped
}

/// The untraced `/transpile` pipeline: option parsing, admission checks,
/// the session call, and the metric headers.
fn transpile_core(
    shared: &Shared,
    request: &Request,
    accepted_at: Instant,
    queue_ms: f64,
) -> Response {
    let timeout_ms = match deadline_ms(shared, request) {
        Ok(ms) => ms,
        Err(response) => return response,
    };
    let total = Duration::from_millis(timeout_ms);
    if accepted_at.elapsed() >= total {
        lock_metrics(shared).deadline_expired += 1;
        return Response::text(
            504,
            format!("deadline of {timeout_ms} ms expired after {queue_ms:.1} ms in queue\n"),
        )
        .header("X-Error-Kind", "deadline");
    }

    let (device_name, session) = match request.query_param("device") {
        None => {
            let (name, session) = &shared.sessions[0];
            (name.clone(), Arc::clone(session))
        }
        Some(wanted) => match shared.sessions.iter().find(|(name, _)| name == wanted) {
            Some((name, session)) => (name.clone(), Arc::clone(session)),
            None => {
                let known: Vec<&str> = shared
                    .sessions
                    .iter()
                    .map(|(name, _)| name.as_str())
                    .collect();
                return Response::text(
                    400,
                    format!(
                        "unknown device {wanted:?}: this server has {}\n",
                        known.join(", ")
                    ),
                );
            }
        },
    };

    let mut options = session.options().clone();
    match request.query_param("router") {
        None => {}
        Some("sabre") => options = options.router(RouterKind::Sabre),
        Some("nassc") => options = options.router(RouterKind::Nassc),
        Some(other) => {
            return Response::text(
                400,
                format!("unknown router {other:?}: expected sabre or nassc\n"),
            );
        }
    }
    if let Some(raw) = request.query_param("seed") {
        match raw.parse::<u64>() {
            Ok(seed) => options = options.seed(seed),
            Err(_) => return Response::text(400, format!("invalid seed {raw:?}\n")),
        }
    }
    if let Some(raw) = request.query_param("layout-trials") {
        match raw.parse::<usize>() {
            Ok(trials) if trials >= 1 => options = options.layout_trials(trials),
            _ => {
                return Response::text(
                    400,
                    format!("invalid layout-trials {raw:?}: expected >= 1\n"),
                );
            }
        }
    }

    // Parse and admission-check before any transpilation work, so oversized
    // requests cost nothing and are refused deterministically.
    let circuit = match std::panic::catch_unwind(|| qasm::parse(&request.body)) {
        Ok(Ok(circuit)) => circuit,
        Ok(Err(e)) => {
            return Response::text(400, format!("{e}\n")).header("X-Error-Kind", "parse");
        }
        Err(_) => {
            return Response::text(500, "internal error (contained panic in parse)\n")
                .header("X-Error-Kind", "internal");
        }
    };
    if let Some(max) = shared.max_qubits {
        if circuit.num_qubits() > max {
            return Response::text(
                422,
                format!(
                    "circuit declares {} qubits; this server admits at most {max}\n",
                    circuit.num_qubits()
                ),
            )
            .header("X-Error-Kind", "limits");
        }
    }
    if let Some(max) = shared.max_gates {
        if circuit.num_gates() > max {
            return Response::text(
                422,
                format!(
                    "circuit has {} gates; this server admits at most {max}\n",
                    circuit.num_gates()
                ),
            )
            .header("X-Error-Kind", "limits");
        }
    }
    if let Err(e) = session.check_fits(&circuit) {
        return Response::text(422, format!("{e}\n")).header("X-Error-Kind", "too-wide");
    }

    // Whatever remains of the request deadline becomes the transpile budget:
    // the session aborts cooperatively mid-routing when it expires.
    let options = options.deadline(total.saturating_sub(accepted_at.elapsed()));

    let started = Instant::now();
    let result = match session.transpile_with(&circuit, &options) {
        Ok(result) => result,
        Err(e) => {
            let (status, kind) = match e.kind() {
                ErrorKind::Parse => (400, "parse"),
                ErrorKind::TooWide => (422, "too-wide"),
                ErrorKind::Pass => (500, "pass"),
                ErrorKind::Internal => (500, "internal"),
                ErrorKind::Deadline => (504, "deadline"),
            };
            if e.kind() == ErrorKind::Deadline {
                lock_metrics(shared).deadline_expired += 1;
            }
            return Response::text(status, format!("{e}\n")).header("X-Error-Kind", kind);
        }
    };
    let out_qasm = match qasm::export(&result.circuit) {
        Ok(out) => out,
        Err(e) => {
            return Response::text(500, format!("exporting result: {e}\n"))
                .header("X-Error-Kind", "pass");
        }
    };
    let elapsed_ms = 1000.0 * started.elapsed().as_secs_f64();
    lock_metrics(shared).transpile_latency.record(elapsed_ms);
    Response::qasm(out_qasm)
        .header("X-Device", device_name)
        .header("X-Elapsed-Ms", format!("{elapsed_ms:.3}"))
        .header("X-Queue-Ms", format!("{queue_ms:.3}"))
        .header("X-Cx-Count", result.cx_count().to_string())
        .header("X-Swap-Count", result.swap_count.to_string())
        .header("X-Depth", result.depth().to_string())
        .header("X-Chosen-Trial", result.chosen_layout_trial.to_string())
        .header("X-Cache-Hits", result.cache.hits().to_string())
        .header("X-Cache-Misses", result.cache.misses().to_string())
}

/// Formats a histogram as a JSON object fragment.
fn histogram_json(histogram: &metrics::LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        histogram.count(),
        histogram.mean_ms(),
        histogram.quantile_ms(0.50),
        histogram.quantile_ms(0.99),
        histogram.max_ms(),
    )
}

/// The `/metrics` JSON document.
fn metrics_json(shared: &Shared) -> String {
    let metrics = lock_metrics(shared).clone();
    let statuses: Vec<String> = metrics
        .responses_by_status
        .iter()
        .map(|(status, count)| format!("\"{status}\":{count}"))
        .collect();
    let devices: Vec<String> = shared
        .sessions
        .iter()
        .map(|(name, session)| {
            let stats = session.cache_stats();
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"qubits\":{},\"cache_hits\":{},",
                    "\"cache_misses\":{},\"cache_resets\":{}}}"
                ),
                http::json_escape(name),
                session.device().num_qubits(),
                stats.hits(),
                stats.misses(),
                session.cache_resets(),
            )
        })
        .collect();
    let pool = nassc::worker_pool_status();
    format!(
        concat!(
            "{{\"uptime_seconds\":{:.3},",
            "\"started_at_epoch_seconds\":{},",
            "\"trace_events_dropped\":{},",
            "\"queue\":{{\"depth\":{},\"capacity\":{},\"workers\":{}}},",
            "\"responses_by_status\":{{{}}},",
            "\"total_responses\":{},",
            "\"error_responses\":{},",
            "\"rejected_busy\":{},",
            "\"deadline_expired\":{},",
            "\"worker_restarts\":{},",
            "\"transpile_latency_ms\":{},",
            "\"queue_wait_ms\":{},",
            "\"pool\":{{\"workers\":{},\"batches_completed\":{},",
            "\"items_completed\":{},\"jobs_panicked\":{}}},",
            "\"devices\":[{}]}}"
        ),
        shared.started.elapsed().as_secs_f64(),
        shared.started_at_epoch_seconds,
        nassc::trace::events_dropped_total(),
        shared.queue.len(),
        shared.queue.capacity(),
        shared.workers,
        statuses.join(","),
        metrics.total_responses(),
        metrics.error_responses(),
        metrics.rejected_busy,
        metrics.deadline_expired,
        shared.worker_restarts.load(Ordering::Relaxed),
        histogram_json(&metrics.transpile_latency),
        histogram_json(&metrics.queue_wait),
        pool.workers,
        pool.batches_completed,
        pool.items_completed,
        pool.jobs_panicked,
        devices.join(","),
    )
}

/// One Prometheus histogram: cumulative `_bucket{le=...}` lines over the
/// same raw buckets the JSON quantiles are computed from, plus sum/count.
fn prometheus_histogram(out: &mut String, name: &str, histogram: &metrics::LatencyHistogram) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in histogram.buckets() {
        cumulative += count;
        if bound.is_infinite() {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_sum {}", histogram.sum_ms());
    let _ = writeln!(out, "{name}_count {}", histogram.count());
}

/// The `/metrics` document in Prometheus text exposition format — the same
/// counters and histogram buckets as [`metrics_json`], renamed to the
/// `nassc_serve_*` metric namespace.
fn metrics_prometheus(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let metrics = lock_metrics(shared).clone();
    let pool = nassc::worker_pool_status();
    let mut out = String::new();
    let mut gauge = |name: &str, value: String| {
        let _ = writeln!(out, "# TYPE nassc_serve_{name} gauge");
        let _ = writeln!(out, "nassc_serve_{name} {value}");
    };
    gauge(
        "uptime_seconds",
        format!("{:.3}", shared.started.elapsed().as_secs_f64()),
    );
    gauge(
        "started_at_epoch_seconds",
        shared.started_at_epoch_seconds.to_string(),
    );
    gauge(
        "trace_events_dropped",
        nassc::trace::events_dropped_total().to_string(),
    );
    gauge("queue_depth", shared.queue.len().to_string());
    gauge("queue_capacity", shared.queue.capacity().to_string());
    gauge("handler_workers", shared.workers.to_string());
    gauge("rejected_busy_total", metrics.rejected_busy.to_string());
    gauge(
        "deadline_expired_total",
        metrics.deadline_expired.to_string(),
    );
    gauge(
        "worker_restarts_total",
        shared.worker_restarts.load(Ordering::Relaxed).to_string(),
    );
    gauge("pool_workers", pool.workers.to_string());
    gauge("pool_batches_completed", pool.batches_completed.to_string());
    gauge("pool_items_completed", pool.items_completed.to_string());
    gauge("pool_jobs_panicked", pool.jobs_panicked.to_string());

    let _ = writeln!(out, "# TYPE nassc_serve_responses_total counter");
    for (status, count) in &metrics.responses_by_status {
        let _ = writeln!(
            out,
            "nassc_serve_responses_total{{status=\"{status}\"}} {count}"
        );
    }
    prometheus_histogram(
        &mut out,
        "nassc_serve_transpile_latency_ms",
        &metrics.transpile_latency,
    );
    prometheus_histogram(&mut out, "nassc_serve_queue_wait_ms", &metrics.queue_wait);
    let _ = writeln!(out, "# TYPE nassc_serve_device_cache_hits counter");
    let _ = writeln!(out, "# TYPE nassc_serve_device_cache_misses counter");
    for (name, session) in &shared.sessions {
        let stats = session.cache_stats();
        let label = http::json_escape(name);
        let _ = writeln!(
            out,
            "nassc_serve_device_cache_hits{{device=\"{label}\"}} {}",
            stats.hits()
        );
        let _ = writeln!(
            out,
            "nassc_serve_device_cache_misses{{device=\"{label}\"}} {}",
            stats.misses()
        );
    }
    out
}
