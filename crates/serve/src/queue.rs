//! The bounded request queue between the acceptor and the handler workers.
//!
//! Capacity is the daemon's backpressure valve: when the queue is full the
//! acceptor answers 429 immediately instead of letting latency grow without
//! bound. Closing the queue (graceful shutdown) refuses new pushes while
//! letting workers drain what is already queued.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the caller should shed load (HTTP 429).
    Full(T),
    /// The queue is closed (shutting down) — the caller should refuse the
    /// connection (HTTP 503).
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close) — both return the item to the caller so it can
    /// respond to the connection before dropping it.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed **and** drained — the worker
    /// exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, waiting poppers drain the
    /// remaining items and then receive `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // Queue state is a VecDeque plus a flag; neither can be left
        // half-updated by a panicking holder, so recover from poison — a
        // dead queue would wedge the acceptor *and* every worker.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_rejects_with_the_item() {
        let q = BoundedQueue::new(1);
        q.try_push("a").unwrap();
        assert_eq!(q.try_push("b"), Err(PushError::Full("b")));
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), None);
        }
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        assert_eq!(BoundedQueue::<u8>::new(0).capacity(), 1);
    }
}
