//! SIGINT/SIGTERM handling without a signal-handling dependency.
//!
//! The daemon needs exactly one bit of information from the OS: "a shutdown
//! signal arrived". The handler installed here does the only thing an
//! async-signal-safe handler may do with our toolbox — store to a static
//! atomic — and the accept loop polls [`signalled`] between `accept` attempts
//! (the listener is non-blocking, so the poll latency is bounded by the
//! accept-loop sleep, not by the next connection).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; read by the accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has arrived since [`install_handlers`].
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Sets the flag as if a signal had arrived — lets tests and the in-process
/// load generator exercise the shutdown path without raising real signals.
pub fn raise_synthetic() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The C standard library's `signal(2)` wrapper. Declaring and calling a
    // foreign function is the single unsafe operation in this crate (see the
    // lint note in Cargo.toml).
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // SAFETY-adjacent note: an atomic store is async-signal-safe — no
        // allocation, no locks, no formatting. Nothing else happens here.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the documented libc entry point; `on_signal`
        // is `extern "C"` with the required `fn(i32)` signature and performs
        // only an atomic store. Replacing the default disposition of
        // SIGINT/SIGTERM for the whole process is exactly the intent.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    // Non-Unix builds keep ctrl-c's default (abrupt) behavior; graceful
    // shutdown remains reachable through `raise_synthetic`.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_signal_sets_the_flag() {
        install_handlers();
        raise_synthetic();
        assert!(signalled());
    }
}
