//! A minimal blocking HTTP client for the daemon's own tests and load
//! generator — the counterpart of [`crate::http`], one request per
//! connection, matching the server's `Connection: close` model.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl ClientResponse {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }
}

fn invalid(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// Sends one request and reads the full response (the server closes the
/// connection after it).
///
/// # Errors
///
/// Connection and read/write failures, plus `InvalidData` for a response
/// that is not parseable HTTP/1.1.
pub fn request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, path_and_query, &[], body)
}

/// As [`request`], with extra request headers (e.g. `x-request-id` for
/// correlation, or `accept: text/plain` to select the Prometheus rendering
/// of `/metrics`).
///
/// # Errors
///
/// As [`request`].
pub fn request_with_headers(
    addr: &str,
    method: &str,
    path_and_query: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_nodelay(true)?;
    let extra: String = extra_headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\
         {extra}content-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed inside headers"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid(format!("bad header line {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| invalid(format!("bad content-length {value:?}")))?,
            );
        }
        headers.push((name, value));
    }

    let body = match content_length {
        Some(length) => {
            let mut buffer = vec![0u8; length];
            reader.read_exact(&mut buffer)?;
            String::from_utf8(buffer).map_err(|_| invalid("non-UTF-8 response body"))?
        }
        None => {
            // `Connection: close` delimits the body.
            let mut buffer = String::new();
            reader.read_to_string(&mut buffer)?;
            buffer
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// `GET` without a body.
///
/// # Errors
///
/// As [`request`].
pub fn get(addr: &str, path_and_query: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path_and_query, "")
}

/// `POST` with a body.
///
/// # Errors
///
/// As [`request`].
pub fn post(addr: &str, path_and_query: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path_and_query, body)
}
