//! The fault-injection suite: with `NASSC_FAIL`-style failpoints armed
//! inside the daemon (panicking routing steps, slow layout trials, poisoned
//! cache commits, dying workers), the process must never crash, every fault
//! must surface as a taxonomy status (500/504/422) or at worst a dropped
//! connection, and once the faults stop every response must be
//! byte-identical to an unfaulted reference.
//!
//! Run with `cargo test -p nassc-serve --features failpoints --test chaos`.
//! Failpoint configuration is process-global, so every test serializes on
//! one lock and disarms on exit (including panicking exits).
#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use nassc::circuit::failpoints::{arm, disarm_all, total_injections, Action};
use nassc_serve::{client, ServeConfig, Server};

const BELL: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"#;

const GHZ5: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
"#;

/// Serializes tests (failpoints are process-global) and guarantees a
/// disarmed process on entry and exit, even when the test fails.
static FAILPOINTS: Mutex<()> = Mutex::new(());

struct FailpointSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FailpointSession {
    fn drop(&mut self) {
        disarm_all();
    }
}

fn failpoint_session() -> FailpointSession {
    let guard = FAILPOINTS.lock().unwrap_or_else(PoisonError::into_inner);
    disarm_all();
    FailpointSession(guard)
}

fn boot(config: ServeConfig) -> (String, impl FnOnce()) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let running = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.shutdown();
        running.join().expect("server thread");
    })
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        ..ServeConfig::default()
    }
}

#[test]
fn route_step_panic_is_a_500_and_recovery_is_bit_identical() {
    let _session = failpoint_session();
    let (addr, stop) = boot(config(2));

    let reference = client::post(&addr, "/transpile", GHZ5).expect("reference");
    assert_eq!(reference.status, 200, "body: {}", reference.body);

    arm("route_step", Action::Panic, 1.0);
    let faulted = client::post(&addr, "/transpile", GHZ5).expect("faulted request");
    assert_eq!(faulted.status, 500, "body: {}", faulted.body);
    assert_eq!(faulted.header("x-error-kind").unwrap(), "internal");
    assert!(
        faulted.body.contains("contained panic"),
        "body: {}",
        faulted.body
    );

    disarm_all();
    let recovered = client::post(&addr, "/transpile", GHZ5).expect("recovered request");
    assert_eq!(recovered.status, 200, "body: {}", recovered.body);
    assert_eq!(
        recovered.body, reference.body,
        "post-fault responses must be byte-identical to the unfaulted reference"
    );
    assert_eq!(client::get(&addr, "/health").expect("health").status, 200);
    stop();
}

#[test]
fn slow_routing_expires_the_deadline_mid_flight_as_504() {
    let _session = failpoint_session();
    let (addr, stop) = boot(config(2));

    // The delay fires inside the layout trial, after the queue-wait check
    // passed: the remaining-deadline budget expires at the next routing
    // checkpoint and the transpile aborts mid-flight.
    arm(
        "layout_trial",
        Action::Delay(Duration::from_millis(400)),
        1.0,
    );
    let expired = client::post(&addr, "/transpile?timeout-ms=150", GHZ5).expect("expired");
    assert_eq!(expired.status, 504, "body: {}", expired.body);
    assert_eq!(expired.header("x-error-kind").unwrap(), "deadline");

    disarm_all();
    let fine = client::post(&addr, "/transpile?timeout-ms=60000", GHZ5).expect("after disarm");
    assert_eq!(fine.status, 200, "body: {}", fine.body);

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert!(
        metrics.body.contains("\"deadline_expired\":1"),
        "metrics: {}",
        metrics.body
    );
    stop();
}

#[test]
fn handler_panic_restarts_the_worker_and_service_continues() {
    let _session = failpoint_session();
    // One worker: the panicking request kills the only worker, so the next
    // request can only succeed if supervision respawned it.
    let (addr, stop) = boot(config(1));

    let reference = client::post(&addr, "/transpile", BELL).expect("reference");
    assert_eq!(reference.status, 200, "body: {}", reference.body);

    arm("handler", Action::Panic, 1.0);
    // The worker dies before writing a response; the client sees the
    // connection drop. That request is lost — but only that one.
    let dropped = client::post(&addr, "/transpile", BELL);
    assert!(dropped.is_err(), "worker death must drop the connection");

    disarm_all();
    let recovered = client::post(&addr, "/transpile", BELL).expect("respawned worker");
    assert_eq!(recovered.status, 200, "body: {}", recovered.body);
    assert_eq!(recovered.body, reference.body);

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert!(
        metrics.body.contains("\"worker_restarts\":1"),
        "metrics: {}",
        metrics.body
    );
    stop();
}

#[test]
fn cache_commit_panic_poisons_the_session_and_recovery_resets_caches() {
    let _session = failpoint_session();
    let (addr, stop) = boot(config(1));

    let reference = client::post(&addr, "/transpile", BELL).expect("reference");
    assert_eq!(reference.status, 200, "body: {}", reference.body);

    // The commit panic fires *after* the response is computed: the request
    // still succeeds, but the session lock is poisoned behind it.
    arm("cache_commit", Action::Panic, 1.0);
    let during = client::post(&addr, "/transpile", GHZ5).expect("during fault");
    assert_eq!(during.status, 200, "body: {}", during.body);

    disarm_all();
    // The next request recovers the lock, resets the caches (cold again)
    // and still answers byte-identically.
    let recovered = client::post(&addr, "/transpile", BELL).expect("post-poison");
    assert_eq!(recovered.status, 200, "body: {}", recovered.body);
    assert_eq!(recovered.body, reference.body);

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert!(
        metrics.body.contains("\"cache_resets\":1"),
        "metrics: {}",
        metrics.body
    );
    stop();
}

#[test]
fn five_percent_chaos_contains_every_fault_and_recovers_bit_identically() {
    let _session = failpoint_session();
    let (addr, stop) = boot(config(2));

    // Unfaulted references first.
    let circuits = [("bell", BELL), ("ghz5", GHZ5)];
    let references: Vec<String> = circuits
        .iter()
        .map(|(name, source)| {
            let response = client::post(&addr, "/transpile", source).expect(name);
            assert_eq!(response.status, 200, "{name}: {}", response.body);
            response.body
        })
        .collect();

    // Arm the pipeline sites at a 5% fault rate (plus slow trials and the
    // occasional worker death) and sweep.
    let injected_before = total_injections();
    arm("route_step", Action::Panic, 0.05);
    arm(
        "layout_trial",
        Action::Delay(Duration::from_millis(5)),
        0.10,
    );
    arm("cache_commit", Action::Panic, 0.05);
    arm("handler", Action::Panic, 0.02);
    let mut statuses = Vec::new();
    let mut dropped = 0u32;
    for round in 0..30 {
        let (_, source) = circuits[round % circuits.len()];
        match client::post(&addr, "/transpile?timeout-ms=30000", source) {
            Ok(response) => statuses.push(response.status),
            // A worker died mid-request (handler site): contained — the
            // connection drops but the daemon keeps serving.
            Err(_) => dropped += 1,
        }
    }
    disarm_all();
    assert!(
        total_injections() > injected_before,
        "the sweep must actually inject faults"
    );
    for status in &statuses {
        assert!(
            matches!(status, 200 | 500 | 504 | 422),
            "unexpected status {status} under chaos (statuses: {statuses:?}, dropped: {dropped})"
        );
    }

    // Every post-chaos response is byte-identical to its reference.
    for ((name, source), reference) in circuits.iter().zip(&references) {
        let response = client::post(&addr, "/transpile", source).expect(name);
        assert_eq!(response.status, 200, "{name}: {}", response.body);
        assert_eq!(
            &response.body, reference,
            "{name}: post-chaos response must be byte-identical"
        );
    }
    assert_eq!(client::get(&addr, "/health").expect("health").status, 200);
    stop();
}
