//! End-to-end tests of the daemon over real TCP connections: the endpoint
//! surface, the HTTP error taxonomy derived from `ErrorKind`, backpressure
//! (429), deadlines (504) and graceful shutdown.

use std::net::TcpStream;
use std::time::Duration;

use nassc::{qasm, Device, TranspileOptions, Transpiler};
use nassc_serve::{client, ServeConfig, Server};

const BELL: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"#;

const GHZ5: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
"#;

/// Boots a daemon on an ephemeral port; returns its address and a closure
/// that shuts it down and joins the server thread.
fn boot(config: ServeConfig) -> (String, impl FnOnce()) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let running = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.shutdown();
        running.join().expect("server thread");
    })
}

fn default_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        devices: vec![Device::montreal(), Device::linear(4)],
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 60_000,
        options: TranspileOptions::new(),
        max_gates: None,
        max_qubits: None,
    }
}

#[test]
fn health_and_unknown_routes() {
    let (addr, stop) = boot(default_config());
    let health = client::get(&addr, "/health").expect("health");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let missing = client::get(&addr, "/nope").expect("missing");
    assert_eq!(missing.status, 404);

    let wrong_method = client::get(&addr, "/transpile").expect("method");
    assert_eq!(wrong_method.status, 405);
    stop();
}

#[test]
fn transpile_matches_direct_session_call() {
    let (addr, stop) = boot(default_config());
    let response = client::post(&addr, "/transpile", GHZ5).expect("transpile");
    assert_eq!(response.status, 200, "body: {}", response.body);

    let direct = Transpiler::new(Device::montreal(), TranspileOptions::new());
    let result = direct.transpile_qasm(GHZ5).expect("direct");
    let expected = qasm::export(&result.circuit).expect("export");
    assert_eq!(
        response.body, expected,
        "daemon must be a transparent wrapper"
    );

    // The per-request metric headers agree with the direct result.
    assert_eq!(
        response.header("x-cx-count").unwrap(),
        result.cx_count().to_string()
    );
    assert_eq!(
        response.header("x-swap-count").unwrap(),
        result.swap_count.to_string()
    );
    assert_eq!(
        response.header("x-depth").unwrap(),
        result.depth().to_string()
    );
    assert_eq!(response.header("x-device").unwrap(), "montreal");
    assert!(response.header("x-elapsed-ms").is_some());
    assert!(response.header("x-queue-ms").is_some());
    stop();
}

#[test]
fn device_and_option_query_params() {
    let (addr, stop) = boot(default_config());

    // Named device + explicit options, checked against a direct call.
    let response = client::post(
        &addr,
        "/transpile?device=linear:4&router=sabre&seed=7&layout-trials=2",
        BELL,
    )
    .expect("transpile");
    assert_eq!(response.status, 200, "body: {}", response.body);
    let direct = Transpiler::new(Device::linear(4), TranspileOptions::new());
    let options = TranspileOptions::new()
        .router(nassc::RouterKind::Sabre)
        .seed(7)
        .layout_trials(2);
    let result = direct
        .transpile_qasm_with(BELL, &options)
        .expect("direct with options");
    assert_eq!(
        response.body,
        qasm::export(&result.circuit).expect("export")
    );
    assert_eq!(response.header("x-device").unwrap(), "linear:4");

    // Unknown device names the served ones.
    let unknown = client::post(&addr, "/transpile?device=grid:3x3", BELL).expect("unknown");
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("montreal"), "body: {}", unknown.body);

    // Bad option values are 400s, not silent defaults.
    for query in [
        "/transpile?router=qiskit",
        "/transpile?seed=banana",
        "/transpile?layout-trials=0",
        "/transpile?timeout-ms=soon",
    ] {
        let bad = client::post(&addr, query, BELL).expect("bad option");
        assert_eq!(bad.status, 400, "{query} should be rejected");
    }
    stop();
}

#[test]
fn error_taxonomy_maps_kinds_to_statuses() {
    let (addr, stop) = boot(default_config());

    // Parse failure -> 400.
    let parse = client::post(&addr, "/transpile", "OPENQASM 2.0;\nbogus").expect("parse");
    assert_eq!(parse.status, 400);
    assert_eq!(parse.header("x-error-kind").unwrap(), "parse");

    // Wider than the device -> 422 on the 4-qubit device.
    let wide = client::post(&addr, "/transpile?device=linear:4", GHZ5).expect("wide");
    assert_eq!(wide.status, 422);
    assert_eq!(wide.header("x-error-kind").unwrap(), "too-wide");
    assert!(wide.body.contains("5 qubits"), "body: {}", wide.body);
    stop();
}

#[test]
fn full_queue_sheds_load_with_429() {
    // No workers: nothing drains the queue, so with depth 1 the second
    // connection must be rejected by the acceptor.
    let (addr, stop) = boot(ServeConfig {
        workers: 0,
        queue_depth: 1,
        ..default_config()
    });
    let _parked = TcpStream::connect(&addr).expect("first connection");
    std::thread::sleep(Duration::from_millis(100)); // let the acceptor queue it
    let rejected = client::post(&addr, "/transpile", BELL).expect("second connection");
    assert_eq!(rejected.status, 429);
    stop();
}

#[test]
fn admission_limits_refuse_oversized_circuits_with_422() {
    let (addr, stop) = boot(ServeConfig {
        max_gates: Some(3),
        max_qubits: Some(3),
        ..default_config()
    });

    // GHZ5 exceeds both limits (5 qubits, 5 gates): refused before any
    // transpilation work, with the taxonomy header.
    let refused = client::post(&addr, "/transpile", GHZ5).expect("oversized");
    assert_eq!(refused.status, 422, "body: {}", refused.body);
    assert_eq!(refused.header("x-error-kind").unwrap(), "limits");
    assert!(refused.body.contains("at most 3"), "body: {}", refused.body);

    // Bell (2 qubits, 2 gates) is within limits and still transpiles.
    let admitted = client::post(&addr, "/transpile", BELL).expect("within limits");
    assert_eq!(admitted.status, 200, "body: {}", admitted.body);
    stop();
}

/// The execution-deadline path: a slow-site failpoint stretches routing past
/// the request's `?timeout-ms=`, so the transpile aborts mid-flight with a
/// 504 (the queue-wait check alone would have passed).
#[cfg(feature = "failpoints")]
#[test]
fn deadline_expiring_during_routing_is_504() {
    use nassc::circuit::failpoints::{arm, disarm_all, Action};

    let (addr, stop) = boot(default_config());
    arm(
        "layout_trial",
        Action::Delay(Duration::from_millis(400)),
        1.0,
    );
    let expired = client::post(&addr, "/transpile?timeout-ms=150", GHZ5).expect("expired");
    disarm_all();
    assert_eq!(expired.status, 504, "body: {}", expired.body);
    assert_eq!(expired.header("x-error-kind").unwrap(), "deadline");
    assert!(
        expired.body.contains("transpile exceeded"),
        "must expire mid-flight, not in the queue: {}",
        expired.body
    );
    stop();
}

#[test]
fn expired_deadline_is_504_without_transpiling() {
    let (addr, stop) = boot(default_config());
    // A zero deadline has always expired by the time a worker dequeues.
    let expired = client::post(&addr, "/transpile?timeout-ms=0", BELL).expect("expired");
    assert_eq!(expired.status, 504);
    assert_eq!(expired.header("x-error-kind").unwrap(), "deadline");
    stop();
}

#[test]
fn metrics_report_counts_and_histograms() {
    let (addr, stop) = boot(default_config());
    client::post(&addr, "/transpile", BELL).expect("ok request");
    client::post(&addr, "/transpile", "garbage").expect("bad request");

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let body = &metrics.body;
    assert!(body.contains("\"200\":1"), "metrics: {body}");
    assert!(body.contains("\"400\":1"), "metrics: {body}");
    assert!(
        body.contains("\"transpile_latency_ms\":{\"count\":1"),
        "metrics: {body}"
    );
    assert!(body.contains("\"name\":\"montreal\""), "metrics: {body}");
    assert!(body.contains("\"cache_misses\""), "metrics: {body}");
    assert!(body.contains("\"queue\":{\"depth\":"), "metrics: {body}");
    stop();
}

#[test]
fn graceful_shutdown_drains_and_stops_listening() {
    let (addr, stop) = boot(default_config());
    let ok = client::post(&addr, "/transpile", BELL).expect("before shutdown");
    assert_eq!(ok.status, 200);
    stop(); // returns only after the queue drained and workers joined
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener must be closed after shutdown"
    );
}
