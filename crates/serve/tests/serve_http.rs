//! End-to-end tests of the daemon over real TCP connections: the endpoint
//! surface, the HTTP error taxonomy derived from `ErrorKind`, backpressure
//! (429), deadlines (504) and graceful shutdown.

use std::net::TcpStream;
use std::time::Duration;

use nassc::{qasm, Device, TranspileOptions, Transpiler};
use nassc_serve::{client, ServeConfig, Server};

const BELL: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"#;

const GHZ5: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
"#;

/// Boots a daemon on an ephemeral port; returns its address and a closure
/// that shuts it down and joins the server thread.
fn boot(config: ServeConfig) -> (String, impl FnOnce()) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let running = std::thread::spawn(move || server.run());
    (addr, move || {
        shutdown.shutdown();
        running.join().expect("server thread");
    })
}

fn default_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        devices: vec![Device::montreal(), Device::linear(4)],
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 60_000,
        options: TranspileOptions::new(),
        max_gates: None,
        max_qubits: None,
    }
}

#[test]
fn health_and_unknown_routes() {
    let (addr, stop) = boot(default_config());
    let health = client::get(&addr, "/health").expect("health");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let missing = client::get(&addr, "/nope").expect("missing");
    assert_eq!(missing.status, 404);

    let wrong_method = client::get(&addr, "/transpile").expect("method");
    assert_eq!(wrong_method.status, 405);
    stop();
}

#[test]
fn transpile_matches_direct_session_call() {
    let (addr, stop) = boot(default_config());
    let response = client::post(&addr, "/transpile", GHZ5).expect("transpile");
    assert_eq!(response.status, 200, "body: {}", response.body);

    let direct = Transpiler::new(Device::montreal(), TranspileOptions::new());
    let result = direct.transpile_qasm(GHZ5).expect("direct");
    let expected = qasm::export(&result.circuit).expect("export");
    assert_eq!(
        response.body, expected,
        "daemon must be a transparent wrapper"
    );

    // The per-request metric headers agree with the direct result.
    assert_eq!(
        response.header("x-cx-count").unwrap(),
        result.cx_count().to_string()
    );
    assert_eq!(
        response.header("x-swap-count").unwrap(),
        result.swap_count.to_string()
    );
    assert_eq!(
        response.header("x-depth").unwrap(),
        result.depth().to_string()
    );
    assert_eq!(response.header("x-device").unwrap(), "montreal");
    assert!(response.header("x-elapsed-ms").is_some());
    assert!(response.header("x-queue-ms").is_some());
    stop();
}

#[test]
fn device_and_option_query_params() {
    let (addr, stop) = boot(default_config());

    // Named device + explicit options, checked against a direct call.
    let response = client::post(
        &addr,
        "/transpile?device=linear:4&router=sabre&seed=7&layout-trials=2",
        BELL,
    )
    .expect("transpile");
    assert_eq!(response.status, 200, "body: {}", response.body);
    let direct = Transpiler::new(Device::linear(4), TranspileOptions::new());
    let options = TranspileOptions::new()
        .router(nassc::RouterKind::Sabre)
        .seed(7)
        .layout_trials(2);
    let result = direct
        .transpile_qasm_with(BELL, &options)
        .expect("direct with options");
    assert_eq!(
        response.body,
        qasm::export(&result.circuit).expect("export")
    );
    assert_eq!(response.header("x-device").unwrap(), "linear:4");

    // Unknown device names the served ones.
    let unknown = client::post(&addr, "/transpile?device=grid:3x3", BELL).expect("unknown");
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("montreal"), "body: {}", unknown.body);

    // Bad option values are 400s, not silent defaults.
    for query in [
        "/transpile?router=qiskit",
        "/transpile?seed=banana",
        "/transpile?layout-trials=0",
        "/transpile?timeout-ms=soon",
    ] {
        let bad = client::post(&addr, query, BELL).expect("bad option");
        assert_eq!(bad.status, 400, "{query} should be rejected");
    }
    stop();
}

#[test]
fn error_taxonomy_maps_kinds_to_statuses() {
    let (addr, stop) = boot(default_config());

    // Parse failure -> 400.
    let parse = client::post(&addr, "/transpile", "OPENQASM 2.0;\nbogus").expect("parse");
    assert_eq!(parse.status, 400);
    assert_eq!(parse.header("x-error-kind").unwrap(), "parse");

    // Wider than the device -> 422 on the 4-qubit device.
    let wide = client::post(&addr, "/transpile?device=linear:4", GHZ5).expect("wide");
    assert_eq!(wide.status, 422);
    assert_eq!(wide.header("x-error-kind").unwrap(), "too-wide");
    assert!(wide.body.contains("5 qubits"), "body: {}", wide.body);
    stop();
}

#[test]
fn full_queue_sheds_load_with_429() {
    // No workers: nothing drains the queue, so with depth 1 the second
    // connection must be rejected by the acceptor.
    let (addr, stop) = boot(ServeConfig {
        workers: 0,
        queue_depth: 1,
        ..default_config()
    });
    let _parked = TcpStream::connect(&addr).expect("first connection");
    std::thread::sleep(Duration::from_millis(100)); // let the acceptor queue it
    let rejected = client::post(&addr, "/transpile", BELL).expect("second connection");
    assert_eq!(rejected.status, 429);
    stop();
}

#[test]
fn admission_limits_refuse_oversized_circuits_with_422() {
    let (addr, stop) = boot(ServeConfig {
        max_gates: Some(3),
        max_qubits: Some(3),
        ..default_config()
    });

    // GHZ5 exceeds both limits (5 qubits, 5 gates): refused before any
    // transpilation work, with the taxonomy header.
    let refused = client::post(&addr, "/transpile", GHZ5).expect("oversized");
    assert_eq!(refused.status, 422, "body: {}", refused.body);
    assert_eq!(refused.header("x-error-kind").unwrap(), "limits");
    assert!(refused.body.contains("at most 3"), "body: {}", refused.body);

    // Bell (2 qubits, 2 gates) is within limits and still transpiles.
    let admitted = client::post(&addr, "/transpile", BELL).expect("within limits");
    assert_eq!(admitted.status, 200, "body: {}", admitted.body);
    stop();
}

/// The execution-deadline path: a slow-site failpoint stretches routing past
/// the request's `?timeout-ms=`, so the transpile aborts mid-flight with a
/// 504 (the queue-wait check alone would have passed).
#[cfg(feature = "failpoints")]
#[test]
fn deadline_expiring_during_routing_is_504() {
    use nassc::circuit::failpoints::{arm, disarm_all, Action};

    let (addr, stop) = boot(default_config());
    arm(
        "layout_trial",
        Action::Delay(Duration::from_millis(400)),
        1.0,
    );
    let expired = client::post(&addr, "/transpile?timeout-ms=150", GHZ5).expect("expired");
    disarm_all();
    assert_eq!(expired.status, 504, "body: {}", expired.body);
    assert_eq!(expired.header("x-error-kind").unwrap(), "deadline");
    assert!(
        expired.body.contains("transpile exceeded"),
        "must expire mid-flight, not in the queue: {}",
        expired.body
    );
    stop();
}

#[test]
fn expired_deadline_is_504_without_transpiling() {
    let (addr, stop) = boot(default_config());
    // A zero deadline has always expired by the time a worker dequeues.
    let expired = client::post(&addr, "/transpile?timeout-ms=0", BELL).expect("expired");
    assert_eq!(expired.status, 504);
    assert_eq!(expired.header("x-error-kind").unwrap(), "deadline");
    stop();
}

#[test]
fn metrics_report_counts_and_histograms() {
    let (addr, stop) = boot(default_config());
    client::post(&addr, "/transpile", BELL).expect("ok request");
    client::post(&addr, "/transpile", "garbage").expect("bad request");

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let body = &metrics.body;
    assert!(body.contains("\"200\":1"), "metrics: {body}");
    assert!(body.contains("\"400\":1"), "metrics: {body}");
    assert!(
        body.contains("\"transpile_latency_ms\":{\"count\":1"),
        "metrics: {body}"
    );
    assert!(body.contains("\"name\":\"montreal\""), "metrics: {body}");
    assert!(body.contains("\"cache_misses\""), "metrics: {body}");
    assert!(body.contains("\"queue\":{\"depth\":"), "metrics: {body}");
    stop();
}

/// Extracts and unescapes the first JSON string field named `key`.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = body[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// The value of an unlabeled Prometheus metric line `name <value>`.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// The first JSON number following `"key":`.
fn json_number(body: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = body.find(&marker)? + marker.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    digits.parse().ok()
}

#[test]
fn request_ids_are_assigned_and_inbound_ids_are_echoed() {
    let (addr, stop) = boot(default_config());

    let assigned = client::post(&addr, "/transpile", BELL).expect("assigned");
    let id = assigned.header("x-request-id").expect("id header");
    assert!(id.starts_with("serve-"), "assigned id: {id}");

    let echoed = client::request_with_headers(
        &addr,
        "POST",
        "/transpile",
        &[("x-request-id", "corr-abc.123")],
        BELL,
    )
    .expect("echoed");
    assert_eq!(echoed.header("x-request-id").unwrap(), "corr-abc.123");

    // An oversized inbound id is replaced by a server-assigned one.
    let oversized = "x".repeat(200);
    let replaced = client::request_with_headers(
        &addr,
        "POST",
        "/transpile",
        &[("x-request-id", &oversized)],
        BELL,
    )
    .expect("replaced");
    let id = replaced.header("x-request-id").expect("id header");
    assert!(id.starts_with("serve-"), "sanitized id: {id}");

    // Error responses carry ids too.
    let missing = client::get(&addr, "/nope").expect("missing");
    assert!(missing.header("x-request-id").is_some());
    stop();
}

#[test]
fn version_reports_crate_version_and_features() {
    let (addr, stop) = boot(default_config());
    let version = client::get(&addr, "/version").expect("version");
    assert_eq!(version.status, 200);
    assert!(version.body.contains("\"name\":\"nassc-serve\""));
    assert_eq!(
        json_str_field(&version.body, "version").as_deref(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let expected = if cfg!(feature = "failpoints") {
        "\"failpoints\":true"
    } else {
        "\"failpoints\":false"
    };
    assert!(version.body.contains(expected), "body: {}", version.body);
    stop();
}

#[test]
fn metrics_json_and_prometheus_render_the_same_numbers() {
    let (addr, stop) = boot(default_config());
    for _ in 0..3 {
        let ok = client::post(&addr, "/transpile", BELL).expect("transpile");
        assert_eq!(ok.status, 200);
    }

    let json = client::get(&addr, "/metrics").expect("json metrics");
    assert_eq!(json.status, 200);
    let prom =
        client::request_with_headers(&addr, "GET", "/metrics", &[("accept", "text/plain")], "")
            .expect("prometheus metrics");
    assert_eq!(prom.status, 200);
    assert!(
        prom.body.starts_with("# TYPE nassc_serve_"),
        "not text exposition: {}",
        prom.body
    );

    // Compare metrics that the interleaved /metrics requests themselves do
    // not move: the transpile latency histogram and static capacities.
    let json_latency = json
        .body
        .split("\"transpile_latency_ms\":")
        .nth(1)
        .expect("latency in json");
    assert_eq!(json_number(json_latency, "count"), Some(3.0));
    assert_eq!(
        prom_value(&prom.body, "nassc_serve_transpile_latency_ms_count"),
        Some(3.0)
    );
    assert!(prom
        .body
        .contains("nassc_serve_transpile_latency_ms_bucket{le=\"+Inf\"} 3"));
    assert_eq!(
        json_number(&json.body, "capacity"),
        prom_value(&prom.body, "nassc_serve_queue_capacity"),
    );
    assert_eq!(
        json_number(&json.body, "started_at_epoch_seconds"),
        prom_value(&prom.body, "nassc_serve_started_at_epoch_seconds"),
    );
    assert_eq!(
        json_number(&json.body, "trace_events_dropped"),
        prom_value(&prom.body, "nassc_serve_trace_events_dropped"),
    );
    assert_eq!(json_number(&json.body, "trace_events_dropped"), Some(0.0));
    assert_eq!(
        json_number(&json.body, "worker_restarts"),
        prom_value(&prom.body, "nassc_serve_worker_restarts_total"),
    );
    // Cumulative montreal cache hits/misses agree across renderings.
    let montreal_json = json
        .body
        .split("\"name\":\"montreal\"")
        .nth(1)
        .expect("montreal in json");
    assert_eq!(
        json_number(montreal_json, "cache_hits"),
        prom_value(
            &prom.body,
            "nassc_serve_device_cache_hits{device=\"montreal\"}"
        ),
    );
    assert_eq!(
        json_number(montreal_json, "cache_misses"),
        prom_value(
            &prom.body,
            "nassc_serve_device_cache_misses{device=\"montreal\"}"
        ),
    );
    stop();
}

#[test]
fn traced_requests_return_span_tables_that_round_trip() {
    let (addr, stop) = boot(default_config());

    // Nothing traced yet.
    let empty = client::get(&addr, "/trace").expect("trace");
    assert_eq!(empty.status, 404);

    let untraced = client::post(&addr, "/transpile?seed=11", GHZ5).expect("untraced");
    assert_eq!(untraced.status, 200);

    let traced = client::request_with_headers(
        &addr,
        "POST",
        "/transpile?seed=11&trace=1",
        &[("x-request-id", "traced-1")],
        GHZ5,
    )
    .expect("traced");
    assert_eq!(traced.status, 200, "body: {}", traced.body);
    assert_eq!(traced.header("x-request-id").unwrap(), "traced-1");
    assert!(traced.body.contains("\"request_id\":\"traced-1\""));
    assert!(traced.body.contains("\"spans\":["), "body: {}", traced.body);
    assert!(
        traced.body.contains("\"name\":\"job\""),
        "span table must include the session job span: {}",
        traced.body
    );
    // The traced transpile returns the exact bytes of the untraced one —
    // tracing is observational only.
    assert_eq!(
        json_str_field(&traced.body, "qasm").as_deref(),
        Some(untraced.body.as_str()),
        "traced vs untraced qasm mismatch"
    );
    // The metric headers survive the envelope.
    assert!(traced.header("x-cx-count").is_some());

    // /trace replays the last traced request's table.
    let replay = client::get(&addr, "/trace").expect("trace replay");
    assert_eq!(replay.status, 200);
    assert!(replay.body.contains("\"request_id\":\"traced-1\""));
    assert!(replay.body.contains("\"spans\":["));
    stop();
}

#[test]
fn graceful_shutdown_drains_and_stops_listening() {
    let (addr, stop) = boot(default_config());
    let ok = client::post(&addr, "/transpile", BELL).expect("before shutdown");
    assert_eq!(ok.status, 200);
    stop(); // returns only after the queue drained and workers joined
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener must be closed after shutdown"
    );
}
