//! Noisy state-vector simulation for the NASSC reproduction.
//!
//! The Figure 11 experiment compares routing variants under a realistic
//! device noise model. This crate provides the pieces:
//!
//! * [`NoiseModel`] — per-gate depolarising and per-qubit readout errors
//!   derived from a [`nassc_topology::Calibration`],
//! * [`CompactCircuit`] — restriction of a wide device circuit to its active
//!   qubits so routed 27-qubit circuits stay simulable,
//! * [`ideal_distribution`] / [`noisy_counts`] / [`success_rate`] — the
//!   noiseless reference, Monte-Carlo trajectory sampling and the success
//!   metric the paper reports.
//!
//! # Example
//!
//! ```
//! use nassc_circuit::QuantumCircuit;
//! use nassc_sim::{success_rate, NoiseModel};
//!
//! let mut qc = QuantumCircuit::new(2);
//! qc.x(0).cx(0, 1).measure(0).measure(1);
//! let rate = success_rate(&qc, &NoiseModel::noiseless(2), 100, 1);
//! assert!((rate - 1.0).abs() < 1e-9);
//! ```

pub mod noise;
pub mod simulator;

pub use noise::NoiseModel;
pub use simulator::{
    ideal_distribution, ideal_most_likely, noisy_counts, success_rate, CompactCircuit,
};
