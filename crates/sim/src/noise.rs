//! Calibration-driven Pauli noise model.

use nassc_circuit::Instruction;
use nassc_topology::{Calibration, CouplingMap};

/// Gate- and readout-error model derived from device calibration data,
/// mirroring how the paper builds its simulator noise model from
/// `ibmq_montreal` backend properties.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    coupling_qubits: usize,
    calibration: Calibration,
    default_cx_error: f64,
}

impl NoiseModel {
    /// Builds a noise model from a device calibration.
    pub fn from_calibration(coupling: &CouplingMap, calibration: Calibration) -> Self {
        let default_cx_error = coupling
            .edges()
            .iter()
            .filter_map(|&(a, b)| calibration.cx_error(a, b))
            .fold(0.0_f64, f64::max)
            .max(0.01);
        Self {
            coupling_qubits: coupling.num_qubits(),
            calibration,
            default_cx_error,
        }
    }

    /// A noiseless model (useful as a control in tests).
    pub fn noiseless(num_qubits: usize) -> Self {
        let coupling = CouplingMap::fully_connected(num_qubits.max(2));
        let calibration = Calibration::uniform(&coupling, 0.0, 0.0);
        Self {
            coupling_qubits: num_qubits,
            calibration,
            default_cx_error: 0.0,
        }
    }

    /// The number of physical qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.coupling_qubits
    }

    /// The depolarising-error probability applied after the given
    /// instruction (0 for barriers and measurements — readout error is
    /// handled separately).
    pub fn gate_error(&self, inst: &Instruction) -> f64 {
        if !inst.gate.is_unitary() {
            return 0.0;
        }
        match inst.num_qubits() {
            1 => self
                .calibration
                .sq_error(inst.qubit(0).min(self.coupling_qubits - 1)),
            2 => self
                .calibration
                .cx_error(inst.qubit(0), inst.qubit(1))
                .unwrap_or(self.default_cx_error),
            _ => self.default_cx_error * 3.0,
        }
    }

    /// The probability of flipping the measured bit of the given qubit.
    pub fn readout_error(&self, qubit: usize) -> f64 {
        self.calibration
            .readout_error(qubit.min(self.coupling_qubits - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::Gate;

    #[test]
    fn calibration_errors_are_exposed_per_gate() {
        let map = CouplingMap::ibmq_montreal();
        let cal = Calibration::synthetic(&map, 3);
        let model = NoiseModel::from_calibration(&map, cal.clone());
        let cx = Instruction::new(Gate::Cx, vec![0, 1]);
        assert!((model.gate_error(&cx) - cal.cx_error(0, 1).unwrap()).abs() < 1e-12);
        let h = Instruction::new(Gate::H, vec![5]);
        assert!(model.gate_error(&h) > 0.0);
        assert!(model.gate_error(&h) < model.gate_error(&cx));
    }

    #[test]
    fn non_edge_cx_uses_worst_case_error() {
        let map = CouplingMap::linear(4);
        let cal = Calibration::uniform(&map, 0.02, 0.01);
        let model = NoiseModel::from_calibration(&map, cal);
        let far = Instruction::new(Gate::Cx, vec![0, 3]);
        assert!((model.gate_error(&far) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn noiseless_model_has_zero_errors() {
        let model = NoiseModel::noiseless(5);
        let cx = Instruction::new(Gate::Cx, vec![0, 1]);
        assert_eq!(model.gate_error(&cx), 0.0);
        assert_eq!(model.readout_error(3), 0.0);
    }

    #[test]
    fn measurements_carry_no_gate_error() {
        let map = CouplingMap::linear(3);
        let model = NoiseModel::from_calibration(&map, Calibration::uniform(&map, 0.05, 0.04));
        let m = Instruction::new(Gate::Measure, vec![0]);
        assert_eq!(model.gate_error(&m), 0.0);
        assert!((model.readout_error(0) - 0.04).abs() < 1e-12);
    }
}
