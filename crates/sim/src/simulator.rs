//! Dense state-vector simulation with Monte-Carlo Pauli noise.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nassc_circuit::{apply_instruction, Gate, Instruction, QuantumCircuit};
use nassc_math::C64;

use crate::noise::NoiseModel;

/// Maximum number of *active* qubits the dense simulator accepts.
pub const MAX_ACTIVE_QUBITS: usize = 22;

/// A circuit restricted to the qubits it actually touches, so wide device
/// circuits (e.g. routed onto 27 physical qubits) stay simulable.
#[derive(Debug, Clone)]
pub struct CompactCircuit {
    circuit: QuantumCircuit,
    /// `active[i]` is the original index of compact qubit `i`.
    active: Vec<usize>,
    /// Compact indices of measured qubits, in measurement order.
    measured: Vec<usize>,
}

impl CompactCircuit {
    /// Restricts a circuit to its active qubits.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_ACTIVE_QUBITS`] qubits are touched.
    pub fn new(circuit: &QuantumCircuit) -> Self {
        let active = circuit.active_qubits();
        assert!(
            active.len() <= MAX_ACTIVE_QUBITS,
            "circuit touches {} qubits; the dense simulator supports at most {MAX_ACTIVE_QUBITS}",
            active.len()
        );
        let index_of = |q: usize| active.binary_search(&q).expect("active qubit");
        let compact = circuit.map_qubits(active.len().max(1), index_of);
        let mut measured: Vec<usize> = compact
            .iter()
            .filter(|i| i.gate == Gate::Measure)
            .map(|i| i.qubit(0))
            .collect();
        if measured.is_empty() {
            measured = (0..active.len()).collect();
        }
        measured.sort_unstable();
        measured.dedup();
        Self {
            circuit: compact,
            active,
            measured,
        }
    }

    /// The number of active (simulated) qubits.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// The compact circuit itself.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// The original indices of the active qubits.
    pub fn active_qubits(&self) -> &[usize] {
        &self.active
    }

    /// The original index of a compact qubit.
    pub fn original_of(&self, compact: usize) -> usize {
        self.active[compact]
    }
}

/// Runs the circuit without noise and returns the probability of every
/// measured-bitstring outcome (keyed by the packed bits of the measured
/// qubits, least-significant = lowest measured qubit).
pub fn ideal_distribution(circuit: &QuantumCircuit) -> HashMap<u64, f64> {
    let compact = CompactCircuit::new(circuit);
    let n = compact.num_active().max(1);
    let mut state = vec![C64::zero(); 1 << n];
    state[0] = C64::one();
    for inst in compact.circuit().iter() {
        if inst.gate == Gate::Measure {
            continue;
        }
        apply_instruction(&mut state, n, inst);
    }
    let mut out: HashMap<u64, f64> = HashMap::new();
    for (idx, amp) in state.iter().enumerate() {
        let p = amp.norm_sqr();
        if p < 1e-12 {
            continue;
        }
        let key = pack_measured(idx, &compact.measured);
        *out.entry(key).or_insert(0.0) += p;
    }
    out
}

/// The most probable measured bitstring of the noiseless circuit.
pub fn ideal_most_likely(circuit: &QuantumCircuit) -> u64 {
    ideal_distribution(circuit)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probabilities"))
        .map(|(bits, _)| bits)
        .unwrap_or(0)
}

/// Samples `shots` noisy executions of the circuit, returning a histogram of
/// measured bitstrings. Noise is injected as a uniformly random Pauli on the
/// gate's qubits with the model's per-gate probability, plus independent
/// readout bit-flips.
pub fn noisy_counts(
    circuit: &QuantumCircuit,
    noise: &NoiseModel,
    shots: usize,
    seed: u64,
) -> HashMap<u64, usize> {
    let compact = CompactCircuit::new(circuit);
    let n = compact.num_active().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<u64, usize> = HashMap::new();

    for _ in 0..shots {
        let mut state = vec![C64::zero(); 1 << n];
        state[0] = C64::one();
        for inst in compact.circuit().iter() {
            if inst.gate == Gate::Measure {
                continue;
            }
            apply_instruction(&mut state, n, inst);
            // Probability comes from the *original* physical qubits.
            let original = inst.map_qubits(|q| compact.original_of(q));
            let p_err = noise.gate_error(&original);
            if p_err > 0.0 && rng.gen_bool(p_err.min(1.0)) {
                for q in inst.qubits().iter() {
                    match rng.gen_range(0..3) {
                        0 => apply_instruction(&mut state, n, &Instruction::new(Gate::X, vec![q])),
                        1 => apply_instruction(&mut state, n, &Instruction::new(Gate::Y, vec![q])),
                        _ => apply_instruction(&mut state, n, &Instruction::new(Gate::Z, vec![q])),
                    }
                }
            }
        }
        // Sample one basis state from the final distribution.
        let mut r: f64 = rng.gen();
        let mut sampled = 0usize;
        for (idx, amp) in state.iter().enumerate() {
            r -= amp.norm_sqr();
            if r <= 0.0 {
                sampled = idx;
                break;
            }
        }
        // Readout errors flip measured bits independently.
        let mut bits = pack_measured(sampled, &compact.measured);
        for (pos, &compact_q) in compact.measured.iter().enumerate() {
            let p_flip = noise.readout_error(compact.original_of(compact_q));
            if p_flip > 0.0 && rng.gen_bool(p_flip.min(1.0)) {
                bits ^= 1 << pos;
            }
        }
        *counts.entry(bits).or_insert(0) += 1;
    }
    counts
}

/// The paper's Figure 11(b) metric: the fraction of noisy shots returning
/// the noiseless circuit's most likely outcome.
pub fn success_rate(circuit: &QuantumCircuit, noise: &NoiseModel, shots: usize, seed: u64) -> f64 {
    let target = ideal_most_likely(circuit);
    let counts = noisy_counts(circuit, noise, shots, seed);
    let hits = counts.get(&target).copied().unwrap_or(0);
    hits as f64 / shots as f64
}

/// Packs the bits of `basis_index` belonging to the measured qubits.
fn pack_measured(basis_index: usize, measured: &[usize]) -> u64 {
    let mut out = 0u64;
    for (pos, &q) in measured.iter().enumerate() {
        if (basis_index >> q) & 1 == 1 {
            out |= 1 << pos;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_topology::{Calibration, CouplingMap};

    #[test]
    fn compaction_drops_untouched_wires() {
        let mut qc = QuantumCircuit::new(27);
        qc.h(3).cx(3, 7).measure(3).measure(7);
        let compact = CompactCircuit::new(&qc);
        assert_eq!(compact.num_active(), 2);
        assert_eq!(compact.active_qubits(), &[3, 7]);
    }

    #[test]
    fn ideal_distribution_of_bell_pair() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1).measure(0).measure(1);
        let dist = ideal_distribution(&qc);
        assert_eq!(dist.len(), 2);
        assert!((dist[&0b00] - 0.5).abs() < 1e-9);
        assert!((dist[&0b11] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_circuit_has_full_success_without_noise() {
        let mut qc = QuantumCircuit::new(3);
        qc.x(0).cx(0, 1).cx(1, 2).measure(0).measure(1).measure(2);
        let noise = NoiseModel::noiseless(3);
        let rate = success_rate(&qc, &noise, 200, 1);
        assert!((rate - 1.0).abs() < 1e-9);
        assert_eq!(ideal_most_likely(&qc), 0b111);
    }

    #[test]
    fn noise_reduces_success_rate() {
        let map = CouplingMap::linear(5);
        let cal = Calibration::uniform(&map, 0.05, 0.05);
        let noise = NoiseModel::from_calibration(&map, cal);
        let mut qc = QuantumCircuit::new(5);
        qc.x(0);
        for i in 0..4 {
            qc.cx(i, i + 1);
        }
        for q in 0..5 {
            qc.measure(q);
        }
        let rate = success_rate(&qc, &noise, 400, 7);
        assert!(rate < 0.99, "noise should reduce success, got {rate}");
        assert!(rate > 0.3, "noise unrealistically destructive, got {rate}");
    }

    #[test]
    fn deeper_circuits_have_lower_success() {
        let map = CouplingMap::linear(4);
        let cal = Calibration::uniform(&map, 0.03, 0.02);
        let noise = NoiseModel::from_calibration(&map, cal);
        let mut shallow = QuantumCircuit::new(4);
        shallow.x(0).cx(0, 1).measure(0).measure(1);
        let mut deep = QuantumCircuit::new(4);
        deep.x(0);
        for _ in 0..8 {
            deep.cx(0, 1).cx(1, 2).cx(2, 3).cx(2, 3).cx(1, 2).cx(0, 1);
        }
        deep.measure(0).measure(1);
        let shallow_rate = success_rate(&shallow, &noise, 600, 3);
        let deep_rate = success_rate(&deep, &noise, 600, 3);
        assert!(shallow_rate > deep_rate, "{shallow_rate} vs {deep_rate}");
    }

    #[test]
    fn counts_sum_to_shots() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1).measure(0).measure(1);
        let noise = NoiseModel::noiseless(2);
        let counts = noisy_counts(&qc, &noise, 128, 9);
        assert_eq!(counts.values().sum::<usize>(), 128);
    }

    #[test]
    fn readout_error_alone_flips_bits() {
        let map = CouplingMap::linear(2);
        // Readout error only, no gate error.
        let cal = Calibration::uniform(&map, 0.0, 0.2);
        let noise = NoiseModel::from_calibration(&map, cal);
        let mut qc = QuantumCircuit::new(2);
        qc.measure(0).measure(1);
        let rate = success_rate(&qc, &noise, 1000, 11);
        // Success requires both readouts correct: ≈ 0.8².
        assert!((rate - 0.64).abs() < 0.08, "got {rate}");
    }
}
