//! Fixed-size 2×2 and 4×4 complex matrices.
//!
//! These are the only matrix sizes the quantum stack manipulates (one- and
//! two-qubit operators), so both types are simple stack-allocated arrays with
//! exactly the operations the synthesis and simulation layers need.

use crate::complex::C64;

/// A 2×2 complex matrix (a single-qubit operator).
///
/// # Example
///
/// ```
/// use nassc_math::Matrix2;
///
/// let x = Matrix2::pauli_x();
/// assert!(x.mul(&x).approx_eq(&Matrix2::identity(), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2 {
    data: [[C64; 2]; 2],
}

impl Matrix2 {
    /// Builds a matrix from rows.
    pub const fn new(data: [[C64; 2]; 2]) -> Self {
        Self { data }
    }

    /// The 2×2 identity.
    pub fn identity() -> Self {
        Self::new([[C64::one(), C64::zero()], [C64::zero(), C64::one()]])
    }

    /// The Pauli-X matrix.
    pub fn pauli_x() -> Self {
        Self::new([[C64::zero(), C64::one()], [C64::one(), C64::zero()]])
    }

    /// The Pauli-Y matrix.
    pub fn pauli_y() -> Self {
        Self::new([
            [C64::zero(), C64::new(0.0, -1.0)],
            [C64::new(0.0, 1.0), C64::zero()],
        ])
    }

    /// The Pauli-Z matrix.
    pub fn pauli_z() -> Self {
        Self::new([[C64::one(), C64::zero()], [C64::zero(), C64::real(-1.0)]])
    }

    /// The Hadamard matrix.
    pub fn hadamard() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Self::new([[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]])
    }

    /// Element access.
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[row][col]
    }

    /// Mutable element access.
    pub fn set(&mut self, row: usize, col: usize, value: C64) {
        self.data[row][col] = value;
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix2) -> Matrix2 {
        let mut out = [[C64::zero(); 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = C64::zero();
                for k in 0..2 {
                    acc += self.data[i][k] * rhs.data[k][j];
                }
                *cell = acc;
            }
        }
        Matrix2::new(out)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix2 {
        let mut out = [[C64::zero(); 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.data[j][i].conj();
            }
        }
        Matrix2::new(out)
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.data[0][0] * self.data[1][1] - self.data[0][1] * self.data[1][0]
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        self.data[0][0] + self.data[1][1]
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> Matrix2 {
        let mut out = self.data;
        for row in &mut out {
            for cell in row.iter_mut() {
                *cell *= s;
            }
        }
        Matrix2::new(out)
    }

    /// Entry-wise comparison within `tol`.
    pub fn approx_eq(&self, other: &Matrix2, tol: f64) -> bool {
        self.data
            .iter()
            .flatten()
            .zip(other.data.iter().flatten())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Comparison that ignores a global phase factor.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix2, tol: f64) -> bool {
        match phase_between(
            self.data.iter().flatten().copied(),
            other.data.iter().flatten().copied(),
            tol,
        ) {
            Some(phase) => self.approx_eq(&other.scale(phase), tol),
            None => false,
        }
    }

    /// Returns `true` when `self * self† ≈ I`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul(&self.adjoint())
            .approx_eq(&Matrix2::identity(), tol)
    }

    /// Kronecker product producing a 4×4 matrix. `self` acts on the most
    /// significant qubit of the pair.
    pub fn kron(&self, rhs: &Matrix2) -> Matrix4 {
        let mut out = [[C64::zero(); 4]; 4];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out[2 * i + k][2 * j + l] = self.data[i][j] * rhs.data[k][l];
                    }
                }
            }
        }
        Matrix4::new(out)
    }
}

/// A 4×4 complex matrix (a two-qubit operator).
///
/// # Example
///
/// ```
/// use nassc_math::Matrix4;
///
/// let cx = Matrix4::cnot();
/// assert!(cx.mul(&cx).approx_eq(&Matrix4::identity(), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix4 {
    data: [[C64; 4]; 4],
}

impl Matrix4 {
    /// Builds a matrix from rows.
    pub const fn new(data: [[C64; 4]; 4]) -> Self {
        Self { data }
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut data = [[C64::zero(); 4]; 4];
        for (i, row) in data.iter_mut().enumerate() {
            row[i] = C64::one();
        }
        Self::new(data)
    }

    /// The CNOT matrix with qubit 0 (least significant) as control and
    /// qubit 1 as target, in little-endian ordering `|q1 q0>`.
    pub fn cnot() -> Self {
        let o = C64::one();
        let z = C64::zero();
        // Basis order |00>, |01>, |10>, |11> with q0 least significant.
        // Control q0: |01> -> |11>, |11> -> |01>.
        Self::new([[o, z, z, z], [z, z, z, o], [z, z, o, z], [z, o, z, z]])
    }

    /// The SWAP matrix.
    pub fn swap() -> Self {
        let o = C64::one();
        let z = C64::zero();
        Self::new([[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]])
    }

    /// Element access.
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[row][col]
    }

    /// Mutable element access.
    pub fn set(&mut self, row: usize, col: usize, value: C64) {
        self.data[row][col] = value;
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix4) -> Matrix4 {
        let mut out = [[C64::zero(); 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = C64::zero();
                for k in 0..4 {
                    acc += self.data[i][k] * rhs.data[k][j];
                }
                *cell = acc;
            }
        }
        Matrix4::new(out)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix4 {
        let mut out = [[C64::zero(); 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.data[j][i].conj();
            }
        }
        Matrix4::new(out)
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Matrix4 {
        let mut out = [[C64::zero(); 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.data[j][i];
            }
        }
        Matrix4::new(out)
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        (0..4).map(|i| self.data[i][i]).sum()
    }

    /// Determinant via cofactor expansion.
    pub fn det(&self) -> C64 {
        let m = &self.data;
        let det3 = |r: [usize; 3], c: [usize; 3]| -> C64 {
            m[r[0]][c[0]] * (m[r[1]][c[1]] * m[r[2]][c[2]] - m[r[1]][c[2]] * m[r[2]][c[1]])
                - m[r[0]][c[1]] * (m[r[1]][c[0]] * m[r[2]][c[2]] - m[r[1]][c[2]] * m[r[2]][c[0]])
                + m[r[0]][c[2]] * (m[r[1]][c[0]] * m[r[2]][c[1]] - m[r[1]][c[1]] * m[r[2]][c[0]])
        };
        let rows = [1, 2, 3];
        let cols = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];
        let mut det = C64::zero();
        for j in 0..4 {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            det += m[0][j] * det3(rows, cols[j]).scale(sign);
        }
        det
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> Matrix4 {
        let mut out = self.data;
        for row in &mut out {
            for cell in row.iter_mut() {
                *cell *= s;
            }
        }
        Matrix4::new(out)
    }

    /// Entry-wise comparison within `tol`.
    pub fn approx_eq(&self, other: &Matrix4, tol: f64) -> bool {
        self.data
            .iter()
            .flatten()
            .zip(other.data.iter().flatten())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Comparison that ignores a global phase factor.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix4, tol: f64) -> bool {
        match phase_between(
            self.data.iter().flatten().copied(),
            other.data.iter().flatten().copied(),
            tol,
        ) {
            Some(phase) => self.approx_eq(&other.scale(phase), tol),
            None => false,
        }
    }

    /// Returns `true` when `self * self† ≈ I`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul(&self.adjoint())
            .approx_eq(&Matrix4::identity(), tol)
    }

    /// Reinterprets the matrix with the two qubits exchanged (conjugation by
    /// SWAP). Useful for mapping little-endian conventions.
    pub fn swap_qubits(&self) -> Matrix4 {
        let s = Matrix4::swap();
        s.mul(self).mul(&s)
    }
}

/// Finds the phase `p` such that `a ≈ p * b` when the two sequences differ by
/// only a global phase; returns `None` when no reference entry is large
/// enough to determine it.
fn phase_between<I, J>(a: I, b: J, tol: f64) -> Option<C64>
where
    I: Iterator<Item = C64>,
    J: Iterator<Item = C64>,
{
    let pairs: Vec<(C64, C64)> = a.zip(b).collect();
    let (sa, sb) = pairs
        .iter()
        .max_by(|x, y| x.1.norm_sqr().partial_cmp(&y.1.norm_sqr()).unwrap())?;
    if sb.abs() <= tol {
        // Both matrices are (near) zero; any phase works.
        return Some(C64::one());
    }
    Some(*sa / *sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_matrices_square_to_identity() {
        for m in [
            Matrix2::pauli_x(),
            Matrix2::pauli_y(),
            Matrix2::pauli_z(),
            Matrix2::hadamard(),
        ] {
            assert!(m.mul(&m).approx_eq(&Matrix2::identity(), 1e-12));
            assert!(m.is_unitary(1e-12));
        }
    }

    #[test]
    fn xy_equals_iz() {
        let xy = Matrix2::pauli_x().mul(&Matrix2::pauli_y());
        let iz = Matrix2::pauli_z().scale(C64::i());
        assert!(xy.approx_eq(&iz, 1e-12));
    }

    #[test]
    fn kron_identity_is_identity() {
        let id4 = Matrix2::identity().kron(&Matrix2::identity());
        assert!(id4.approx_eq(&Matrix4::identity(), 1e-12));
    }

    #[test]
    fn cnot_and_swap_are_unitary_involutions() {
        assert!(Matrix4::cnot().is_unitary(1e-12));
        assert!(Matrix4::swap().is_unitary(1e-12));
        assert!(Matrix4::cnot()
            .mul(&Matrix4::cnot())
            .approx_eq(&Matrix4::identity(), 1e-12));
        assert!(Matrix4::swap()
            .mul(&Matrix4::swap())
            .approx_eq(&Matrix4::identity(), 1e-12));
    }

    #[test]
    fn swap_from_three_cnots() {
        // SWAP = CX(0,1) CX(1,0) CX(0,1) where CX(1,0) = (H⊗H) CX (H⊗H).
        let cx01 = Matrix4::cnot();
        let hh = Matrix2::hadamard().kron(&Matrix2::hadamard());
        let cx10 = hh.mul(&cx01).mul(&hh);
        let swap = cx01.mul(&cx10).mul(&cx01);
        assert!(swap.approx_eq(&Matrix4::swap(), 1e-12));
    }

    #[test]
    fn determinant_of_unitary_has_modulus_one() {
        let m = Matrix2::hadamard()
            .kron(&Matrix2::pauli_y())
            .mul(&Matrix4::cnot());
        assert!((m.det().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_insensitive_comparison() {
        let m = Matrix4::cnot();
        let phased = m.scale(C64::exp_i(0.7));
        assert!(m.approx_eq_up_to_phase(&phased, 1e-12));
        assert!(!m.approx_eq(&phased, 1e-12));
        assert!(!m.approx_eq_up_to_phase(&Matrix4::swap(), 1e-9));
    }

    #[test]
    fn swap_qubits_conjugation() {
        // CNOT with control/target exchanged equals SWAP * CNOT * SWAP.
        let reversed = Matrix4::cnot().swap_qubits();
        let hh = Matrix2::hadamard().kron(&Matrix2::hadamard());
        let expected = hh.mul(&Matrix4::cnot()).mul(&hh);
        assert!(reversed.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn det4_matches_product_for_diagonal() {
        let mut d = Matrix4::identity();
        d.set(0, 0, C64::real(2.0));
        d.set(1, 1, C64::real(3.0));
        d.set(2, 2, C64::new(0.0, 1.0));
        d.set(3, 3, C64::real(-1.0));
        assert!(d.det().approx_eq(C64::new(0.0, -6.0), 1e-12));
    }
}
