//! A minimal complex-number type.
//!
//! The reproduction keeps its dependency set small, so instead of pulling in
//! `num-complex` we implement the handful of operations the synthesis and
//! simulation code needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Example
///
/// ```
/// use nassc_math::C64;
///
/// let i = C64::i();
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0`.
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1`.
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Builds a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Self::new(re, 0.0)
    }

    /// Euler's formula: `exp(i * theta)`.
    pub fn exp_i(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// The complex exponential `exp(self)`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs().sqrt();
        let theta = self.arg() / 2.0;
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both parts are within `tol` of the other value.
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when the value is within `tol` of zero.
    pub fn is_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::zero(), |acc, x| acc + x)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a, 1e-14));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((a - a).is_zero(1e-15));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::i() * C64::i()).approx_eq(C64::real(-1.0), 1e-15));
    }

    #[test]
    fn exp_i_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.4 - 3.0;
            let z = C64::exp_i(theta);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!(
                (z.arg() - theta.rem_euclid(2.0 * std::f64::consts::PI)).abs() < 1e-12
                    || (z.arg() + 2.0 * std::f64::consts::PI
                        - theta.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                        < 1e-12
            );
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-12));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z.norm_sqr() - 25.0).abs() < 1e-15);
        assert!((z.abs() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1.0000+2.0000i");
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1.0000-2.0000i");
    }

    #[test]
    fn sum_of_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(C64::new(6.0, 4.0), 1e-15));
    }
}
