//! Jacobi eigensolver for small real-symmetric matrices.
//!
//! The two-qubit Weyl (KAK) decomposition diagonalises the complex-symmetric
//! matrix `M = Uᵀ U` (in the magic basis) by *simultaneously* diagonalising
//! its commuting real and imaginary parts, both of which are real symmetric.
//! This module provides the two building blocks that requires:
//!
//! * [`jacobi_eigen`] — eigenvalues and an orthonormal eigenbasis of a real
//!   symmetric `n×n` matrix (cyclic Jacobi rotations), and
//! * [`simultaneous_diagonalize`] — a common orthogonal eigenbasis for two
//!   commuting real symmetric matrices.

/// A dynamically sized dense real matrix stored row-major.
///
/// Only the handful of operations needed by the eigensolver are provided.
#[derive(Debug, Clone, PartialEq)]
pub struct RealMatrix {
    n: usize,
    data: Vec<f64>,
}

impl RealMatrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must have n*n entries");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Mutable element access.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &RealMatrix) -> RealMatrix {
        assert_eq!(self.n, rhs.n);
        let n = self.n;
        let mut out = RealMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> RealMatrix {
        let n = self.n;
        let mut out = RealMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Returns `true` when the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The largest absolute off-diagonal entry.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m: f64 = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    m = m.max(self.get(i, j).abs());
                }
            }
        }
        m
    }

    /// Determinant via LU decomposition with partial pivoting.
    pub fn det(&self) -> f64 {
        let n = self.n;
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            for row in (col + 1)..n {
                if a.get(row, col).abs() > a.get(pivot, col).abs() {
                    pivot = row;
                }
            }
            if a.get(pivot, col).abs() < 1e-300 {
                return 0.0;
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = a.get(col, j);
                    a.set(col, j, a.get(pivot, j));
                    a.set(pivot, j, tmp);
                }
                det = -det;
            }
            det *= a.get(col, col);
            for row in (col + 1)..n {
                let factor = a.get(row, col) / a.get(col, col);
                for j in col..n {
                    let v = a.get(row, j) - factor * a.get(col, j);
                    a.set(row, j, v);
                }
            }
        }
        det
    }
}

/// The result of a symmetric eigendecomposition: `matrix = V · diag(values) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, in the order matching the columns of `vectors`.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored as columns.
    pub vectors: RealMatrix,
}

/// Diagonalises a real symmetric matrix with the cyclic Jacobi method.
///
/// Returns eigenvalues and an orthonormal eigenvector matrix (columns are
/// eigenvectors). Eigenvalues are **not** sorted.
///
/// # Panics
///
/// Panics if the matrix is not symmetric within `1e-8`.
pub fn jacobi_eigen(matrix: &RealMatrix) -> Eigen {
    assert!(
        matrix.is_symmetric(1e-8),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = matrix.dim();
    let mut a = matrix.clone();
    let mut v = RealMatrix::identity(n);

    for _sweep in 0..100 {
        if a.max_off_diagonal() < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Standard Jacobi rotation angle: tan(2θ) = 2a_pq / (a_pp - a_qq)
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let c = phi.cos();
                let s = phi.sin();
                // Apply rotation R(p,q,phi) on both sides: A' = Rᵀ A R.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp + s * akq);
                    a.set(k, q, -s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk + s * aqk);
                    a.set(q, k, -s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp + s * vkq);
                    v.set(k, q, -s * vkp + c * vkq);
                }
            }
        }
    }

    let values = (0..n).map(|i| a.get(i, i)).collect();
    Eigen { values, vectors: v }
}

/// Finds a common orthonormal eigenbasis of two commuting real symmetric
/// matrices `a` and `b`.
///
/// The returned matrix `V` has columns that are simultaneously eigenvectors
/// of both inputs: `Vᵀ a V` and `Vᵀ b V` are both diagonal (within numerical
/// tolerance). The algorithm diagonalises `a`, groups (near-)degenerate
/// eigenvalues, and re-diagonalises `b` restricted to each degenerate
/// subspace.
///
/// # Panics
///
/// Panics if either matrix is not symmetric.
pub fn simultaneous_diagonalize(a: &RealMatrix, b: &RealMatrix, degeneracy_tol: f64) -> RealMatrix {
    assert_eq!(a.dim(), b.dim());
    let n = a.dim();
    let ea = jacobi_eigen(a);

    // Sort eigenpairs by eigenvalue so that degenerate clusters are contiguous.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| ea.values[i].partial_cmp(&ea.values[j]).unwrap());

    let mut basis = RealMatrix::zeros(n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            basis.set(row, new_col, ea.vectors.get(row, old_col));
        }
    }
    let sorted_values: Vec<f64> = order.iter().map(|&i| ea.values[i]).collect();

    // Identify clusters of (near-)equal eigenvalues of `a`.
    let mut clusters: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=n {
        if i == n || (sorted_values[i] - sorted_values[i - 1]).abs() > degeneracy_tol {
            clusters.push((start, i));
            start = i;
        }
    }

    // Within each cluster, diagonalise b restricted to the subspace.
    let mut result = basis.clone();
    for &(lo, hi) in &clusters {
        let m = hi - lo;
        if m <= 1 {
            continue;
        }
        // Compute the m×m restriction Bsub = Pᵀ b P where P are the cluster columns.
        let mut bsub = RealMatrix::zeros(m);
        for i in 0..m {
            for j in 0..m {
                let mut acc = 0.0;
                for r in 0..n {
                    for c in 0..n {
                        acc += basis.get(r, lo + i) * b.get(r, c) * basis.get(c, lo + j);
                    }
                }
                bsub.set(i, j, acc);
            }
        }
        // Symmetrise tiny numerical asymmetry before diagonalising.
        for i in 0..m {
            for j in (i + 1)..m {
                let avg = 0.5 * (bsub.get(i, j) + bsub.get(j, i));
                bsub.set(i, j, avg);
                bsub.set(j, i, avg);
            }
        }
        let eb = jacobi_eigen(&bsub);
        // New columns are linear combinations of the cluster columns.
        for new in 0..m {
            for row in 0..n {
                let mut acc = 0.0;
                for old in 0..m {
                    acc += basis.get(row, lo + old) * eb.vectors.get(old, new);
                }
                result.set(row, lo + new, acc);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> RealMatrix {
        let n = e.values.len();
        let mut d = RealMatrix::zeros(n);
        for i in 0..n {
            d.set(i, i, e.values[i]);
        }
        e.vectors.mul(&d).mul(&e.vectors.transpose())
    }

    #[test]
    fn diagonalizes_simple_symmetric_matrix() {
        let m = RealMatrix::from_rows(3, &[2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0]);
        let e = jacobi_eigen(&m);
        let r = reconstruct(&e);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.get(i, j) - m.get(i, j)).abs() < 1e-10);
            }
        }
        let mut values = e.values.clone();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sqrt2 = std::f64::consts::SQRT_2;
        assert!((values[0] - (2.0 - sqrt2)).abs() < 1e-10);
        assert!((values[1] - 2.0).abs() < 1e-10);
        assert!((values[2] - (2.0 + sqrt2)).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = RealMatrix::from_rows(
            4,
            &[
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.0, 0.2, 0.5, 0.0, 2.0, 1.0, 0.0, 0.2, 1.0, 1.0,
            ],
        );
        let e = jacobi_eigen(&m);
        let vtv = e.vectors.transpose().mul(&e.vectors);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn simultaneous_diagonalization_of_commuting_pair() {
        // A has a degenerate eigenvalue; B breaks the degeneracy. They commute
        // because both are polynomials of the same underlying symmetric matrix.
        let base = RealMatrix::from_rows(
            4,
            &[
                1.0, 0.5, 0.0, 0.0, 0.5, 1.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.3, 0.0, 0.0, 0.3, 2.0,
            ],
        );
        let a = base.mul(&base); // base^2
        let b = base.clone();
        let v = simultaneous_diagonalize(&a, &b, 1e-6);
        let da = v.transpose().mul(&a).mul(&v);
        let db = v.transpose().mul(&b).mul(&v);
        assert!(da.max_off_diagonal() < 1e-8, "A not diagonalized: {da:?}");
        assert!(db.max_off_diagonal() < 1e-8, "B not diagonalized: {db:?}");
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        let m = RealMatrix::from_rows(
            4,
            &[
                2.0, 0.1, 0.0, 0.0, 0.1, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 4.0,
            ],
        );
        let e = jacobi_eigen(&m);
        assert!((e.vectors.det().abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn identity_is_fixed_point() {
        let id = RealMatrix::identity(4);
        let e = jacobi_eigen(&id);
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn det_lu_matches_known_value() {
        let m = RealMatrix::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        assert!((m.det() - -3.0).abs() < 1e-10);
    }
}
