//! Small complex linear-algebra toolkit for the NASSC reproduction.
//!
//! The quantum-circuit stack only ever needs 2×2 and 4×4 complex matrices
//! (single- and two-qubit unitaries), so everything here is fixed-size and
//! allocation-free. The crate provides:
//!
//! * [`C64`] — a minimal complex-number type (we avoid external crates),
//! * [`Matrix2`] and [`Matrix4`] — dense complex matrices with the handful of
//!   operations the synthesis code needs (multiply, adjoint, Kronecker
//!   product, determinant, trace, phase-insensitive comparison),
//! * [`eigen`] — a Jacobi eigensolver for small real-symmetric matrices, used
//!   by the two-qubit Weyl (KAK) decomposition.
//!
//! # Example
//!
//! ```
//! use nassc_math::{C64, Matrix2};
//!
//! let h = Matrix2::hadamard();
//! let hh = h.mul(&h);
//! assert!(hh.approx_eq(&Matrix2::identity(), 1e-12));
//! ```

pub mod complex;
pub mod eigen;
pub mod matrix;

pub use complex::C64;
pub use matrix::{Matrix2, Matrix4};

/// Default numerical tolerance used across the workspace when comparing
/// floating-point matrices and angles.
pub const EPS: f64 = 1e-9;
