//! The first-class [`Device`] type: a named target a [`Transpiler`] session
//! is constructed for.
//!
//! Before this type existed, "the device" was a bare [`CouplingMap`] plus an
//! optional [`Calibration`] smuggled through [`TranspileOptions`], and every
//! front end (the `transpile_qasm` CLI, now the `nassc-serve` daemon) grew
//! its own string parser for `montreal` / `linear:<n>` / `grid:<r>x<c>`.
//! [`Device`] owns all three pieces — a stable name, the coupling map and the
//! calibration — and implements [`FromStr`] once, so the CLI and the daemon
//! share a single parser with a single error message.
//!
//! [`Transpiler::new`] takes `impl Into<Device>`; [`From<CouplingMap>`] keeps
//! every existing `Transpiler::new(coupling, options)` call site compiling
//! unchanged.
//!
//! [`Transpiler`]: crate::session::Transpiler
//! [`Transpiler::new`]: crate::session::Transpiler::new
//! [`TranspileOptions`]: crate::pipeline::TranspileOptions

use std::fmt;
use std::str::FromStr;

use nassc_topology::{Calibration, CouplingMap};

/// A transpilation target: a named coupling map plus optional calibration.
///
/// Constructors cover the devices of the paper's evaluation
/// ([`montreal`](Self::montreal), [`linear`](Self::linear),
/// [`grid`](Self::grid)); [`FromStr`] accepts the same specs every CLI flag
/// and daemon config uses (`montreal`, `linear:<n>`, `grid:<rows>x<cols>`).
///
/// # Example
///
/// ```
/// use nassc_core::Device;
///
/// let device: Device = "grid:3x4".parse().unwrap();
/// assert_eq!(device.name(), "grid:3x4");
/// assert_eq!(device.num_qubits(), 12);
/// assert!("grid:3".parse::<Device>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    coupling: CouplingMap,
    calibration: Option<Calibration>,
}

impl Device {
    /// A device with an explicit name and coupling map (no calibration).
    pub fn new(name: impl Into<String>, coupling: CouplingMap) -> Self {
        Self {
            name: name.into(),
            coupling,
            calibration: None,
        }
    }

    /// The 27-qubit heavy-hex `ibmq_montreal` device of the paper's
    /// evaluation.
    pub fn montreal() -> Self {
        Self::new("montreal", CouplingMap::ibmq_montreal())
    }

    /// The 127-qubit IBM Eagle-class heavy-hex device
    /// ([`CouplingMap::heavy_hex`] at distance 7, the `ibm_washington`
    /// graph).
    pub fn eagle() -> Self {
        Self::new("eagle", CouplingMap::heavy_hex(7))
    }

    /// The 433-qubit IBM Osprey-class heavy-hex device
    /// ([`CouplingMap::heavy_hex`] at distance 13).
    pub fn osprey() -> Self {
        Self::new("osprey", CouplingMap::heavy_hex(13))
    }

    /// A heavy-hex lattice of code distance `d` (odd, `>= 3`).
    ///
    /// # Panics
    ///
    /// Panics when `d` is even or `< 3`. The [`FromStr`] path reports the
    /// same constraint as an error instead.
    pub fn heavy_hex(d: usize) -> Self {
        Self::new(format!("heavy-hex:{d}"), CouplingMap::heavy_hex(d))
    }

    /// A 1-D nearest-neighbour chain of `n` qubits (`n >= 2`).
    ///
    /// # Panics
    ///
    /// Panics when `n < 2` — a routing target needs at least one edge. The
    /// [`FromStr`] path reports the same constraint as an error instead.
    pub fn linear(n: usize) -> Self {
        assert!(n >= 2, "a linear device needs at least 2 qubits, got {n}");
        Self::new(format!("linear:{n}"), CouplingMap::linear(n))
    }

    /// A `rows × cols` 2-D grid (`rows * cols >= 2`).
    ///
    /// # Panics
    ///
    /// Panics when `rows * cols < 2` — a routing target needs at least one
    /// edge. The [`FromStr`] path reports the same constraint as an error
    /// instead.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(
            rows * cols >= 2,
            "a grid device needs at least 2 qubits, got {rows}x{cols}"
        );
        Self::new(format!("grid:{rows}x{cols}"), CouplingMap::grid(rows, cols))
    }

    /// Attaches calibration data (builder style). A [`Transpiler`] built
    /// from a calibrated device routes on the noise-aware distance matrix by
    /// default (unless its options already carry a calibration).
    ///
    /// [`Transpiler`]: crate::session::Transpiler
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// The device's stable name (what the daemon's device registry and the
    /// `--device` flag key on).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The qubit-connectivity graph.
    pub fn coupling(&self) -> &CouplingMap {
        &self.coupling
    }

    /// The calibration data, when the device carries any.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coupling.num_qubits()
    }
}

impl From<CouplingMap> for Device {
    /// An anonymous device around a bare coupling map — the compatibility
    /// path keeping `Transpiler::new(coupling, options)` call sites working.
    fn from(coupling: CouplingMap) -> Self {
        let name = format!("custom:{}q", coupling.num_qubits());
        Self::new(name, coupling)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} qubits)", self.name, self.num_qubits())
    }
}

/// The error of [`Device::from_str`]: one canonical message shared by every
/// front end that parses device specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceParseError {
    spec: String,
}

impl DeviceParseError {
    /// The rejected spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for DeviceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid device {:?}: expected montreal, eagle, osprey, \
             heavy-hex:<d> (odd d >= 3), linear:<n> (n >= 2) \
             or grid:<rows>x<cols> (rows*cols >= 2)",
            self.spec
        )
    }
}

impl std::error::Error for DeviceParseError {}

impl FromStr for Device {
    type Err = DeviceParseError;

    /// Parses `montreal`, `eagle`, `osprey`, `heavy-hex:<d>` (odd `d >= 3`),
    /// `linear:<n>` (`n >= 2`) or `grid:<rows>x<cols>` (`rows * cols >= 2`).
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let reject = || DeviceParseError {
            spec: spec.to_string(),
        };
        if spec == "montreal" {
            return Ok(Self::montreal());
        }
        if spec == "eagle" {
            return Ok(Self::eagle());
        }
        if spec == "osprey" {
            return Ok(Self::osprey());
        }
        if let Some(d) = spec.strip_prefix("heavy-hex:") {
            let d: usize = d.parse().map_err(|_| reject())?;
            if d < 3 || d.is_multiple_of(2) {
                return Err(reject());
            }
            return Ok(Self::heavy_hex(d));
        }
        if let Some(n) = spec.strip_prefix("linear:") {
            let n: usize = n.parse().map_err(|_| reject())?;
            if n < 2 {
                return Err(reject());
            }
            return Ok(Self::linear(n));
        }
        if let Some(dims) = spec.strip_prefix("grid:") {
            let (rows, cols) = dims.split_once('x').ok_or_else(reject)?;
            let rows: usize = rows.parse().map_err(|_| reject())?;
            let cols: usize = cols.parse().map_err(|_| reject())?;
            if rows * cols < 2 {
                return Err(reject());
            }
            return Ok(Self::grid(rows, cols));
        }
        Err(reject())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constructors_match_their_coupling_maps() {
        assert_eq!(*Device::montreal().coupling(), CouplingMap::ibmq_montreal());
        assert_eq!(*Device::linear(5).coupling(), CouplingMap::linear(5));
        assert_eq!(*Device::grid(3, 4).coupling(), CouplingMap::grid(3, 4));
        assert_eq!(Device::montreal().num_qubits(), 27);
        assert_eq!(Device::grid(3, 4).name(), "grid:3x4");
    }

    #[test]
    fn heavy_hex_constructors_match_their_coupling_maps() {
        assert_eq!(*Device::eagle().coupling(), CouplingMap::heavy_hex(7));
        assert_eq!(*Device::osprey().coupling(), CouplingMap::heavy_hex(13));
        assert_eq!(Device::eagle().num_qubits(), 127);
        assert_eq!(Device::osprey().num_qubits(), 433);
        assert_eq!(Device::heavy_hex(5).name(), "heavy-hex:5");
        assert_eq!(
            *Device::heavy_hex(7).coupling(),
            *Device::eagle().coupling()
        );
    }

    #[test]
    fn from_str_round_trips_every_named_spec() {
        for spec in [
            "montreal",
            "eagle",
            "osprey",
            "heavy-hex:3",
            "heavy-hex:7",
            "linear:2",
            "linear:25",
            "grid:5x5",
            "grid:1x2",
        ] {
            let device: Device = spec.parse().unwrap();
            assert_eq!(device.name(), spec);
            // The name re-parses to the same device.
            assert_eq!(device.name().parse::<Device>().unwrap(), device);
        }
    }

    #[test]
    fn from_str_rejects_malformed_specs_with_one_message() {
        for spec in [
            "",
            "Montreal",
            "linear",
            "linear:",
            "linear:1",
            "linear:x",
            "grid:",
            "grid:3",
            "grid:3x",
            "grid:0x1",
            "grid:ax b",
            "torus:3x3",
            "Eagle",
            "heavy-hex",
            "heavy-hex:",
            "heavy-hex:1",
            "heavy-hex:4",
            "heavy-hex:x",
        ] {
            let err = spec.parse::<Device>().unwrap_err();
            assert_eq!(err.spec(), spec);
            assert!(err.to_string().contains("expected montreal"), "{err}");
        }
    }

    #[test]
    fn coupling_map_converts_to_anonymous_device() {
        let device: Device = CouplingMap::linear(7).into();
        assert_eq!(device.name(), "custom:7q");
        assert_eq!(device.num_qubits(), 7);
        assert!(device.calibration().is_none());
    }

    #[test]
    fn calibration_attaches() {
        let device = Device::montreal();
        let cal = Calibration::synthetic(device.coupling(), 5);
        let device = device.with_calibration(cal.clone());
        assert_eq!(device.calibration(), Some(&cal));
    }
}
