//! The optimization-aware pieces of NASSC's cost function (Eq. 1–2):
//! the `C_2q`, `C_commute1` and `C_commute2` reduction terms and the
//! SWAP-orientation decisions they imply.
//!
//! Two evaluation paths compute the same reductions:
//!
//! * [`evaluate_swap_reduction`] — the reference implementation, scanning the
//!   whole output circuit backwards. O(output) per call; kept as the
//!   executable specification the property tests compare against.
//! * [`evaluate_swap_reduction_windowed`] — the hot path, reading the last
//!   [`SEARCH_WINDOW`] touching instructions from a
//!   [`RoutingState`]'s per-qubit index in
//!   O(window), with all buffers on the stack. Exactly equal to the
//!   reference on every input (same instructions, same order, same floats).

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_math::{Matrix2, Matrix4};
use nassc_passes::instructions_commute;
use nassc_sabre::RoutingState;
use nassc_synthesis::{two_qubit_cnot_cost, SwapOrientation};

/// Which of the three optimizations NASSC anticipates during routing
/// (the paper's `b_k` bits; Figure 9 sweeps all eight combinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationFlags {
    /// Account for two-qubit block re-synthesis (`C_2q`).
    pub block_resynthesis: bool,
    /// Account for CNOT–SWAP cancellation through a commute set (`C_commute1`).
    pub commute_cancellation: bool,
    /// Account for SWAP–SWAP cancellation around a commute set (`C_commute2`).
    pub swap_sandwich_cancellation: bool,
}

impl Default for OptimizationFlags {
    /// All optimizations enabled — the configuration the paper adopts.
    fn default() -> Self {
        Self::all()
    }
}

impl OptimizationFlags {
    /// Every optimization enabled.
    pub fn all() -> Self {
        Self {
            block_resynthesis: true,
            commute_cancellation: true,
            swap_sandwich_cancellation: true,
        }
    }

    /// Every optimization disabled (the cost function degenerates to SABRE's
    /// distance heuristic scaled by 3).
    pub fn none() -> Self {
        Self {
            block_resynthesis: false,
            commute_cancellation: false,
            swap_sandwich_cancellation: false,
        }
    }

    /// The eight combinations of the three flags, for the Figure 9 sweep.
    pub fn all_combinations() -> Vec<OptimizationFlags> {
        let mut out = Vec::with_capacity(8);
        for bits in 0..8u8 {
            out.push(OptimizationFlags {
                block_resynthesis: bits & 1 != 0,
                commute_cancellation: bits & 2 != 0,
                swap_sandwich_cancellation: bits & 4 != 0,
            });
        }
        out
    }

    /// A short label such as `"2q+c1"` for reports.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.block_resynthesis {
            parts.push("2q");
        }
        if self.commute_cancellation {
            parts.push("c1");
        }
        if self.swap_sandwich_cancellation {
            parts.push("c2");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// The outcome of evaluating the optimization-aware reductions for one SWAP
/// candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReduction {
    /// Estimated CNOT reduction from two-qubit block re-synthesis (0–3).
    pub c_2q: f64,
    /// Estimated CNOT reduction from CNOT–SWAP commutation cancellation (0 or 2).
    pub c_commute1: f64,
    /// Estimated CNOT reduction from SWAP–SWAP sandwich cancellation (0 or 2).
    pub c_commute2: f64,
    /// The SWAP decomposition orientation the cancellations require, if any.
    pub orientation: Option<SwapOrientation>,
    /// Output index of an earlier SWAP whose orientation should be aligned
    /// (the `C_commute2` sandwich partner).
    pub partner_swap_index: Option<usize>,
}

impl SwapReduction {
    /// The total reduction `Σ b_k · C_k`.
    pub fn total(&self) -> f64 {
        self.c_2q + self.c_commute1 + self.c_commute2
    }

    fn zero() -> Self {
        Self {
            c_2q: 0.0,
            c_commute1: 0.0,
            c_commute2: 0.0,
            orientation: None,
            partner_swap_index: None,
        }
    }
}

/// Size cap on backwards searches through the resolved circuit, mirroring the
/// paper's 20-gate commute-set limit.
pub const SEARCH_WINDOW: usize = 20;

/// Evaluates the optimization-aware CNOT reductions for inserting a SWAP on
/// physical qubits `(p1, p2)` given the already-routed output circuit.
pub fn evaluate_swap_reduction(
    output: &QuantumCircuit,
    p1: usize,
    p2: usize,
    flags: &OptimizationFlags,
) -> SwapReduction {
    let mut reduction = SwapReduction::zero();
    if flags.block_resynthesis {
        reduction.c_2q = block_resynthesis_reduction(output, p1, p2);
    }
    if flags.commute_cancellation {
        if let Some((gain, orientation)) = commute1_reduction(output, p1, p2) {
            reduction.c_commute1 = gain;
            reduction.orientation = Some(orientation);
        }
    }
    if flags.swap_sandwich_cancellation {
        if let Some((gain, orientation, partner)) = commute2_reduction(output, p1, p2) {
            reduction.c_commute2 = gain;
            if reduction.orientation.is_none() {
                reduction.orientation = Some(orientation);
            }
            reduction.partner_swap_index = Some(partner);
        }
    }
    reduction
}

/// `C_2q`: how many of the SWAP's three CNOTs disappear when the SWAP is
/// merged into the trailing two-qubit block on `(p1, p2)` and the block is
/// re-synthesised.
fn block_resynthesis_reduction(output: &QuantumCircuit, p1: usize, p2: usize) -> f64 {
    let Some(block) = trailing_block(output, p1, p2) else {
        return 0.0;
    };
    if !block.iter().any(|inst| inst.is_two_qubit()) {
        return 0.0;
    }
    let low = p1.min(p2);
    let block_unitary = block_matrix(&block, low);
    let with_swap = Matrix4::swap().mul(&block_unitary);
    let (Ok(old_cost), Ok(new_cost)) = (
        two_qubit_cnot_cost(&block_unitary),
        two_qubit_cnot_cost(&with_swap),
    ) else {
        return 0.0;
    };
    let extra = new_cost.saturating_sub(old_cost) as f64;
    (3.0 - extra).clamp(0.0, 3.0)
}

/// `C_commute1`: 2 when a CNOT on `(p1, p2)` earlier in the circuit can
/// commute up to the insertion point and cancel against the SWAP's first
/// CNOT. Returns the required SWAP orientation.
fn commute1_reduction(
    output: &QuantumCircuit,
    p1: usize,
    p2: usize,
) -> Option<(f64, SwapOrientation)> {
    let window = touching_window(output, p1, p2);
    // Gates between the candidate CNOT and the insertion point (multi-qubit
    // gates only; single-qubit gates are movable through the SWAP).
    let mut between: Vec<&Instruction> = Vec::new();
    for &idx in window.iter().rev() {
        let inst = &output.instructions()[idx];
        if inst.num_qubits() == 1 && inst.gate.is_unitary() {
            continue;
        }
        let on_pair = inst.num_qubits() == 2 && inst.acts_on(p1) && inst.acts_on(p2);
        if on_pair && inst.gate == Gate::Cx {
            if between.is_empty() {
                // Directly adjacent: the block-resynthesis term already
                // captures this case.
                return None;
            }
            let commutes_past_all = between
                .iter()
                .all(|other| instructions_commute(inst, other));
            if commutes_past_all {
                let control = inst.qubit(0);
                return Some((2.0, SwapOrientation::with_first_control(p1, p2, control)));
            }
            return None;
        }
        if on_pair {
            // A non-CNOT gate on the pair (e.g. an earlier SWAP) stops the search.
            return None;
        }
        between.push(inst);
    }
    None
}

/// `C_commute2`: 2 when an earlier SWAP on the same pair sandwiches a
/// commute set, so one CNOT of each SWAP cancels. Returns the orientation
/// and the output index of the earlier SWAP.
fn commute2_reduction(
    output: &QuantumCircuit,
    p1: usize,
    p2: usize,
) -> Option<(f64, SwapOrientation, usize)> {
    let window = touching_window(output, p1, p2);
    let mut between: Vec<&Instruction> = Vec::new();
    for &idx in window.iter().rev() {
        let inst = &output.instructions()[idx];
        if inst.num_qubits() == 1 && inst.gate.is_unitary() {
            continue;
        }
        let on_pair = inst.num_qubits() == 2 && inst.acts_on(p1) && inst.acts_on(p2);
        if on_pair && inst.gate == Gate::Swap {
            if between.is_empty() {
                // Back-to-back SWAPs cancel entirely; the block term covers it.
                return None;
            }
            // Try both CNOT orientations for the cancelling pair.
            for control in [p1, p2] {
                let target = if control == p1 { p2 } else { p1 };
                let probe = Instruction::new(Gate::Cx, [control, target]);
                if between
                    .iter()
                    .all(|other| instructions_commute(&probe, other))
                {
                    return Some((
                        2.0,
                        SwapOrientation::with_first_control(p1, p2, control),
                        idx,
                    ));
                }
            }
            return None;
        }
        if on_pair {
            return None;
        }
        between.push(inst);
    }
    None
}

/// [`evaluate_swap_reduction`] against a [`RoutingState`]'s windowed index:
/// O([`SEARCH_WINDOW`]) instead of O(output), zero heap allocation, and
/// exactly equal to the reference implementation on every input.
///
/// Why a window of [`SEARCH_WINDOW`] touching instructions is *exact*, not
/// an approximation: every backwards search the reference performs either
/// stops at a touching instruction it disqualifies, caps itself at
/// [`SEARCH_WINDOW`] gates, or exhausts the circuit — so no search ever
/// examines more than the last [`SEARCH_WINDOW`] instructions touching
/// `p1`/`p2`, which is precisely what
/// [`RoutingState::rev_touching_window`] yields.
pub fn evaluate_swap_reduction_windowed(
    state: &RoutingState,
    p1: usize,
    p2: usize,
    flags: &OptimizationFlags,
) -> SwapReduction {
    let mut buf = [0u32; SEARCH_WINDOW];
    let len = state.rev_touching_window(p1, p2, &mut buf);
    let window = &buf[..len];
    let mut reduction = SwapReduction::zero();
    if flags.block_resynthesis {
        reduction.c_2q = block_resynthesis_windowed(state, window, p1, p2);
    }
    if flags.commute_cancellation {
        if let Some((gain, orientation)) = commute1_windowed(state, window, p1, p2) {
            reduction.c_commute1 = gain;
            reduction.orientation = Some(orientation);
        }
    }
    if flags.swap_sandwich_cancellation {
        if let Some((gain, orientation, partner)) = commute2_windowed(state, window, p1, p2) {
            reduction.c_commute2 = gain;
            if reduction.orientation.is_none() {
                reduction.orientation = Some(orientation);
            }
            reduction.partner_swap_index = Some(partner);
        }
    }
    reduction
}

/// `C_2q` over the windowed index: gathers the trailing `{p1, p2}`-confined
/// run from the most-recent-first window, then multiplies it oldest-first —
/// the same instructions in the same order as [`block_resynthesis_reduction`].
fn block_resynthesis_windowed(state: &RoutingState, window: &[u32], p1: usize, p2: usize) -> f64 {
    let mut block = [0u32; SEARCH_WINDOW];
    let mut len = 0usize;
    let mut has_two_qubit = false;
    for &idx in window {
        let inst = state.instruction(idx as usize);
        let confined = inst.gate.is_unitary() && inst.qubits().iter().all(|q| q == p1 || q == p2);
        if !confined {
            break;
        }
        block[len] = idx;
        len += 1;
        has_two_qubit |= inst.is_two_qubit();
        if len >= SEARCH_WINDOW {
            break;
        }
    }
    if len == 0 || !has_two_qubit {
        return 0.0;
    }
    let low = p1.min(p2);
    let mut block_unitary = Matrix4::identity();
    for &idx in block[..len].iter().rev() {
        let m = instruction_matrix(state.instruction(idx as usize), low);
        block_unitary = m.mul(&block_unitary);
    }
    let with_swap = Matrix4::swap().mul(&block_unitary);
    let (Ok(old_cost), Ok(new_cost)) = (
        two_qubit_cnot_cost(&block_unitary),
        two_qubit_cnot_cost(&with_swap),
    ) else {
        return 0.0;
    };
    let extra = new_cost.saturating_sub(old_cost) as f64;
    (3.0 - extra).clamp(0.0, 3.0)
}

/// `C_commute1` over the windowed index (see [`commute1_reduction`]).
fn commute1_windowed(
    state: &RoutingState,
    window: &[u32],
    p1: usize,
    p2: usize,
) -> Option<(f64, SwapOrientation)> {
    let mut between = [0u32; SEARCH_WINDOW];
    let mut between_len = 0usize;
    for &idx in window {
        let inst = state.instruction(idx as usize);
        if inst.num_qubits() == 1 && inst.gate.is_unitary() {
            continue;
        }
        let on_pair = inst.num_qubits() == 2 && inst.acts_on(p1) && inst.acts_on(p2);
        if on_pair && inst.gate == Gate::Cx {
            if between_len == 0 {
                // Directly adjacent: the block-resynthesis term already
                // captures this case.
                return None;
            }
            let commutes_past_all = between[..between_len]
                .iter()
                .all(|&other| instructions_commute(inst, state.instruction(other as usize)));
            if commutes_past_all {
                let control = inst.qubit(0);
                return Some((2.0, SwapOrientation::with_first_control(p1, p2, control)));
            }
            return None;
        }
        if on_pair {
            // A non-CNOT gate on the pair (e.g. an earlier SWAP) stops the search.
            return None;
        }
        between[between_len] = idx;
        between_len += 1;
    }
    None
}

/// `C_commute2` over the windowed index (see [`commute2_reduction`]).
fn commute2_windowed(
    state: &RoutingState,
    window: &[u32],
    p1: usize,
    p2: usize,
) -> Option<(f64, SwapOrientation, usize)> {
    let mut between = [0u32; SEARCH_WINDOW];
    let mut between_len = 0usize;
    for &idx in window {
        let inst = state.instruction(idx as usize);
        if inst.num_qubits() == 1 && inst.gate.is_unitary() {
            continue;
        }
        let on_pair = inst.num_qubits() == 2 && inst.acts_on(p1) && inst.acts_on(p2);
        if on_pair && inst.gate == Gate::Swap {
            if between_len == 0 {
                // Back-to-back SWAPs cancel entirely; the block term covers it.
                return None;
            }
            // Try both CNOT orientations for the cancelling pair.
            for control in [p1, p2] {
                let target = if control == p1 { p2 } else { p1 };
                let probe = Instruction::new(Gate::Cx, [control, target]);
                if between[..between_len]
                    .iter()
                    .all(|&other| instructions_commute(&probe, state.instruction(other as usize)))
                {
                    return Some((
                        2.0,
                        SwapOrientation::with_first_control(p1, p2, control),
                        idx as usize,
                    ));
                }
            }
            return None;
        }
        if on_pair {
            return None;
        }
        between[between_len] = idx;
        between_len += 1;
    }
    None
}

/// The indices (in circuit order) of the last [`SEARCH_WINDOW`] instructions
/// touching `p1` or `p2`.
fn touching_window(output: &QuantumCircuit, p1: usize, p2: usize) -> Vec<usize> {
    let mut window: Vec<usize> = output
        .iter()
        .enumerate()
        .rev()
        .filter(|(_, inst)| inst.acts_on(p1) || inst.acts_on(p2))
        .take(SEARCH_WINDOW)
        .map(|(idx, _)| idx)
        .collect();
    window.reverse();
    window
}

/// The trailing run of gates confined to `{p1, p2}` (the block a SWAP on
/// that pair would join), in circuit order.
fn trailing_block(output: &QuantumCircuit, p1: usize, p2: usize) -> Option<Vec<Instruction>> {
    let mut block: Vec<Instruction> = Vec::new();
    for inst in output.iter().rev() {
        if !(inst.acts_on(p1) || inst.acts_on(p2)) {
            continue;
        }
        let confined = inst.gate.is_unitary() && inst.qubits().iter().all(|q| q == p1 || q == p2);
        if confined {
            block.push(inst.clone());
            if block.len() >= SEARCH_WINDOW {
                break;
            }
        } else {
            break;
        }
    }
    if block.is_empty() {
        return None;
    }
    block.reverse();
    Some(block)
}

/// Multiplies a block of gates on the pair into a 4×4 matrix (`low` is the
/// least-significant qubit).
fn block_matrix(block: &[Instruction], low: usize) -> Matrix4 {
    let mut acc = Matrix4::identity();
    for inst in block {
        acc = instruction_matrix(inst, low).mul(&acc);
    }
    acc
}

/// The 4×4 matrix of one pair-confined instruction (`low` is the
/// least-significant qubit of the pair).
fn instruction_matrix(inst: &Instruction, low: usize) -> Matrix4 {
    match inst.num_qubits() {
        1 => {
            let g = inst.gate.matrix2().expect("1q gate in block has matrix");
            if inst.qubit(0) == low {
                Matrix2::identity().kron(&g)
            } else {
                g.kron(&Matrix2::identity())
            }
        }
        _ => {
            let g = inst.gate.matrix4().expect("2q gate in block has matrix");
            if inst.qubit(0) == low {
                g
            } else {
                g.swap_qubits()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_combinations_cover_all_eight() {
        let combos = OptimizationFlags::all_combinations();
        assert_eq!(combos.len(), 8);
        assert!(combos.contains(&OptimizationFlags::all()));
        assert!(combos.contains(&OptimizationFlags::none()));
        assert_eq!(OptimizationFlags::all().label(), "2q+c1+c2");
        assert_eq!(OptimizationFlags::none().label(), "none");
    }

    #[test]
    fn swap_next_to_cnot_block_gets_c2q_two() {
        // Output so far ends with a CNOT on (0,1): merging a SWAP gives a
        // 2-CNOT operator, so only one extra CNOT is needed → reduction 2.
        let mut output = QuantumCircuit::new(3);
        output.h(0).cx(0, 1);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::all());
        assert_eq!(r.c_2q, 2.0);
    }

    #[test]
    fn swap_next_to_three_cnot_block_is_free() {
        let mut output = QuantumCircuit::new(2);
        output
            .cx(0, 1)
            .rz(0.3, 1)
            .cx(1, 0)
            .ry(0.2, 0)
            .cx(0, 1)
            .rz(0.5, 0);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::all());
        // The block already needs 3 CNOTs; adding the SWAP keeps it at ≤3.
        assert!(r.c_2q >= 2.0, "got {}", r.c_2q);
    }

    #[test]
    fn swap_with_no_neighbouring_block_gets_no_reduction() {
        let mut output = QuantumCircuit::new(4);
        output.cx(2, 3);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::all());
        assert_eq!(r.total(), 0.0);
        assert!(r.orientation.is_none());
    }

    #[test]
    fn disabled_flags_suppress_reductions() {
        let mut output = QuantumCircuit::new(2);
        output.cx(0, 1);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::none());
        assert_eq!(r.total(), 0.0);
    }

    #[test]
    fn commute1_found_through_commuting_cnot() {
        // Figure 6/7: a CNOT on (1,2) followed by a gate on (0,1) that
        // commutes with it (shared target 1? here CX(0,1) and CX(2,1) share
        // target 1). Inserting a SWAP on (2,1) can cancel with CX(2,1).
        let mut output = QuantumCircuit::new(3);
        output.cx(2, 1).cx(0, 1);
        let r = evaluate_swap_reduction(&output, 1, 2, &OptimizationFlags::all());
        assert_eq!(r.c_commute1, 2.0);
        // The cancelling CNOT has control 2 → the SWAP's first CNOT must too.
        assert_eq!(
            r.orientation,
            Some(SwapOrientation::with_first_control(1, 2, 2))
        );
    }

    #[test]
    fn commute1_blocked_by_non_commuting_gate() {
        let mut output = QuantumCircuit::new(3);
        output.cx(2, 1).cx(1, 0); // CX(1,0) does not commute with CX(2,1)
        let r = evaluate_swap_reduction(&output, 1, 2, &OptimizationFlags::all());
        assert_eq!(r.c_commute1, 0.0);
    }

    #[test]
    fn commute2_found_for_sandwiched_swaps() {
        // An earlier SWAP on (0,1), then a commuting CNOT (shares target with
        // CX(0,1) probes), then a new SWAP on (0,1) would cancel one CNOT each.
        let mut output = QuantumCircuit::new(3);
        output.swap(0, 1).cx(2, 1);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::all());
        assert_eq!(r.c_commute2, 2.0);
        assert_eq!(r.partner_swap_index, Some(0));
    }

    #[test]
    fn commute2_requires_an_intervening_commute_set() {
        let mut output = QuantumCircuit::new(2);
        output.swap(0, 1);
        let r = evaluate_swap_reduction(&output, 0, 1, &OptimizationFlags::all());
        assert_eq!(r.c_commute2, 0.0);
    }

    #[test]
    fn single_qubit_gates_do_not_block_the_searches() {
        let mut output = QuantumCircuit::new(3);
        output.cx(2, 1).u(0.1, 0.2, 0.3, 1).cx(0, 1).t(2);
        let r = evaluate_swap_reduction(&output, 1, 2, &OptimizationFlags::all());
        assert_eq!(r.c_commute1, 2.0, "the U3 on qubit 1 must be skipped");
    }

    #[test]
    fn windowed_reductions_match_the_reference_scan() {
        let mut output = QuantumCircuit::new(4);
        output
            .cx(2, 1)
            .u(0.1, 0.2, 0.3, 1)
            .cx(0, 1)
            .t(2)
            .swap(0, 1)
            .cx(2, 1)
            .h(3)
            .cx(3, 2);
        let state = RoutingState::from_circuit(output.clone());
        for flags in OptimizationFlags::all_combinations() {
            for p1 in 0..4 {
                for p2 in 0..4 {
                    if p1 == p2 {
                        continue;
                    }
                    assert_eq!(
                        evaluate_swap_reduction_windowed(&state, p1, p2, &flags),
                        evaluate_swap_reduction(&output, p1, p2, &flags),
                        "pair ({p1}, {p2}) flags {}",
                        flags.label()
                    );
                }
            }
        }
    }

    #[test]
    fn reduction_total_sums_terms() {
        let r = SwapReduction {
            c_2q: 2.0,
            c_commute1: 2.0,
            c_commute2: 0.0,
            orientation: None,
            partner_swap_index: None,
        };
        assert_eq!(r.total(), 4.0);
    }
}
