//! Batch transpilation: fan a grid of jobs across cores, deterministically.
//!
//! The paper's evaluation is a (benchmark × seed × router) grid — an
//! embarrassingly parallel workload, since every [`transpile`] call is a pure
//! function of its inputs (each call seeds its own RNG from
//! `options.config.seed`). [`transpile_batch`] exploits that: it hoists the
//! two seed-independent stages out of the per-job hot path — one
//! [`DistanceMatrix`] per distinct `(CouplingMap, Calibration)` via a
//! [`DistanceCache`], and one pre-routing optimization per distinct circuit
//! — then maps the seed-dependent tails ([`transpile_prepared`]) over the
//! order-preserving persistent worker pool.
//!
//! Determinism contract: for equal inputs, `transpile_batch(jobs)[i]` equals
//! `transpile(jobs[i].circuit, jobs[i].coupling, &jobs[i].options)`
//! gate-for-gate and layout-for-layout, whatever the worker count (only the
//! per-job `elapsed` wall-clock differs). `NASSC_THREADS=1` forces serial
//! execution for A/B timing.
//!
//! [`transpile`]: crate::pipeline::transpile
//! [`transpile_prepared`]: crate::pipeline::transpile_prepared

use std::sync::Arc;

use nassc_circuit::QuantumCircuit;
use nassc_parallel::ThreadPool;
use nassc_passes::PassError;
use nassc_topology::{Calibration, CouplingMap, DistanceMatrix};

use crate::pipeline::{
    distances_for_impl, optimize_without_routing, transpile_prepared_on_impl, TranspileOptions,
    TranspileResult,
};

/// One unit of work for [`transpile_batch`]: a circuit, a device and the
/// options to transpile it under.
///
/// Jobs borrow their circuit and coupling map so a seed sweep over one
/// benchmark does not clone the circuit per seed.
#[derive(Debug, Clone)]
pub struct BatchJob<'a> {
    /// The logical circuit to transpile.
    pub circuit: &'a QuantumCircuit,
    /// The target device.
    pub coupling: &'a CouplingMap,
    /// Router, seed, flags and optional calibration for this job.
    pub options: TranspileOptions,
}

impl<'a> BatchJob<'a> {
    /// Creates a job transpiling `circuit` onto `coupling` under `options`.
    pub fn new(
        circuit: &'a QuantumCircuit,
        coupling: &'a CouplingMap,
        options: TranspileOptions,
    ) -> Self {
        Self {
            circuit,
            coupling,
            options,
        }
    }
}

/// Memoizes distance matrices per `(CouplingMap, Calibration)` pair.
///
/// Building the all-pairs matrix is `O(V·E)` BFS (or the full Eq. 3
/// recomputation for noise-aware runs) — cheap once, wasteful when repeated
/// for every seed of a 10-seed sweep. The cache is a linear scan over
/// structural equality, which is exact and plenty fast for the handful of
/// devices a batch ever touches.
#[derive(Debug, Default)]
pub struct DistanceCache {
    entries: Vec<(CouplingMap, Option<Calibration>, Arc<DistanceMatrix>)>,
}

impl DistanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of distinct `(coupling, calibration)` pairs cached so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached matrix for `(coupling, calibration)`, if any — the
    /// hit-or-miss probe behind [`get_or_compute`](Self::get_or_compute),
    /// exposed so the `Transpiler` session can count cache hits.
    pub fn lookup(
        &self,
        coupling: &CouplingMap,
        calibration: Option<&Calibration>,
    ) -> Option<Arc<DistanceMatrix>> {
        self.entries
            .iter()
            .find(|(map, cal, _)| map == coupling && cal.as_ref() == calibration)
            .map(|(_, _, cached)| Arc::clone(cached))
    }

    /// Returns the distance matrix for `(coupling, calibration)`, computing
    /// and caching it on first use.
    pub fn get_or_compute(
        &mut self,
        coupling: &CouplingMap,
        calibration: Option<&Calibration>,
    ) -> Arc<DistanceMatrix> {
        if let Some(cached) = self.lookup(coupling, calibration) {
            return cached;
        }
        let computed = Arc::new(distances_for_impl(coupling, calibration));
        self.entries.push((
            coupling.clone(),
            calibration.cloned(),
            Arc::clone(&computed),
        ));
        computed
    }
}

/// Transpiles every job, fanning the batch across the default thread pool.
///
/// See the module docs for the determinism contract. Results come back in
/// job order; a failed job yields its [`PassError`] in place without
/// aborting the rest of the batch.
#[deprecated(note = "use Transpiler::transpile_batch — one session per device \
                     replaces the per-call job grid")]
pub fn transpile_batch(jobs: &[BatchJob<'_>]) -> Vec<Result<TranspileResult, PassError>> {
    transpile_batch_on_impl(&ThreadPool::with_default_parallelism(), jobs)
}

/// [`transpile_batch`] on an explicitly sized pool.
#[deprecated(note = "use Transpiler::with_pool(..).transpile_batch")]
pub fn transpile_batch_on(
    pool: &ThreadPool,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<TranspileResult, PassError>> {
    transpile_batch_on_impl(pool, jobs)
}

pub(crate) fn transpile_batch_on_impl(
    pool: &ThreadPool,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<TranspileResult, PassError>> {
    // Pre-routing optimization is deterministic and seed-independent, so a
    // seed sweep needs it once per distinct circuit, not once per job.
    // Circuits are keyed by address: sweep jobs borrow the same circuit, and
    // a missed alias only costs a redundant (correct) preparation.
    let mut unique_circuits: Vec<&QuantumCircuit> = Vec::new();
    let job_circuit: Vec<usize> = jobs
        .iter()
        .map(|job| {
            unique_circuits
                .iter()
                .position(|&known| std::ptr::eq(known, job.circuit))
                .unwrap_or_else(|| {
                    unique_circuits.push(job.circuit);
                    unique_circuits.len() - 1
                })
        })
        .collect();
    let prepared: Vec<Result<QuantumCircuit, PassError>> =
        pool.map(unique_circuits, optimize_without_routing);

    run_prepared(pool, jobs, |index| {
        prepared[job_circuit[index]].as_ref().map_err(Clone::clone)
    })
}

/// [`transpile_batch`] over circuits that are **already prepared** (outputs
/// of [`optimize_without_routing`]), skipping the engine's internal
/// preparation pass.
///
/// Drivers that need the prepared circuits anyway — the bench harness
/// computes baseline CNOT/depth from them — use this to prepare exactly once.
/// Equivalent to [`transpile_batch`] over the corresponding raw circuits,
/// because [`crate::pipeline::transpile`] is exactly preparation followed by
/// [`crate::pipeline::transpile_prepared`].
#[deprecated(note = "use Transpiler::transpile_batch — the session's \
                     prepared-baseline cache replaces manual preparation")]
pub fn transpile_batch_prepared(jobs: &[BatchJob<'_>]) -> Vec<Result<TranspileResult, PassError>> {
    transpile_batch_prepared_on_impl(&ThreadPool::with_default_parallelism(), jobs)
}

/// [`transpile_batch_prepared`] on an explicitly sized pool.
#[deprecated(note = "use Transpiler::with_pool(..).transpile_batch")]
pub fn transpile_batch_prepared_on(
    pool: &ThreadPool,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<TranspileResult, PassError>> {
    transpile_batch_prepared_on_impl(pool, jobs)
}

pub(crate) fn transpile_batch_prepared_on_impl(
    pool: &ThreadPool,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<TranspileResult, PassError>> {
    run_prepared(pool, jobs, |index| Ok(jobs[index].circuit))
}

/// Shared tail of both batch entry points: resolve distances once per
/// device, then fan the seed-dependent pipeline tails across the pool.
///
/// The pool's worker budget is split between the two parallelism levels —
/// jobs across the batch, layout trials within each job — via
/// [`ThreadPool::split_budget`], so a batch of multi-trial jobs never
/// oversubscribes the cores the caller granted: a saturated batch runs each
/// job's trials serially, while a batch narrower than the budget hands the
/// spare workers to each job's trials. Either way results are bit-identical
/// to serial execution.
fn run_prepared<'p, P>(
    pool: &ThreadPool,
    jobs: &[BatchJob<'_>],
    prepared_for: P,
) -> Vec<Result<TranspileResult, PassError>>
where
    P: Fn(usize) -> Result<&'p QuantumCircuit, PassError> + Sync,
{
    // Resolve distances serially up front: the cache needs `&mut self`, and
    // precomputing here is exactly the point — workers share, never rebuild.
    let mut cache = DistanceCache::new();
    let work: Vec<(usize, &BatchJob<'_>, Arc<DistanceMatrix>)> = jobs
        .iter()
        .enumerate()
        .map(|(index, job)| {
            let distances = cache.get_or_compute(job.coupling, job.options.calibration.as_ref());
            (index, job, distances)
        })
        .collect();

    let (job_pool, trial_pool) = pool.split_budget(jobs.len());
    job_pool.map(work, |(index, job, distances)| {
        transpile_prepared_on_impl(
            prepared_for(index)?,
            job.coupling,
            &distances,
            &job.options,
            &trial_pool,
        )
    })
}

// The tests exercise the deprecated free functions on purpose: they pin the
// behavior the legacy shims must keep until removal.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::pipeline::{distances_for, transpile};

    fn sample_circuit() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(5);
        qc.h(0);
        for i in 0..4 {
            qc.cx(i, i + 1);
        }
        qc.cx(0, 4).cx(1, 3).cx(0, 2);
        qc
    }

    #[test]
    fn batch_matches_serial_for_a_seed_sweep() {
        let device = CouplingMap::linear(5);
        let circuit = sample_circuit();
        let jobs: Vec<BatchJob> = (0..6)
            .flat_map(|seed| {
                [
                    BatchJob::new(&circuit, &device, TranspileOptions::sabre(seed)),
                    BatchJob::new(&circuit, &device, TranspileOptions::nassc(seed)),
                ]
            })
            .collect();
        let batched = transpile_batch_on(&ThreadPool::new(4), &jobs);
        for (job, batched) in jobs.iter().zip(&batched) {
            let serial = transpile(job.circuit, job.coupling, &job.options).unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(serial.circuit, batched.circuit);
            assert_eq!(serial.initial_layout, batched.initial_layout);
            assert_eq!(serial.final_layout, batched.final_layout);
            assert_eq!(serial.swap_count, batched.swap_count);
        }
    }

    #[test]
    fn distance_cache_deduplicates_devices_and_calibrations() {
        let line = CouplingMap::linear(5);
        let grid = CouplingMap::grid(2, 3);
        let cal = Calibration::synthetic(&line, 1);
        let mut cache = DistanceCache::new();
        assert!(cache.is_empty());

        let a = cache.get_or_compute(&line, None);
        let b = cache.get_or_compute(&line, None);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);

        cache.get_or_compute(&grid, None);
        cache.get_or_compute(&line, Some(&cal));
        assert_eq!(cache.len(), 3);

        // Cached entries are the same values the pipeline would compute.
        assert_eq!(*a, distances_for(&line, None));
        assert_eq!(
            *cache.get_or_compute(&line, Some(&cal)),
            distances_for(&line, Some(&cal))
        );
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn prepared_batch_matches_raw_batch() {
        let device = CouplingMap::linear(5);
        let circuit = sample_circuit();
        let prepared = optimize_without_routing(&circuit).unwrap();
        let raw_jobs: Vec<BatchJob> = (0..4)
            .map(|seed| BatchJob::new(&circuit, &device, TranspileOptions::nassc(seed)))
            .collect();
        let prepared_jobs: Vec<BatchJob> = (0..4)
            .map(|seed| BatchJob::new(&prepared, &device, TranspileOptions::nassc(seed)))
            .collect();
        let raw = transpile_batch(&raw_jobs);
        let pre = transpile_batch_prepared(&prepared_jobs);
        for (raw, pre) in raw.iter().zip(&pre) {
            let raw = raw.as_ref().unwrap();
            let pre = pre.as_ref().unwrap();
            assert_eq!(raw.circuit, pre.circuit);
            assert_eq!(raw.swap_count, pre.swap_count);
        }
    }

    #[test]
    fn multi_trial_jobs_match_serial_at_every_worker_count() {
        let device = CouplingMap::linear(5);
        let circuit = sample_circuit();
        let jobs: Vec<BatchJob> = (0..3)
            .map(|seed| {
                BatchJob::new(
                    &circuit,
                    &device,
                    TranspileOptions::nassc(seed).with_layout_trials(4),
                )
            })
            .collect();
        let serial = transpile_batch_on(&ThreadPool::new(1), &jobs);
        for workers in [2, 8] {
            let parallel = transpile_batch_on(&ThreadPool::new(workers), &jobs);
            for (s, p) in serial.iter().zip(&parallel) {
                let s = s.as_ref().unwrap();
                let p = p.as_ref().unwrap();
                assert_eq!(s.circuit, p.circuit, "{workers} workers");
                assert_eq!(s.chosen_layout_trial, p.chosen_layout_trial);
                assert_eq!(s.layout_trial_costs, p.layout_trial_costs);
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(transpile_batch(&[]).is_empty());
    }
}
