//! The long-lived [`Transpiler`] session: one blessed entry point owning the
//! worker budget and every cross-request cache.
//!
//! The free functions this module supersedes (`transpile`,
//! `transpile_with_distances`, `transpile_prepared[_on]`,
//! `transpile_batch[_prepared][_on]`, `distances_for`) each forced callers to
//! hand-manage some slice of reusable state: distance matrices, prepared
//! pre-routing baselines, thread budgets. A service handling many requests
//! against one device wants that state owned in one place and reused
//! automatically. A `Transpiler` is constructed once per device and then
//! serves any number of requests, reusing three caches across them:
//!
//! 1. **Distances** — one [`DistanceMatrix`] per distinct
//!    `(coupling, calibration)` pair (via [`DistanceCache`]); requests whose
//!    options carry a different calibration get their own entry.
//! 2. **Prepared baselines** — the deterministic, seed-independent
//!    pre-routing optimization ([`optimize_without_routing`]) memoized per
//!    structurally distinct circuit, keyed by
//!    [`QuantumCircuit::structural_hash`] and confirmed by full equality.
//! 3. **Layout winners** — the chosen initial layout (plus trial
//!    diagnostics) per `(prepared circuit, options)` pair. A warm request
//!    replays one routing pass from the cached layout instead of re-running
//!    the whole layout search; the result is bit-identical to the cold path
//!    (see `transpile_prepared_from_layout` in `pipeline.rs` for why).
//!
//! Hit/miss counters for all three caches are attached to every
//! [`TranspileResult`] (`result.cache`, this request only) and accumulated
//! on the session ([`Transpiler::cache_stats`]). Worker threads come from
//! the process-wide persistent pool (`nassc-parallel`); the session's
//! [`ThreadPool`] handle is the concurrency budget each request's fan-out
//! respects, so construction is cheap and `NASSC_THREADS` keeps working.
//!
//! Determinism contract, inherited and extended: for equal inputs a session
//! returns the same circuits, layouts and SWAP counts as the legacy free
//! functions, bit for bit, at any worker count and any cache temperature —
//! only `elapsed` and `cache` differ.
//!
//! **Fault containment.** Every session entry point is a `catch_unwind`
//! boundary: a panic anywhere in preparation, layout, routing or
//! optimization becomes [`Error::Internal`] for that request alone — the
//! session, its caches and its sibling requests stay serviceable. A request
//! whose [`TranspileOptions::deadline`] expires is aborted cooperatively at
//! the next checkpoint (per layout trial, per routing step, per pass) and
//! reported as [`Error::Deadline`]. Should a panic ever poison the session
//! lock (the cache-commit window is the only code that runs under it), the
//! next lock acquisition recovers by clearing the caches —
//! counted by [`Transpiler::cache_resets`] — and the session continues
//! with a cold cache rather than failing every subsequent request.
//!
//! [`optimize_without_routing`]: crate::pipeline::optimize_without_routing

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nassc_circuit::QuantumCircuit;
use nassc_parallel::{worker_pool_status, Budget, Cancelled, PoolStatus, ThreadPool};
use nassc_passes::PassError;
use nassc_topology::{CouplingMap, DistanceMatrix, Layout};

use crate::batch::DistanceCache;
use crate::device::Device;
use crate::error::Error;
use crate::pipeline::{
    optimize_without_routing_budgeted, transpile_prepared_from_layout,
    transpile_prepared_on_budgeted_impl, TranspileOptions, TranspileResult,
};

/// Hit/miss counters of the [`Transpiler`] caches.
///
/// On a [`TranspileResult`] the counters describe that request alone (each
/// of the three pairs sums to the number of cache consultations the request
/// made — one for a single transpile). On [`Transpiler::cache_stats`] they
/// accumulate over the session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distance-matrix cache hits (one lookup per request).
    pub distance_hits: u64,
    /// Distance-matrix cache misses (each miss builds a matrix).
    pub distance_misses: u64,
    /// Prepared-baseline cache hits (one lookup per request).
    pub prepared_hits: u64,
    /// Prepared-baseline cache misses (each miss runs the pre-routing
    /// optimization pipeline).
    pub prepared_misses: u64,
    /// Layout-winner cache hits (a hit skips the whole layout search).
    pub layout_hits: u64,
    /// Layout-winner cache misses (each miss runs layout + trials).
    pub layout_misses: u64,
}

impl CacheStats {
    /// Total hits across all three caches.
    pub fn hits(&self) -> u64 {
        self.distance_hits + self.prepared_hits + self.layout_hits
    }

    /// Total misses across all three caches.
    pub fn misses(&self) -> u64 {
        self.distance_misses + self.prepared_misses + self.layout_misses
    }

    /// Adds `other`'s counters into `self` (used to roll per-request stats
    /// into the session totals).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.distance_hits += other.distance_hits;
        self.distance_misses += other.distance_misses;
        self.prepared_hits += other.prepared_hits;
        self.prepared_misses += other.prepared_misses;
        self.layout_hits += other.layout_hits;
        self.layout_misses += other.layout_misses;
    }
}

/// One request of a [`Transpiler::transpile_jobs`] batch: a circuit and,
/// optionally, options overriding the session defaults (a different seed,
/// router, flag set or calibration — the sweep axes of the paper's grids).
#[derive(Debug, Clone)]
pub struct SessionJob<'a> {
    /// The logical circuit to transpile.
    pub circuit: &'a QuantumCircuit,
    /// Options for this job; `None` uses the session's defaults.
    pub options: Option<TranspileOptions>,
}

impl<'a> SessionJob<'a> {
    /// A job using the session's default options.
    pub fn new(circuit: &'a QuantumCircuit) -> Self {
        Self {
            circuit,
            options: None,
        }
    }

    /// A job with per-job options (seed sweeps, router comparisons).
    pub fn with_options(circuit: &'a QuantumCircuit, options: TranspileOptions) -> Self {
        Self {
            circuit,
            options: Some(options),
        }
    }
}

/// A prepared baseline memoized per structurally distinct raw circuit.
struct PreparedEntry {
    raw_hash: u64,
    raw: QuantumCircuit,
    prepared: Arc<QuantumCircuit>,
}

/// A layout-search winner memoized per `(prepared circuit, options)`.
struct LayoutEntry {
    prepared_hash: u64,
    prepared: Arc<QuantumCircuit>,
    options: TranspileOptions,
    initial_layout: Layout,
    chosen_trial: usize,
    trial_costs: Vec<f64>,
}

/// Everything mutable behind the session lock.
#[derive(Default)]
struct SessionState {
    distances: DistanceCache,
    prepared: Vec<PreparedEntry>,
    layouts: Vec<LayoutEntry>,
    stats: CacheStats,
}

/// What the serial resolution phase hands each fanned-out job: every cache
/// decision is already made, so workers share state without touching the
/// session lock.
struct ResolvedJob {
    index: usize,
    options: TranspileOptions,
    distances: Arc<DistanceMatrix>,
    prepared: Arc<QuantumCircuit>,
    cached_layout: Option<(Layout, usize, Vec<f64>)>,
    stats: CacheStats,
    /// The job's cooperative deadline, anchored at request entry; unlimited
    /// when [`TranspileOptions::deadline`] is unset.
    budget: Budget,
}

/// A long-lived transpilation session for one device.
///
/// Construct once, reuse for every request against that device; see the
/// [module docs](self) for what is cached between requests. All methods
/// take `&self` — the caches sit behind an internal lock, so a session can
/// be shared across threads (requests resolve their cache lookups serially,
/// then fan out).
///
/// # Example
///
/// ```
/// use nassc_core::{RouterKind, Transpiler, TranspileOptions};
/// use nassc_circuit::QuantumCircuit;
/// use nassc_topology::CouplingMap;
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.cx(1, 2).cx(0, 1).cx(0, 2);
///
/// let session = Transpiler::new(
///     CouplingMap::linear(3),
///     TranspileOptions::new().router(RouterKind::Nassc).seed(7),
/// );
/// let cold = session.transpile(&qc).unwrap();
/// let warm = session.transpile(&qc).unwrap();
/// assert_eq!(cold.circuit, warm.circuit);
/// assert_eq!(warm.cache.hits(), 3); // distances, baseline, layout
/// ```
pub struct Transpiler {
    device: Device,
    options: TranspileOptions,
    pool: ThreadPool,
    state: Mutex<SessionState>,
    cache_resets: AtomicU64,
}

impl std::fmt::Debug for Transpiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transpiler")
            .field("device", &self.device)
            .field("options", &self.options)
            .field("pool", &self.pool)
            .field("cache_stats", &self.cache_stats())
            .finish()
    }
}

impl Transpiler {
    /// A session for `device` with the given default options. Anything that
    /// converts into a [`Device`] is accepted — a bare [`CouplingMap`] keeps
    /// working via `From` (it becomes an anonymous device). When the device
    /// carries a [`Device::calibration`] and `options` does not, the
    /// device's calibration becomes the session default, so a calibrated
    /// device routes noise-aware out of the box. The worker budget defaults
    /// to [`ThreadPool::with_default_parallelism`] (`NASSC_THREADS`
    /// applies).
    pub fn new(device: impl Into<Device>, options: TranspileOptions) -> Self {
        let device = device.into();
        let mut options = options;
        if options.calibration.is_none() {
            options.calibration = device.calibration().cloned();
        }
        Self {
            device,
            options,
            pool: ThreadPool::with_default_parallelism(),
            state: Mutex::new(SessionState::default()),
            cache_resets: AtomicU64::new(0),
        }
    }

    /// Replaces the session's worker budget (builder style).
    #[must_use]
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The device this session transpiles onto.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The coupling map of [`device`](Self::device) (convenience accessor
    /// predating the [`Device`] type).
    pub fn coupling(&self) -> &CouplingMap {
        self.device.coupling()
    }

    /// The session's default options.
    pub fn options(&self) -> &TranspileOptions {
        &self.options
    }

    /// The session's worker budget.
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// Cumulative cache counters over every request served so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// How many times poison recovery has reset the session caches — `0`
    /// in a healthy session. Each reset empties all three caches (the next
    /// requests run cold) but preserves the accumulated
    /// [`cache_stats`](Self::cache_stats).
    pub fn cache_resets(&self) -> u64 {
        self.cache_resets.load(Ordering::Relaxed)
    }

    /// A snapshot of the process-wide persistent worker pool feeding this
    /// session's dispatches.
    pub fn pool_status(&self) -> PoolStatus {
        worker_pool_status()
    }

    /// Transpiles one circuit under the session's default options.
    ///
    /// # Errors
    ///
    /// [`Error::Pass`] when an optimization pass fails, [`Error::Internal`]
    /// when a panic was caught (and contained) at the session boundary,
    /// [`Error::Deadline`] when [`TranspileOptions::deadline`] expired
    /// mid-flight.
    pub fn transpile(&self, circuit: &QuantumCircuit) -> Result<TranspileResult, Error> {
        self.transpile_with(circuit, &self.options)
    }

    /// Transpiles one circuit with per-request options (different seed,
    /// router, flags or calibration), still sharing the session caches.
    ///
    /// # Errors
    ///
    /// As [`transpile`](Self::transpile).
    pub fn transpile_with(
        &self,
        circuit: &QuantumCircuit,
        options: &TranspileOptions,
    ) -> Result<TranspileResult, Error> {
        let job = SessionJob::with_options(circuit, options.clone());
        self.transpile_jobs(std::slice::from_ref(&job))
            .pop()
            .expect("one job yields one result")
    }

    /// Transpiles every circuit under the session's default options,
    /// fanning the batch across the worker budget. Results come back in
    /// input order; a failed circuit yields its error in place.
    pub fn transpile_batch(
        &self,
        circuits: &[QuantumCircuit],
    ) -> Vec<Result<TranspileResult, Error>> {
        let jobs: Vec<SessionJob<'_>> = circuits.iter().map(SessionJob::new).collect();
        self.transpile_jobs(&jobs)
    }

    /// The general batch entry point: transpiles every job (each optionally
    /// overriding the session options), sharing all caches and splitting the
    /// worker budget between jobs and each job's layout trials.
    ///
    /// Results come back in job order and are bit-identical to calling
    /// [`transpile_with`](Self::transpile_with) per job in sequence —
    /// whatever the worker count or cache temperature.
    pub fn transpile_jobs(&self, jobs: &[SessionJob<'_>]) -> Vec<Result<TranspileResult, Error>> {
        // Deadlines are anchored here, at request entry: a job's budget
        // covers its share of resolution, layout, routing and optimization.
        let entry = Instant::now();

        // Phase 1 — serial resolution under the lock: every cache read and
        // every preparation happens here, in job order, so cache counters
        // are deterministic and workers never contend on the session lock.
        // The catch boundary sits *inside* the lock scope, so a contained
        // panic never poisons the session lock.
        let resolved: Vec<Result<ResolvedJob, Error>> = {
            let mut resolve_span = nassc_trace::span!("resolve");
            resolve_span.arg_u64("jobs", jobs.len() as u64);
            let mut state = self.lock();
            jobs.iter()
                .enumerate()
                .map(|(index, job)| {
                    let options = job.options.clone().unwrap_or_else(|| self.options.clone());
                    let deadline = options.deadline;
                    let budget = match deadline {
                        Some(limit) => Budget::with_deadline(entry + limit),
                        None => Budget::unlimited(),
                    };
                    catch_unwind(AssertUnwindSafe(|| {
                        self.resolve(&mut state, index, job.circuit, options, budget)
                    }))
                    .unwrap_or_else(|payload| Err(classify_panic("prepare", payload, deadline)))
                })
                .collect()
        };

        // Phase 2 — fan the seed-dependent tails across the budget. Each
        // job's tail is its own catch boundary: one panicking or expired
        // job fails alone while its siblings complete normally.
        let (job_pool, trial_pool) = self.pool.split_budget(jobs.len());
        let mut results = job_pool.map(resolved.iter().collect(), |resolved| match resolved {
            Ok(resolved) => self.run_resolved(resolved, &trial_pool),
            Err(e) => Err(e.clone()),
        });

        // Phase 3 — commit: stamp per-request counters, memoize the layout
        // winners that cold jobs just discovered, roll up session stats.
        for (resolved, result) in resolved.iter().zip(results.iter_mut()) {
            if let (Ok(resolved), Ok(result)) = (resolved, result.as_mut()) {
                result.cache = resolved.stats;
            }
        }
        let committed: Vec<ResolvedJob> = resolved.into_iter().filter_map(Result::ok).collect();
        // Contained: the results are already valid, so a panic while
        // memoizing is swallowed here. It poisons the session lock (commit
        // runs under it) and the next `lock()` recovers by resetting the
        // caches — requests keep succeeding, just cold.
        let _ = catch_unwind(AssertUnwindSafe(|| self.commit(&committed, &results)));
        results
    }

    /// Transpiles OpenQASM 2.0 source under the session's default options:
    /// parse, capacity-check, then [`transpile`](Self::transpile), with
    /// every failure domain folded into one [`Error`] (branch on
    /// [`Error::kind`]).
    ///
    /// # Errors
    ///
    /// [`Error::Qasm`] when the source does not parse, [`Error::TooWide`]
    /// when the circuit needs more qubits than the device has,
    /// [`Error::Pass`] when an optimization pass fails.
    pub fn transpile_qasm(&self, source: &str) -> Result<TranspileResult, Error> {
        self.transpile_qasm_with(source, &self.options)
    }

    /// [`transpile_qasm`](Self::transpile_qasm) with per-request options —
    /// what the `nassc-serve` daemon calls for requests overriding the
    /// session defaults (router, seed, layout trials).
    ///
    /// # Errors
    ///
    /// As [`transpile_qasm`](Self::transpile_qasm).
    pub fn transpile_qasm_with(
        &self,
        source: &str,
        options: &TranspileOptions,
    ) -> Result<TranspileResult, Error> {
        let circuit = nassc_qasm::parse(source)?;
        self.check_fits(&circuit)?;
        self.transpile_with(&circuit, options)
    }

    /// Checks that `circuit` fits on the session's device; routing a wider
    /// circuit would panic deep inside layout instead of failing cleanly.
    ///
    /// # Errors
    ///
    /// [`Error::TooWide`] when the circuit declares more qubits than the
    /// device has.
    pub fn check_fits(&self, circuit: &QuantumCircuit) -> Result<(), Error> {
        if circuit.num_qubits() > self.device.num_qubits() {
            return Err(Error::too_wide(
                circuit.num_qubits(),
                self.device.num_qubits(),
            ));
        }
        Ok(())
    }

    /// The prepared pre-routing baseline of `circuit` (what
    /// [`optimize_without_routing`](crate::pipeline::optimize_without_routing)
    /// produces), served from the session's
    /// prepared cache. Benchmark drivers report baseline CNOT/depth from
    /// this without paying preparation twice.
    ///
    /// # Errors
    ///
    /// [`Error::Pass`] when the preparation pipeline fails,
    /// [`Error::Internal`] when it panicked (contained at this boundary).
    pub fn prepared(&self, circuit: &QuantumCircuit) -> Result<Arc<QuantumCircuit>, Error> {
        let mut state = self.lock();
        let (prepared, hit) = catch_unwind(AssertUnwindSafe(|| {
            Self::prepared_locked(&mut state, circuit, &Budget::unlimited()).map_err(Error::from)
        }))
        .unwrap_or_else(|payload| Err(classify_panic("prepare", payload, None)))?;
        if hit {
            state.stats.prepared_hits += 1;
        } else {
            state.stats.prepared_misses += 1;
        }
        Ok(prepared)
    }

    /// Acquires the session lock, recovering from poison: a panic while
    /// the lock was held (only the cache-commit window runs fallible code
    /// under it) leaves the caches in an unknown state, so recovery resets
    /// all three to empty — preserving the accumulated stats — counts the
    /// reset in [`cache_resets`](Self::cache_resets), clears the poison
    /// flag and continues serving.
    fn lock(&self) -> std::sync::MutexGuard<'_, SessionState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.distances = DistanceCache::new();
                guard.prepared.clear();
                guard.layouts.clear();
                self.cache_resets.fetch_add(1, Ordering::Relaxed);
                self.state.clear_poison();
                guard
            }
        }
    }

    /// Looks up / computes the prepared baseline for `circuit`, returning
    /// it with a hit flag. Does not touch the stats counters — callers
    /// attribute the hit/miss to the right request.
    fn prepared_locked(
        state: &mut SessionState,
        circuit: &QuantumCircuit,
        budget: &Budget,
    ) -> Result<(Arc<QuantumCircuit>, bool), PassError> {
        let raw_hash = circuit.structural_hash();
        if let Some(entry) = state
            .prepared
            .iter()
            .find(|e| e.raw_hash == raw_hash && e.raw == *circuit)
        {
            return Ok((Arc::clone(&entry.prepared), true));
        }
        let prepared = Arc::new(optimize_without_routing_budgeted(circuit, budget)?);
        state.prepared.push(PreparedEntry {
            raw_hash,
            raw: circuit.clone(),
            prepared: Arc::clone(&prepared),
        });
        Ok((prepared, false))
    }

    /// Makes every cache decision for one job, updating that job's private
    /// counters. Runs under the session lock.
    fn resolve(
        &self,
        state: &mut SessionState,
        index: usize,
        circuit: &QuantumCircuit,
        options: TranspileOptions,
        budget: Budget,
    ) -> Result<ResolvedJob, Error> {
        let mut stats = CacheStats::default();

        let distances = match state
            .distances
            .lookup(self.device.coupling(), options.calibration.as_ref())
        {
            Some(cached) => {
                stats.distance_hits += 1;
                nassc_trace::counter("cache.distance_hit", 1);
                cached
            }
            None => {
                stats.distance_misses += 1;
                nassc_trace::counter("cache.distance_miss", 1);
                state
                    .distances
                    .get_or_compute(self.device.coupling(), options.calibration.as_ref())
            }
        };

        let (prepared, prepared_hit) = Self::prepared_locked(state, circuit, &budget)?;
        if prepared_hit {
            stats.prepared_hits += 1;
            nassc_trace::counter("cache.prepared_hit", 1);
        } else {
            stats.prepared_misses += 1;
            nassc_trace::counter("cache.prepared_miss", 1);
        }

        let prepared_hash = prepared.structural_hash();
        let cached_layout = state
            .layouts
            .iter()
            .find(|e| {
                e.prepared_hash == prepared_hash && e.options == options && *e.prepared == *prepared
            })
            .map(|e| {
                (
                    e.initial_layout.clone(),
                    e.chosen_trial,
                    e.trial_costs.clone(),
                )
            });
        if cached_layout.is_some() {
            stats.layout_hits += 1;
            nassc_trace::counter("cache.layout_hit", 1);
        } else {
            stats.layout_misses += 1;
            nassc_trace::counter("cache.layout_miss", 1);
        }

        Ok(ResolvedJob {
            index,
            options,
            distances,
            prepared,
            cached_layout,
            stats,
            budget,
        })
    }

    /// The lock-free tail of one job: warm jobs replay a single routing
    /// pass from the cached layout, cold jobs run the full layout search.
    /// This is the per-job catch boundary — a panic or budget abort in here
    /// fails this job alone.
    fn run_resolved(
        &self,
        resolved: &ResolvedJob,
        pool: &ThreadPool,
    ) -> Result<TranspileResult, Error> {
        let mut span = nassc_trace::span!("job");
        span.arg_u64("index", resolved.index as u64);
        span.arg_text(
            "path",
            if resolved.cached_layout.is_some() {
                "warm"
            } else {
                "cold"
            },
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| match &resolved.cached_layout {
            Some((layout, chosen_trial, trial_costs)) => transpile_prepared_from_layout(
                &resolved.prepared,
                self.device.coupling(),
                &resolved.distances,
                &resolved.options,
                layout,
                *chosen_trial,
                trial_costs.clone(),
                pool,
                &resolved.budget,
            ),
            None => transpile_prepared_on_budgeted_impl(
                &resolved.prepared,
                self.device.coupling(),
                &resolved.distances,
                &resolved.options,
                pool,
                &resolved.budget,
            ),
        }));
        match outcome {
            Ok(result) => result.map_err(Error::from),
            Err(payload) => Err(classify_panic(
                "transpile",
                payload,
                resolved.options.deadline,
            )),
        }
    }

    /// Rolls per-request counters into the session totals and memoizes the
    /// layout winners cold jobs discovered. Insertion re-checks for an
    /// existing entry so duplicate cold jobs in one batch stay idempotent.
    fn commit(&self, resolved: &[ResolvedJob], results: &[Result<TranspileResult, Error>]) {
        let _span = nassc_trace::span!("commit");
        let mut state = self.lock();
        nassc_circuit::failpoints::hit("cache_commit");
        for job in resolved {
            state.stats.accumulate(&job.stats);
            if job.cached_layout.is_some() {
                continue;
            }
            let Some(Ok(result)) = results.get(job.index) else {
                continue;
            };
            let prepared_hash = job.prepared.structural_hash();
            let exists = state.layouts.iter().any(|e| {
                e.prepared_hash == prepared_hash
                    && e.options == job.options
                    && *e.prepared == *job.prepared
            });
            if !exists {
                state.layouts.push(LayoutEntry {
                    prepared_hash,
                    prepared: Arc::clone(&job.prepared),
                    options: job.options.clone(),
                    initial_layout: result.initial_layout.clone(),
                    chosen_trial: result.chosen_layout_trial,
                    trial_costs: result.layout_trial_costs.clone(),
                });
            }
        }
    }
}

/// Renders a caught panic payload best-effort: the `&str`/`String` message
/// when there is one, a placeholder otherwise.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Classifies a payload caught at a session boundary: a typed [`Cancelled`]
/// is the cooperative deadline abort ([`Error::Deadline`]); anything else is
/// a contained fault ([`Error::Internal`] with the boundary's site name).
fn classify_panic(site: &str, payload: Box<dyn Any + Send>, deadline: Option<Duration>) -> Error {
    if Cancelled::from_payload(payload.as_ref()) {
        return Error::deadline(deadline.unwrap_or_default());
    }
    Error::internal(site, panic_message(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RouterKind;

    fn ghz(n: usize) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        qc.h(0);
        for i in 1..n {
            qc.cx(0, i);
        }
        qc
    }

    fn session() -> Transpiler {
        Transpiler::new(
            CouplingMap::linear(4),
            TranspileOptions::new().router(RouterKind::Nassc).seed(7),
        )
    }

    #[test]
    fn an_expired_deadline_aborts_with_a_deadline_error() {
        let session = session();
        let options = session.options().clone().deadline(Duration::ZERO);
        let err = session.transpile_with(&ghz(4), &options).unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Deadline);
        assert_eq!(err.to_string(), "transpile exceeded its 0 ms deadline");
    }

    #[test]
    fn a_generous_deadline_changes_nothing() {
        let session = session();
        let reference = session.transpile(&ghz(4)).expect("unlimited transpile");
        let options = session
            .options()
            .clone()
            .deadline(Duration::from_secs(3600));
        let budgeted = session
            .transpile_with(&ghz(4), &options)
            .expect("budgeted transpile");
        assert_eq!(reference.circuit, budgeted.circuit);
        assert_eq!(reference.initial_layout, budgeted.initial_layout);
    }

    #[test]
    fn deadlined_and_unlimited_requests_share_cache_entries() {
        // `deadline` is excluded from the options cache key: the second
        // request must hit all three caches despite its deadline differing.
        let session = session();
        session.transpile(&ghz(4)).expect("cold transpile");
        let options = session
            .options()
            .clone()
            .deadline(Duration::from_secs(3600));
        let warm = session
            .transpile_with(&ghz(4), &options)
            .expect("warm transpile");
        assert_eq!(warm.cache.hits(), 3);
        assert_eq!(warm.cache.misses(), 0);
    }

    #[test]
    fn poison_recovery_resets_caches_and_keeps_serving() {
        let session = Arc::new(session());
        let cold = session.transpile(&ghz(4)).expect("cold transpile");
        assert_eq!(session.cache_resets(), 0);

        // Poison the session lock the only way a panic can reach it: by
        // unwinding while the guard is held.
        let poisoner = Arc::clone(&session);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poison the session lock");
        })
        .join();
        assert!(session.state.is_poisoned());

        // The next request recovers: caches reset (so it runs cold again),
        // the reset is counted, and the output is bit-identical.
        let recovered = session.transpile(&ghz(4)).expect("post-poison transpile");
        assert_eq!(session.cache_resets(), 1);
        assert!(!session.state.is_poisoned());
        assert_eq!(recovered.cache.misses(), 3);
        assert_eq!(recovered.circuit, cold.circuit);

        // And the one after that is warm, as if nothing happened.
        let warm = session.transpile(&ghz(4)).expect("warm transpile");
        assert_eq!(warm.cache.hits(), 3);
        assert_eq!(session.cache_resets(), 1);
    }

    #[test]
    fn classify_panic_separates_cancellation_from_faults() {
        let cancelled: Box<dyn Any + Send> = Box::new(Cancelled);
        let fault: Box<dyn Any + Send> = Box::new("index out of bounds".to_string());
        assert_eq!(
            classify_panic("transpile", cancelled, Some(Duration::from_millis(40))),
            Error::deadline(Duration::from_millis(40))
        );
        assert_eq!(
            classify_panic("transpile", fault, None),
            Error::internal("transpile", "index out of bounds")
        );
    }

    #[test]
    fn batch_sibling_jobs_survive_one_deadline_abort() {
        let reference = session().transpile(&ghz(3)).expect("reference");
        // Fresh session so nothing is cached for either circuit.
        let session = session();
        let doomed = ghz(4);
        let sibling = ghz(3);
        let jobs = [
            SessionJob::with_options(&doomed, session.options().clone().deadline(Duration::ZERO)),
            SessionJob::new(&sibling),
        ];
        let results = session.transpile_jobs(&jobs);
        assert_eq!(
            results[0].as_ref().unwrap_err().kind(),
            crate::ErrorKind::Deadline
        );
        let survivor = results[1].as_ref().expect("sibling survives");
        assert_eq!(survivor.circuit, reference.circuit);
    }
}
