//! The consolidated error taxonomy of the session API.
//!
//! The transpilation stack has three failure domains: OpenQASM
//! parsing/export ([`QasmError`], from `nassc-qasm`), capacity — a circuit
//! wider than the session's device ([`Error::TooWide`]) — and optimization
//! passes ([`PassError`], from `nassc-passes`). Callers driving circuits
//! through the [`Transpiler`] from QASM source used to match the first and
//! last; [`Error`] wraps all three behind one `std::error::Error` so
//! `Transpiler::transpile_qasm` — and the `nassc-serve` daemon on top of it
//! — returns a single type that `?` converts into.
//!
//! Service front ends should branch on [`Error::kind`], the stable
//! classification, rather than on display strings: the daemon derives its
//! HTTP statuses from it (parse → 400, too wide → 422, pass/internal → 500,
//! deadline → 504).
//!
//! Two kinds exist for fault containment rather than for ordinary failures:
//! [`Error::Internal`] is what the session's `catch_unwind` boundary turns a
//! panicking pass or routing step into (the panic never escapes the
//! [`Transpiler`]), and [`Error::Deadline`] is a transpile cooperatively
//! aborted mid-flight because its [`TranspileOptions::deadline`] expired.
//!
//! [`TranspileOptions::deadline`]: crate::pipeline::TranspileOptions::deadline
//!
//! [`Transpiler`]: crate::session::Transpiler

use std::fmt;

use nassc_passes::PassError;
use nassc_qasm::QasmError;

/// The stable classification of an [`Error`], decoupled from the carried
/// payload so wire protocols can map errors without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The input did not parse as OpenQASM (caller's fault: malformed
    /// request → HTTP 400).
    Parse,
    /// The circuit parsed but needs more qubits than the device has
    /// (caller's fault, but well-formed: unprocessable → HTTP 422).
    TooWide,
    /// An optimization or layout pass failed (our fault: internal error →
    /// HTTP 500).
    Pass,
    /// A panic was caught at the session boundary (our fault, contained:
    /// internal error → HTTP 500).
    Internal,
    /// The transpile exceeded its deadline and was aborted mid-flight
    /// (HTTP 504).
    Deadline,
}

/// Any error the session API can produce: a QASM parse/export failure, a
/// circuit too wide for the device, or a failed optimization pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An optimization or layout pass failed.
    Pass(PassError),
    /// OpenQASM parsing or export failed.
    Qasm(QasmError),
    /// The circuit needs more qubits than the session's device has.
    TooWide {
        /// Qubits the circuit declares.
        circuit_qubits: usize,
        /// Qubits the device provides.
        device_qubits: usize,
    },
    /// A panic caught at the session boundary: the fault is contained — the
    /// session and its caches stay serviceable — and reported with the
    /// pipeline site it unwound from plus a best-effort payload message.
    Internal {
        /// Where the panic was caught (`prepare`, `transpile`, …).
        site: String,
        /// Best-effort rendering of the panic payload.
        message: String,
    },
    /// The transpile exceeded [`TranspileOptions::deadline`] and was
    /// cooperatively aborted at the next checkpoint (per layout trial, per
    /// routing step, per optimization pass).
    ///
    /// [`TranspileOptions::deadline`]: crate::pipeline::TranspileOptions::deadline
    Deadline {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
}

impl Error {
    /// A [`TooWide`](Self::TooWide) error for a circuit of `circuit_qubits`
    /// against a device of `device_qubits`.
    pub fn too_wide(circuit_qubits: usize, device_qubits: usize) -> Self {
        Error::TooWide {
            circuit_qubits,
            device_qubits,
        }
    }

    /// An [`Internal`](Self::Internal) error for a panic caught at `site`.
    pub fn internal(site: impl Into<String>, message: impl Into<String>) -> Self {
        Error::Internal {
            site: site.into(),
            message: message.into(),
        }
    }

    /// A [`Deadline`](Self::Deadline) error for a transpile that exceeded
    /// its budget.
    pub fn deadline(limit: std::time::Duration) -> Self {
        Error::Deadline {
            limit_ms: limit.as_millis() as u64,
        }
    }

    /// The stable classification of this error — what service front ends
    /// should branch on (the daemon maps it to HTTP statuses).
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Pass(_) => ErrorKind::Pass,
            Error::Qasm(_) => ErrorKind::Parse,
            Error::TooWide { .. } => ErrorKind::TooWide,
            Error::Internal { .. } => ErrorKind::Internal,
            Error::Deadline { .. } => ErrorKind::Deadline,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Pass(e) => e.fmt(f),
            Error::Qasm(e) => e.fmt(f),
            Error::TooWide {
                circuit_qubits,
                device_qubits,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but the device has {device_qubits}"
            ),
            Error::Internal { site, message } => {
                write!(f, "internal error (contained panic in {site}): {message}")
            }
            Error::Deadline { limit_ms } => {
                write!(f, "transpile exceeded its {limit_ms} ms deadline")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pass(e) => Some(e),
            Error::Qasm(e) => Some(e),
            Error::TooWide { .. } => None,
            Error::Internal { .. } => None,
            Error::Deadline { .. } => None,
        }
    }
}

impl From<PassError> for Error {
    fn from(e: PassError) -> Self {
        Error::Pass(e)
    }
}

impl From<QasmError> for Error {
    fn from(e: QasmError) -> Self {
        Error::Qasm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_domains_with_sources() {
        let pass: Error = PassError::new("unroll", "unknown gate").into();
        let qasm: Error = QasmError::at(3, "bad register").into();
        assert!(matches!(pass, Error::Pass(_)));
        assert!(matches!(qasm, Error::Qasm(_)));
        for e in [&pass, &qasm] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some());
        }
        assert_eq!(
            qasm.to_string(),
            QasmError::at(3, "bad register").to_string()
        );
    }

    #[test]
    fn kind_classifies_every_variant() {
        let pass: Error = PassError::new("unroll", "unknown gate").into();
        let qasm: Error = QasmError::at(3, "bad register").into();
        let wide = Error::too_wide(30, 27);
        assert_eq!(pass.kind(), ErrorKind::Pass);
        assert_eq!(qasm.kind(), ErrorKind::Parse);
        assert_eq!(wide.kind(), ErrorKind::TooWide);
        let internal = Error::internal("transpile", "index out of bounds");
        assert_eq!(internal.kind(), ErrorKind::Internal);
        let deadline = Error::deadline(std::time::Duration::from_millis(250));
        assert_eq!(deadline.kind(), ErrorKind::Deadline);
    }

    #[test]
    fn containment_errors_render_their_context() {
        let internal = Error::internal("prepare", "boom");
        assert_eq!(
            internal.to_string(),
            "internal error (contained panic in prepare): boom"
        );
        let deadline = Error::deadline(std::time::Duration::from_millis(250));
        assert_eq!(
            deadline.to_string(),
            "transpile exceeded its 250 ms deadline"
        );
        for e in [&internal, &deadline] {
            assert!(std::error::Error::source(e).is_none());
        }
    }

    #[test]
    fn too_wide_names_both_counts_and_has_no_source() {
        let wide = Error::too_wide(30, 27);
        assert_eq!(
            wide.to_string(),
            "circuit needs 30 qubits but the device has 27"
        );
        assert!(std::error::Error::source(&wide).is_none());
    }
}
