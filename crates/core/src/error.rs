//! The consolidated error type of the session API.
//!
//! The transpilation stack has two failure domains: optimization passes
//! ([`PassError`], from `nassc-passes`) and OpenQASM parsing/export
//! ([`QasmError`], from `nassc-qasm`). Callers driving circuits through the
//! [`Transpiler`] from QASM source used to match both; [`Error`] wraps them
//! behind one `std::error::Error` so `Transpiler::transpile_qasm` — and any
//! future service front end — returns a single type that `?` converts into.
//!
//! [`Transpiler`]: crate::session::Transpiler

use std::fmt;

use nassc_passes::PassError;
use nassc_qasm::QasmError;

/// Any error the session API can produce: a failed optimization pass or a
/// QASM parse/export failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An optimization or layout pass failed.
    Pass(PassError),
    /// OpenQASM parsing or export failed.
    Qasm(QasmError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Pass(e) => e.fmt(f),
            Error::Qasm(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pass(e) => Some(e),
            Error::Qasm(e) => Some(e),
        }
    }
}

impl From<PassError> for Error {
    fn from(e: PassError) -> Self {
        Error::Pass(e)
    }
}

impl From<QasmError> for Error {
    fn from(e: QasmError) -> Self {
        Error::Qasm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_domains_with_sources() {
        let pass: Error = PassError::new("unroll", "unknown gate").into();
        let qasm: Error = QasmError::at(3, "bad register").into();
        assert!(matches!(pass, Error::Pass(_)));
        assert!(matches!(qasm, Error::Qasm(_)));
        for e in [&pass, &qasm] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some());
        }
        assert_eq!(
            qasm.to_string(),
            QasmError::at(3, "bad register").to_string()
        );
    }
}
