//! The consolidated error taxonomy of the session API.
//!
//! The transpilation stack has three failure domains: OpenQASM
//! parsing/export ([`QasmError`], from `nassc-qasm`), capacity — a circuit
//! wider than the session's device ([`Error::TooWide`]) — and optimization
//! passes ([`PassError`], from `nassc-passes`). Callers driving circuits
//! through the [`Transpiler`] from QASM source used to match the first and
//! last; [`Error`] wraps all three behind one `std::error::Error` so
//! `Transpiler::transpile_qasm` — and the `nassc-serve` daemon on top of it
//! — returns a single type that `?` converts into.
//!
//! Service front ends should branch on [`Error::kind`], the stable
//! classification, rather than on display strings: the daemon derives its
//! HTTP statuses from it (parse → 400, too wide → 422, pass → 500).
//!
//! [`Transpiler`]: crate::session::Transpiler

use std::fmt;

use nassc_passes::PassError;
use nassc_qasm::QasmError;

/// The stable classification of an [`Error`], decoupled from the carried
/// payload so wire protocols can map errors without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The input did not parse as OpenQASM (caller's fault: malformed
    /// request → HTTP 400).
    Parse,
    /// The circuit parsed but needs more qubits than the device has
    /// (caller's fault, but well-formed: unprocessable → HTTP 422).
    TooWide,
    /// An optimization or layout pass failed (our fault: internal error →
    /// HTTP 500).
    Pass,
}

/// Any error the session API can produce: a QASM parse/export failure, a
/// circuit too wide for the device, or a failed optimization pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An optimization or layout pass failed.
    Pass(PassError),
    /// OpenQASM parsing or export failed.
    Qasm(QasmError),
    /// The circuit needs more qubits than the session's device has.
    TooWide {
        /// Qubits the circuit declares.
        circuit_qubits: usize,
        /// Qubits the device provides.
        device_qubits: usize,
    },
}

impl Error {
    /// A [`TooWide`](Self::TooWide) error for a circuit of `circuit_qubits`
    /// against a device of `device_qubits`.
    pub fn too_wide(circuit_qubits: usize, device_qubits: usize) -> Self {
        Error::TooWide {
            circuit_qubits,
            device_qubits,
        }
    }

    /// The stable classification of this error — what service front ends
    /// should branch on (the daemon maps it to HTTP statuses).
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Pass(_) => ErrorKind::Pass,
            Error::Qasm(_) => ErrorKind::Parse,
            Error::TooWide { .. } => ErrorKind::TooWide,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Pass(e) => e.fmt(f),
            Error::Qasm(e) => e.fmt(f),
            Error::TooWide {
                circuit_qubits,
                device_qubits,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but the device has {device_qubits}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pass(e) => Some(e),
            Error::Qasm(e) => Some(e),
            Error::TooWide { .. } => None,
        }
    }
}

impl From<PassError> for Error {
    fn from(e: PassError) -> Self {
        Error::Pass(e)
    }
}

impl From<QasmError> for Error {
    fn from(e: QasmError) -> Self {
        Error::Qasm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_domains_with_sources() {
        let pass: Error = PassError::new("unroll", "unknown gate").into();
        let qasm: Error = QasmError::at(3, "bad register").into();
        assert!(matches!(pass, Error::Pass(_)));
        assert!(matches!(qasm, Error::Qasm(_)));
        for e in [&pass, &qasm] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some());
        }
        assert_eq!(
            qasm.to_string(),
            QasmError::at(3, "bad register").to_string()
        );
    }

    #[test]
    fn kind_classifies_every_variant() {
        let pass: Error = PassError::new("unroll", "unknown gate").into();
        let qasm: Error = QasmError::at(3, "bad register").into();
        let wide = Error::too_wide(30, 27);
        assert_eq!(pass.kind(), ErrorKind::Pass);
        assert_eq!(qasm.kind(), ErrorKind::Parse);
        assert_eq!(wide.kind(), ErrorKind::TooWide);
    }

    #[test]
    fn too_wide_names_both_counts_and_has_no_source() {
        let wide = Error::too_wide(30, 27);
        assert_eq!(
            wide.to_string(),
            "circuit needs 30 qubits but the device has 27"
        );
        assert!(std::error::Error::source(&wide).is_none());
    }
}
