//! The NASSC routing policy: SABRE's traversal with the optimization-aware
//! cost function of Eq. 2 and optimization-aware SWAP decomposition.

use std::collections::HashMap;

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_sabre::{RoutingContext, RoutingState, SwapPolicy};
use nassc_synthesis::{swap_decomposition, SwapOrientation};
use nassc_topology::Layout;

use crate::cost::{evaluate_swap_reduction_windowed, OptimizationFlags};

/// NASSC's SWAP-scoring policy.
///
/// The score of a candidate SWAP is the paper's Eq. 2:
///
/// ```text
/// H = (3·Σ_F D − Σ_k b_k·C_k) / |F|  +  W·Σ_E D / |E|
/// ```
///
/// where the `C_k` reductions are evaluated against the already-routed
/// output circuit. Alongside scoring, the policy records the SWAP
/// decomposition orientation each cancellation requires and commutes
/// trailing single-qubit gates through the SWAP (the single-qubit movement
/// of §IV-E).
#[derive(Debug, Clone, Default)]
pub struct NasscPolicy {
    flags: OptimizationFlags,
    orientations: HashMap<usize, SwapOrientation>,
    pending_orientation: Option<SwapOrientation>,
    pending_partner: Option<usize>,
    detached_gates: Vec<Instruction>,
}

impl NasscPolicy {
    /// Creates a policy with the given optimization flags.
    pub fn new(flags: OptimizationFlags) -> Self {
        Self {
            flags,
            ..Self::default()
        }
    }

    /// The orientation recorded for the SWAP emitted at `output_index`
    /// (defaults to [`SwapOrientation::FirstQubitControl`] when no
    /// cancellation constrained it).
    pub fn orientation_of(&self, output_index: usize) -> SwapOrientation {
        self.orientations
            .get(&output_index)
            .copied()
            .unwrap_or_default()
    }

    /// All recorded orientations keyed by output instruction index.
    pub fn orientations(&self) -> &HashMap<usize, SwapOrientation> {
        &self.orientations
    }

    /// Expands every `swap` instruction of a routed circuit into three CNOTs
    /// using the orientations this policy recorded during routing.
    pub fn decompose_swaps(&self, routed: &QuantumCircuit) -> QuantumCircuit {
        let mut out = QuantumCircuit::new(routed.num_qubits());
        for (idx, inst) in routed.iter().enumerate() {
            if inst.gate == Gate::Swap {
                let orientation = self.orientation_of(idx);
                for cx in swap_decomposition(inst.qubit(0), inst.qubit(1), orientation) {
                    out.push(cx);
                }
            } else {
                out.push(inst.clone());
            }
        }
        out
    }
}

impl SwapPolicy for NasscPolicy {
    fn score(&self, ctx: &RoutingContext<'_>, p1: usize, p2: usize) -> f64 {
        let front_len = ctx.front.len().max(1) as f64;
        let reduction = evaluate_swap_reduction_windowed(ctx.state, p1, p2, &self.flags);
        let basic = (3.0 * ctx.front_distance_after_swap(p1, p2) - reduction.total()) / front_len;
        let extended = if ctx.extended.is_empty() {
            0.0
        } else {
            ctx.config.extended_set_weight * ctx.extended_distance_after_swap(p1, p2)
                / ctx.extended.len() as f64
        };
        basic + extended
    }

    fn before_swap_emit(
        &mut self,
        output: &mut RoutingState,
        _layout: &Layout,
        p1: usize,
        p2: usize,
    ) {
        // Re-evaluate the winning candidate to fix its decomposition
        // orientation (and its sandwich partner's).
        let reduction = evaluate_swap_reduction_windowed(output, p1, p2, &self.flags);
        self.pending_orientation = reduction.orientation;
        self.pending_partner = reduction.partner_swap_index;

        // Single-qubit movement: trailing one-qubit gates on the swapped
        // wires can hop over the SWAP (retargeted to the partner wire), so
        // they no longer block commutation-based cancellation. Detaching
        // goes through `RoutingState::pop`, which keeps the touch index
        // exact without rebuilding the instruction vector.
        self.detached_gates.clear();
        loop {
            let movable = match output.circuit().instructions().last() {
                Some(last) => {
                    last.gate.is_unitary()
                        && last.num_qubits() == 1
                        && (last.qubit(0) == p1 || last.qubit(0) == p2)
                }
                None => false,
            };
            if !movable {
                break;
            }
            let gate = output.pop().expect("checked non-empty");
            let other = if gate.qubit(0) == p1 { p2 } else { p1 };
            self.detached_gates
                .push(Instruction::new(gate.gate, vec![other]));
        }
        self.detached_gates.reverse();
    }

    fn after_swap_emit(
        &mut self,
        output: &mut RoutingState,
        swap_index: usize,
        _p1: usize,
        _p2: usize,
    ) {
        if let Some(orientation) = self.pending_orientation.take() {
            self.orientations.insert(swap_index, orientation);
            if let Some(partner) = self.pending_partner.take() {
                // The sandwich partner's *last* CNOT must match our first:
                // for the symmetric 3-CNOT template that means the same
                // orientation on both SWAPs.
                self.orientations.insert(partner, orientation);
            }
        }
        self.pending_partner = None;
        for inst in self.detached_gates.drain(..) {
            output.push(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent;
    use nassc_sabre::{route_with_policy, SabreConfig};
    use nassc_topology::CouplingMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn routes_figure1_circuit_with_one_swap() {
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(3);
        qc.cx(1, 2).cx(0, 1).cx(0, 2);
        let mut policy = NasscPolicy::new(OptimizationFlags::all());
        let distances = line.distance_matrix();
        let layout = Layout::trivial(3);
        let config = SabreConfig::with_seed(1);
        let mut rng = StdRng::seed_from_u64(1);
        let result = route_with_policy(
            &qc,
            &line,
            &distances,
            &layout,
            &config,
            &mut policy,
            &mut rng,
        );
        assert_eq!(result.swap_count, 1);
    }

    #[test]
    fn decompose_swaps_preserves_semantics() {
        let grid = CouplingMap::grid(2, 2);
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3).h(1).cx(1, 2).cx(0, 3).cx(2, 3);
        let mut policy = NasscPolicy::new(OptimizationFlags::all());
        let distances = grid.distance_matrix();
        let layout = Layout::trivial(4);
        let config = SabreConfig::with_seed(4);
        let mut rng = StdRng::seed_from_u64(4);
        let result = route_with_policy(
            &qc,
            &grid,
            &distances,
            &layout,
            &config,
            &mut policy,
            &mut rng,
        );
        let decomposed = policy.decompose_swaps(&result.circuit);
        assert_eq!(decomposed.swap_count(), 0);
        assert!(circuits_equivalent(&result.circuit, &decomposed, 1e-8));
    }

    #[test]
    fn orientation_defaults_when_unconstrained() {
        let policy = NasscPolicy::new(OptimizationFlags::all());
        assert_eq!(
            policy.orientation_of(42),
            SwapOrientation::FirstQubitControl
        );
    }

    #[test]
    fn single_qubit_gates_move_through_the_swap() {
        // Manually exercise the emission hooks: a trailing U3 on one of the
        // swapped wires must end up after the SWAP, on the other wire.
        let mut circuit = QuantumCircuit::new(2);
        circuit.cx(0, 1).u(0.1, 0.2, 0.3, 0);
        let before = circuit.clone();
        let mut output = RoutingState::from_circuit(circuit);
        let mut policy = NasscPolicy::new(OptimizationFlags::all());
        let layout = Layout::trivial(2);
        policy.before_swap_emit(&mut output, &layout, 0, 1);
        output.push(Instruction::new(Gate::Swap, vec![0, 1]));
        let swap_index = output.num_gates() - 1;
        policy.after_swap_emit(&mut output, swap_index, 0, 1);
        let output = output.into_circuit();
        // The U3 now sits after the SWAP on wire 1.
        let last = output.instructions().last().unwrap();
        assert_eq!(last.gate.name(), "u");
        assert_eq!(last.qubits().to_vec(), vec![1]);
        // Semantics: original + SWAP == transformed output.
        let mut reference = before;
        reference.swap(0, 1);
        assert!(circuits_equivalent(&reference, &output, 1e-9));
    }

    #[test]
    fn routed_circuits_respect_coupling_and_semantics() {
        use nassc_circuit::circuits_equivalent_up_to_permutation;
        use nassc_passes::is_mapped;
        use rand::Rng;
        let line = CouplingMap::linear(5);
        let distances = line.distance_matrix();
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..8 {
            let mut qc = QuantumCircuit::new(5);
            for _ in 0..12 {
                let a = rng.gen_range(0..5);
                let b = (a + rng.gen_range(1..5)) % 5;
                if rng.gen_bool(0.25) {
                    qc.t(a);
                } else {
                    qc.cx(a, b);
                }
            }
            let mut policy = NasscPolicy::new(OptimizationFlags::all());
            let layout = Layout::trivial(5);
            let config = SabreConfig::with_seed(trial);
            let mut route_rng = StdRng::seed_from_u64(trial);
            let result = route_with_policy(
                &qc,
                &line,
                &distances,
                &layout,
                &config,
                &mut policy,
                &mut route_rng,
            );
            assert!(is_mapped(&result.circuit, &line));
            let decomposed = policy.decompose_swaps(&result.circuit);
            assert!(is_mapped(&decomposed, &line));
            let perm = result.initial_layout.permutation_to(&result.final_layout);
            let embedded = qc.map_qubits(5, |q| result.initial_layout.physical_of(q));
            assert!(
                circuits_equivalent_up_to_permutation(&embedded, &decomposed, &perm, 1e-7),
                "trial {trial}: NASSC routing changed semantics"
            );
        }
    }
}
