//! End-to-end transpile pipelines: the paper's `Qiskit+SABRE` baseline and
//! `Qiskit+NASSC`, with optional noise-aware (HA) distance matrices.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use nassc_circuit::{DagCircuit, Gate, QuantumCircuit};
use nassc_parallel::{Budget, ThreadPool};
use nassc_passes::{
    apply_layout, standard_optimization_pipeline, PassError, PassManager, UnrollToBasis,
};
use nassc_sabre::{
    route_prepared_budgeted, sabre_layout_prepared_budgeted, LayoutTrials, RoutingResult,
    SabreConfig, SabrePolicy, SwapPolicy,
};
use nassc_synthesis::{swap_decomposition, SwapOrientation};
use nassc_topology::{
    noise_aware_distance, Calibration, CouplingMap, DistanceMatrix, Layout, NoiseAwareAlphas,
};

use crate::cost::OptimizationFlags;
use crate::policy::NasscPolicy;
use crate::session::CacheStats;

/// Which routing algorithm a [`TranspileOptions`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// The SABRE baseline (Li et al., ASPLOS 2019).
    Sabre,
    /// The paper's optimization-aware router.
    Nassc,
}

/// Options controlling a full transpilation.
///
/// Construct via the fluent builder —
/// `TranspileOptions::new().router(RouterKind::Sabre).layout_trials(4).seed(7)`
/// — or one of the named presets ([`sabre`](Self::sabre),
/// [`nassc`](Self::nassc)). Struct-literal construction over the public
/// fields keeps working for existing callers.
#[derive(Debug, Clone)]
pub struct TranspileOptions {
    /// Which router to use.
    pub router: RouterKind,
    /// Shared SABRE/NASSC heuristic parameters (extended-layer size 20 and
    /// weight 0.5 by default, as in the paper).
    pub config: SabreConfig,
    /// NASSC's optimization flags (`b_k` bits); ignored by SABRE.
    pub flags: OptimizationFlags,
    /// When set, routing uses the noise-aware distance matrix of Eq. 3
    /// (the `+HA` variants of Figure 11).
    pub calibration: Option<Calibration>,
    /// Number of independent layout trials (see
    /// [`nassc_sabre::LayoutTrials`]). `1` (the default) selects the
    /// single-trial compatibility path, whose outputs are bit-identical to
    /// the historical single-`StdRng` [`nassc_sabre::sabre_layout`]; `N > 1` runs `N`
    /// independently seeded trials refined through the router's own
    /// [`nassc_sabre::SwapPolicy`] and keeps the one whose full routing pass
    /// costs least — fewest SWAPs for SABRE, fewest CNOTs surviving the
    /// optimization-aware decomposition for NASSC (ties break to the lowest
    /// trial index).
    pub layout_trials: usize,
    /// When set, the transpile runs under a cooperative deadline measured
    /// from request entry ([`Transpiler`] methods anchor it when they start
    /// the request): an in-flight transpile aborts at its next checkpoint —
    /// per layout trial, per routing step, per optimization pass — with
    /// [`Error::Deadline`]. `None` (the default) never aborts. Honoured by
    /// the session API only; the deprecated free functions ignore it.
    ///
    /// [`Transpiler`]: crate::session::Transpiler
    /// [`Error::Deadline`]: crate::error::Error::Deadline
    pub deadline: Option<Duration>,
}

/// `deadline` is deliberately **excluded**: options are the layout-cache
/// key, and two requests differing only in how long they may run must share
/// cache entries (the cached result is bit-identical either way).
impl PartialEq for TranspileOptions {
    fn eq(&self, other: &Self) -> bool {
        self.router == other.router
            && self.config == other.config
            && self.flags == other.flags
            && self.calibration == other.calibration
            && self.layout_trials == other.layout_trials
    }
}

impl Default for TranspileOptions {
    /// The paper's headline configuration: `Qiskit+NASSC` with every
    /// optimization enabled and the default seed ([`SabreConfig::default`]).
    fn default() -> Self {
        Self {
            router: RouterKind::Nassc,
            config: SabreConfig::default(),
            flags: OptimizationFlags::all(),
            calibration: None,
            layout_trials: 1,
            deadline: None,
        }
    }
}

impl TranspileOptions {
    /// Starts the fluent builder from the [`Default`] configuration
    /// (`Qiskit+NASSC`, all optimizations, default seed, one layout trial).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the routing algorithm and resets [`flags`](Self::flags) to
    /// that router's canonical set (none for SABRE, which ignores them; all
    /// for NASSC) — so `new().router(RouterKind::Sabre).seed(s)` equals
    /// [`sabre(s)`](Self::sabre) exactly. Set custom flags *after* the
    /// router.
    #[must_use]
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self.flags = match router {
            RouterKind::Sabre => OptimizationFlags::none(),
            RouterKind::Nassc => OptimizationFlags::all(),
        };
        self
    }

    /// Sets the layout/routing RNG seed, keeping the other heuristic
    /// parameters as configured.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the full SABRE/NASSC heuristic configuration.
    #[must_use]
    pub fn config(mut self, config: SabreConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets NASSC's optimization flags (`b_k` bits); ignored by SABRE.
    #[must_use]
    pub fn flags(mut self, flags: OptimizationFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Builder alias of [`with_calibration`](Self::with_calibration): route
    /// on the noise-aware distance matrix of Eq. 3.
    #[must_use]
    pub fn calibration(self, calibration: Calibration) -> Self {
        self.with_calibration(calibration)
    }

    /// Builder alias of [`with_layout_trials`](Self::with_layout_trials):
    /// run `trials` independent layout trials (clamped to at least 1).
    #[must_use]
    pub fn layout_trials(self, trials: usize) -> Self {
        self.with_layout_trials(trials)
    }

    /// `Qiskit+SABRE` with the given seed.
    pub fn sabre(seed: u64) -> Self {
        Self {
            router: RouterKind::Sabre,
            config: SabreConfig::with_seed(seed),
            flags: OptimizationFlags::none(),
            calibration: None,
            layout_trials: 1,
            deadline: None,
        }
    }

    /// `Qiskit+NASSC` with all optimizations enabled and the given seed.
    pub fn nassc(seed: u64) -> Self {
        Self {
            router: RouterKind::Nassc,
            config: SabreConfig::with_seed(seed),
            flags: OptimizationFlags::all(),
            calibration: None,
            layout_trials: 1,
            deadline: None,
        }
    }

    /// `Qiskit+NASSC` with a specific optimization-flag combination
    /// (used by the Figure 9 sweep).
    pub fn nassc_with_flags(seed: u64, flags: OptimizationFlags) -> Self {
        Self {
            flags,
            ..Self::nassc(seed)
        }
    }

    /// The noise-aware variant (`SABRE+HA` / `NASSC+HA`).
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Runs `trials` independent layout trials (clamped to at least 1) and
    /// keeps the cheapest-to-route layout. `1` preserves the historical
    /// single-trial outputs bit-for-bit.
    #[must_use]
    pub fn with_layout_trials(mut self, trials: usize) -> Self {
        self.layout_trials = trials.max(1);
        self
    }

    /// Caps how long the transpile may run (measured from request entry by
    /// the session API): past the limit the in-flight transpile aborts at
    /// its next checkpoint with [`Error::Deadline`]. A deadline never
    /// changes results — outputs are bit-identical whenever the transpile
    /// finishes in time — and never affects cache keys (see the manual
    /// [`PartialEq`] impl).
    ///
    /// [`Error::Deadline`]: crate::error::Error::Deadline
    #[must_use]
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }
}

/// The outcome of a full transpilation.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The final physical circuit in the IBM basis.
    pub circuit: QuantumCircuit,
    /// The chosen initial layout.
    pub initial_layout: Layout,
    /// The layout after all SWAPs.
    pub final_layout: Layout,
    /// Number of SWAPs inserted during routing (before optimization).
    pub swap_count: usize,
    /// Index of the layout trial whose layout was used (always 0 in the
    /// single-trial compatibility mode).
    pub chosen_layout_trial: usize,
    /// Scoring cost of every layout trial, in trial order. The unit is
    /// router-specific: SWAPs inserted by the trial's full routing pass for
    /// SABRE, CNOTs surviving the optimization-aware SWAP decomposition for
    /// NASSC — comparable within a run, not across routers. Empty in
    /// single-trial mode, where no scoring pass runs.
    pub layout_trial_costs: Vec<f64>,
    /// Cache activity this request observed on the [`Transpiler`] session
    /// that served it: hits and misses against the distance, prepared and
    /// layout caches. All zero on the cache-less free-function paths.
    ///
    /// [`Transpiler`]: crate::session::Transpiler
    pub cache: CacheStats,
    /// Wall-clock time of the whole pipeline.
    pub elapsed: Duration,
}

impl TranspileResult {
    /// CNOT count of the final circuit.
    pub fn cx_count(&self) -> usize {
        self.circuit.cx_count()
    }

    /// Depth of the final circuit.
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }
}

/// The pre-routing pipeline: basis unrolling followed by the standard
/// optimizations (this is also what the paper's "original circuit optimized
/// by Qiskit" baseline columns report).
pub fn optimize_without_routing(circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
    optimize_without_routing_budgeted(circuit, &Budget::unlimited())
}

/// [`optimize_without_routing`] under a cooperative [`Budget`], checked
/// before each pass (see [`PassManager::run_with_budget`]).
pub(crate) fn optimize_without_routing_budgeted(
    circuit: &QuantumCircuit,
    budget: &Budget,
) -> Result<QuantumCircuit, PassError> {
    let _span = nassc_trace::span!("prepare");
    let mut pm = PassManager::new();
    pm.push(UnrollToBasis);
    let unrolled = pm.run_with_budget(circuit, budget)?;
    standard_optimization_pipeline().run_with_budget(&unrolled, budget)
}

/// Builds the distance matrix a transpilation over `coupling` uses: plain
/// hop counts, or the noise-aware Eq. 3 variant when a calibration is given.
///
/// The result depends only on `(coupling, calibration)`, never on the circuit
/// or seed — the [`Transpiler`] session computes it once per device and
/// shares it across every request through its distance cache.
///
/// [`Transpiler`]: crate::session::Transpiler
#[deprecated(note = "use Transpiler — its distance cache owns this computation")]
pub fn distances_for(coupling: &CouplingMap, calibration: Option<&Calibration>) -> DistanceMatrix {
    distances_for_impl(coupling, calibration)
}

/// Non-deprecated internal behind [`distances_for`], shared by the session
/// caches and the legacy shims.
pub(crate) fn distances_for_impl(
    coupling: &CouplingMap,
    calibration: Option<&Calibration>,
) -> DistanceMatrix {
    match calibration {
        Some(cal) => noise_aware_distance(coupling, cal, NoiseAwareAlphas::default()),
        None => coupling.distance_matrix(),
    }
}

/// Runs the full pipeline: pre-routing optimization, SABRE layout, routing
/// (SABRE or NASSC), SWAP decomposition and post-routing optimization.
///
/// # Errors
///
/// Propagates [`PassError`] from any optimization pass.
#[deprecated(note = "use Transpiler::transpile — it reuses distances, prepared \
                     baselines and layout winners across requests")]
pub fn transpile(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    transpile_impl(circuit, coupling, options)
}

pub(crate) fn transpile_impl(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    let start = Instant::now();
    let distances = distances_for_impl(coupling, options.calibration.as_ref());
    let mut result = transpile_with_distances_impl(circuit, coupling, &distances, options)?;
    // Keep the historical meaning of `elapsed` for this entry point: the
    // whole pipeline, distance-matrix construction included.
    result.elapsed = start.elapsed();
    Ok(result)
}

/// [`transpile`] with a precomputed distance matrix.
///
/// `distances` must be what [`distances_for`] returns for `coupling` and
/// `options.calibration` — callers that sweep many seeds over one device
/// (the batch engine, the bench harness) compute it once instead of
/// rebuilding the all-pairs matrix on every call. Output is identical to
/// [`transpile`] for matching inputs.
///
/// # Errors
///
/// Propagates [`PassError`] from any optimization pass.
#[deprecated(note = "use Transpiler::transpile — its distance cache makes the \
                     precomputed-matrix plumbing unnecessary")]
pub fn transpile_with_distances(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    transpile_with_distances_impl(circuit, coupling, distances, options)
}

pub(crate) fn transpile_with_distances_impl(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    let start = Instant::now();
    // Pre-routing optimization (moved before routing, as NASSC requires).
    let prepared = optimize_without_routing(circuit)?;
    let mut result = transpile_prepared_impl(&prepared, coupling, distances, options)?;
    // Report the whole pipeline's wall-clock, including preparation.
    result.elapsed = start.elapsed();
    Ok(result)
}

/// The seed-dependent tail of the pipeline: layout, routing, SWAP
/// decomposition and post-routing optimization of an **already prepared**
/// circuit (one that [`optimize_without_routing`] has produced).
///
/// Preparation is deterministic and seed-independent, so seed sweeps over
/// one circuit can run it once and share `prepared` across every job — the
/// batch engine (`crate::batch`) does exactly that. `elapsed` covers only
/// this call.
///
/// Layout trials (when `options.layout_trials > 1`) fan across the default
/// thread pool; callers that already own a worker budget — the batch engine
/// splits one between jobs and trials — use [`transpile_prepared_on`].
///
/// # Errors
///
/// Propagates [`PassError`] from any optimization pass.
#[deprecated(note = "use Transpiler::transpile — its prepared-baseline cache \
                     shares preparation across requests automatically")]
pub fn transpile_prepared(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    transpile_prepared_impl(prepared, coupling, distances, options)
}

pub(crate) fn transpile_prepared_impl(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
) -> Result<TranspileResult, PassError> {
    transpile_prepared_on_impl(
        prepared,
        coupling,
        distances,
        options,
        &ThreadPool::with_default_parallelism(),
    )
}

/// [`transpile_prepared`] with an explicit worker budget.
///
/// The budget is split between the two parallelism levels inside one
/// transpile via [`ThreadPool::split_budget`]: layout trials fan across the
/// outer share, and each routing pass fans its per-candidate SWAP scoring
/// across the inner share (in single-trial mode the whole budget goes to
/// in-pass scoring). The pool size affects wall clock only: every layout
/// trial owns a private seed stream and candidate scores reduce serially in
/// shuffled order, so the output is bit-identical at any worker count.
///
/// # Errors
///
/// Propagates [`PassError`] from any optimization pass.
#[deprecated(note = "use Transpiler::with_pool(..).transpile — the session \
                     owns the worker budget")]
pub fn transpile_prepared_on(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
    trial_pool: &ThreadPool,
) -> Result<TranspileResult, PassError> {
    transpile_prepared_on_impl(prepared, coupling, distances, options, trial_pool)
}

pub(crate) fn transpile_prepared_on_impl(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
    trial_pool: &ThreadPool,
) -> Result<TranspileResult, PassError> {
    transpile_prepared_on_budgeted_impl(
        prepared,
        coupling,
        distances,
        options,
        trial_pool,
        &Budget::unlimited(),
    )
}

/// The cold-path tail under a cooperative [`Budget`]: layout trials, every
/// routing step and every optimization pass checkpoint it, so an exhausted
/// budget aborts the transpile by unwinding with a typed `Cancelled`
/// payload (caught and classified at the session boundary).
pub(crate) fn transpile_prepared_on_budgeted_impl(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
    trial_pool: &ThreadPool,
    budget: &Budget,
) -> Result<TranspileResult, PassError> {
    let start = Instant::now();
    let (trial_pool, score_pool) = trial_pool.split_budget(options.layout_trials);

    // Layout, routing and SWAP decomposition; the two arms differ only in
    // the SWAP policy, the trial cost and how SWAPs are decomposed. SABRE
    // prices every SWAP at three CNOTs, so the SWAP count of a trial's
    // scoring pass is (up to a constant factor) the CNOT overhead that
    // layout costs — the same trial score Qiskit's SabreLayout uses.
    // NASSC's whole point is that not all SWAPs have the same cost: its
    // decomposition cancels CNOTs against neighbouring gates, so trials are
    // scored by the CNOTs that actually survive the policy's
    // optimization-aware decomposition.
    let (routed, decomposed, chosen_layout_trial, layout_trial_costs) = match options.router {
        RouterKind::Sabre => layout_route_decompose(
            prepared,
            coupling,
            distances,
            options,
            &trial_pool,
            &score_pool,
            budget,
            || SabrePolicy,
            |routed, _| routed.swap_count as f64,
            |routed, _| decompose_swaps_fixed(&routed.circuit),
        ),
        RouterKind::Nassc => layout_route_decompose(
            prepared,
            coupling,
            distances,
            options,
            &trial_pool,
            &score_pool,
            budget,
            || NasscPolicy::new(options.flags),
            |routed, policy| policy.decompose_swaps(&routed.circuit).cx_count() as f64,
            |routed, policy| policy.decompose_swaps(&routed.circuit),
        ),
    };

    // Post-routing optimization shared by both arms.
    let optimized = {
        let _span = nassc_trace::span!("post_optimize");
        standard_optimization_pipeline().run_with_budget(&decomposed, budget)?
    };

    Ok(TranspileResult {
        circuit: optimized,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        swap_count: routed.swap_count,
        chosen_layout_trial,
        layout_trial_costs,
        cache: CacheStats::default(),
        elapsed: start.elapsed(),
    })
}

/// The warm-cache tail used by the [`Transpiler`] layout cache: route the
/// prepared circuit **from an already-chosen initial layout** (the cached
/// winner of a previous request's layout search), then decompose and
/// post-optimize as usual.
///
/// Bit-identity with the cold path follows from how the cold path itself
/// routes: in single-trial mode the production route is exactly
/// [`route_from`] on the refined layout, and in multi-trial mode the
/// winner's scoring pass already runs on the production RNG, so its route
/// *is* the production route (see [`LayoutTrials::run_routed`]). Either way,
/// re-running [`route_from`] on the cached initial layout with the same
/// options reproduces the cold route gate-for-gate. The worker budget feeds
/// in-pass SWAP scoring only, which never affects results.
///
/// `chosen_trial` and `trial_costs` are the cached diagnostics of the
/// original layout search, echoed so warm results equal cold results field
/// by field.
///
/// [`Transpiler`]: crate::session::Transpiler
/// [`LayoutTrials::run_routed`]: nassc_sabre::LayoutTrials::run_routed
#[allow(clippy::too_many_arguments)]
pub(crate) fn transpile_prepared_from_layout(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
    initial_layout: &Layout,
    chosen_trial: usize,
    trial_costs: Vec<f64>,
    score_pool: &ThreadPool,
    budget: &Budget,
) -> Result<TranspileResult, PassError> {
    let start = Instant::now();
    let mut route_span = nassc_trace::span!("route_from");
    route_span.arg_u64("chosen_trial", chosen_trial as u64);
    let (routed, decomposed) = match options.router {
        RouterKind::Sabre => {
            let (routed, _) = route_from(
                prepared,
                coupling,
                distances,
                initial_layout,
                options,
                &|| SabrePolicy,
                score_pool,
                budget,
            );
            let decomposed = decompose_swaps_fixed(&routed.circuit);
            (routed, decomposed)
        }
        RouterKind::Nassc => {
            let (routed, policy) = route_from(
                prepared,
                coupling,
                distances,
                initial_layout,
                options,
                &|| NasscPolicy::new(options.flags),
                score_pool,
                budget,
            );
            let decomposed = policy.decompose_swaps(&routed.circuit);
            (routed, decomposed)
        }
    };
    drop(route_span);
    let optimized = {
        let _span = nassc_trace::span!("post_optimize");
        standard_optimization_pipeline().run_with_budget(&decomposed, budget)?
    };
    Ok(TranspileResult {
        circuit: optimized,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        swap_count: routed.swap_count,
        chosen_layout_trial: chosen_trial,
        layout_trial_costs: trial_costs,
        cache: CacheStats::default(),
        elapsed: start.elapsed(),
    })
}

/// The router-generic layout + routing + decomposition core of
/// [`transpile_prepared_on`]: returns the routing result, the decomposed
/// circuit and the layout-trial diagnostics.
///
/// `options.layout_trials <= 1` takes the compatibility path — the
/// single-trial [`sabre_layout`] refinement followed by one routing pass on
/// the production RNG, bit-identical to the historical pipeline. Multiple
/// trials run the policy-aware [`LayoutTrials`] engine; since each trial's
/// scoring pass already routes on the production RNG, the winner's scoring
/// route *is* the production route and is reused directly instead of paying
/// a duplicate routing pass.
#[allow(clippy::too_many_arguments)]
fn layout_route_decompose<P, F, S, D>(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    options: &TranspileOptions,
    trial_pool: &ThreadPool,
    score_pool: &ThreadPool,
    budget: &Budget,
    make_policy: F,
    score: S,
    decompose: D,
) -> (RoutingResult, QuantumCircuit, usize, Vec<f64>)
where
    P: SwapPolicy + Send + Sync,
    F: Fn() -> P + Sync,
    S: Fn(&RoutingResult, &P) -> f64 + Sync,
    D: Fn(&RoutingResult, &P) -> QuantumCircuit,
{
    if options.layout_trials <= 1 {
        // Build the dependency DAG once per circuit and share it between the
        // layout search and the production routing pass — at 100k gates the
        // per-pass rebuild used to dominate the single-trial path.
        let dag = {
            let _span = nassc_trace::span!("dag_build");
            DagCircuit::from_circuit(prepared)
        };
        let layout = if prepared.two_qubit_gate_count() == 0 {
            Layout::trivial(coupling.num_qubits())
        } else {
            let reversed_dag = DagCircuit::from_circuit(&prepared.reversed());
            sabre_layout_prepared_budgeted(
                &dag,
                &reversed_dag,
                coupling,
                distances,
                &options.config,
                score_pool,
                budget,
            )
        };
        let routed = {
            let _span = nassc_trace::span!("route");
            let mut policy = make_policy();
            let routed = route_prepared_budgeted(
                &dag,
                coupling,
                distances,
                &layout,
                &options.config,
                &mut policy,
                &mut StdRng::seed_from_u64(options.config.seed),
                score_pool,
                budget,
            );
            (routed, policy)
        };
        let (routed, policy) = routed;
        let decomposed = {
            let _span = nassc_trace::span!("decompose");
            decompose(&routed, &policy)
        };
        return (routed, decomposed, 0, Vec::new());
    }

    let engine = LayoutTrials::new(prepared, coupling, distances, &options.config)
        .trials(options.layout_trials)
        .pool(*trial_pool)
        .score_pool(*score_pool)
        .budget(budget.clone());
    let (selection, winner) = engine.run_routed(&make_policy, score);
    let costs = selection.trial_costs();
    let (routed, policy) = match winner {
        Some(winner) => winner,
        // Degenerate no-two-qubit-gate circuit: no trial ever routed, so
        // route once from the engine's identity layout.
        None => route_from(
            prepared,
            coupling,
            distances,
            &selection.layout,
            options,
            &make_policy,
            score_pool,
            budget,
        ),
    };
    let decomposed = {
        let _span = nassc_trace::span!("decompose");
        decompose(&routed, &policy)
    };
    (routed, decomposed, selection.chosen_trial, costs)
}

/// One production routing pass: fresh policy, RNG seeded from
/// `options.config.seed`.
#[allow(clippy::too_many_arguments)]
fn route_from<P, F>(
    prepared: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    layout: &Layout,
    options: &TranspileOptions,
    make_policy: &F,
    score_pool: &ThreadPool,
    budget: &Budget,
) -> (RoutingResult, P)
where
    P: SwapPolicy + Sync,
    F: Fn() -> P,
{
    let mut policy = make_policy();
    let dag = DagCircuit::from_circuit(prepared);
    let routed = route_prepared_budgeted(
        &dag,
        coupling,
        distances,
        layout,
        &options.config,
        &mut policy,
        &mut StdRng::seed_from_u64(options.config.seed),
        score_pool,
        budget,
    );
    (routed, policy)
}

/// Embeds a logical circuit on the device with a layout but no routing —
/// useful for fully connected topologies and tests.
pub fn embed(circuit: &QuantumCircuit, coupling: &CouplingMap, layout: &Layout) -> QuantumCircuit {
    apply_layout(circuit, layout, coupling.num_qubits())
}

/// Expands every SWAP with the fixed default template (what the baseline
/// Qiskit+SABRE flow does).
pub fn decompose_swaps_fixed(circuit: &QuantumCircuit) -> QuantumCircuit {
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for inst in circuit.iter() {
        if inst.gate == Gate::Swap {
            for cx in swap_decomposition(
                inst.qubit(0),
                inst.qubit(1),
                SwapOrientation::FirstQubitControl,
            ) {
                out.push(cx);
            }
        } else {
            out.push(inst.clone());
        }
    }
    out
}

// The tests exercise the deprecated free functions on purpose: they pin the
// behavior the legacy shims must keep until removal.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use nassc_passes::is_mapped;

    fn sample_circuit() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(5);
        qc.h(0);
        for i in 0..4 {
            qc.cx(i, i + 1);
        }
        qc.cx(0, 4).cx(1, 3).cx(0, 2);
        qc
    }

    #[test]
    fn sabre_pipeline_produces_mapped_basis_circuit() {
        let device = CouplingMap::linear(5);
        let result = transpile(&sample_circuit(), &device, &TranspileOptions::sabre(3)).unwrap();
        assert!(is_mapped(&result.circuit, &device));
        assert!(result.circuit.iter().all(|i| i.gate.in_ibm_basis()));
        assert!(result.cx_count() > 0);
    }

    #[test]
    fn nassc_pipeline_produces_mapped_basis_circuit() {
        let device = CouplingMap::linear(5);
        let result = transpile(&sample_circuit(), &device, &TranspileOptions::nassc(3)).unwrap();
        assert!(is_mapped(&result.circuit, &device));
        assert!(result.circuit.iter().all(|i| i.gate.in_ibm_basis()));
    }

    #[test]
    fn nassc_does_not_use_more_cnots_than_sabre_on_average() {
        let device = CouplingMap::linear(5);
        let circuit = sample_circuit();
        let mut sabre_total = 0usize;
        let mut nassc_total = 0usize;
        for seed in 0..5 {
            sabre_total += transpile(&circuit, &device, &TranspileOptions::sabre(seed))
                .unwrap()
                .cx_count();
            nassc_total += transpile(&circuit, &device, &TranspileOptions::nassc(seed))
                .unwrap()
                .cx_count();
        }
        assert!(
            nassc_total <= sabre_total,
            "NASSC used {nassc_total} CNOTs vs SABRE's {sabre_total}"
        );
    }

    #[test]
    fn optimize_without_routing_reaches_basis() {
        let out = optimize_without_routing(&sample_circuit()).unwrap();
        assert!(out.iter().all(|i| i.gate.in_ibm_basis()));
    }

    #[test]
    fn fixed_swap_decomposition_removes_swaps() {
        let mut qc = QuantumCircuit::new(3);
        qc.swap(0, 1).cx(1, 2).swap(1, 2);
        let out = decompose_swaps_fixed(&qc);
        assert_eq!(out.swap_count(), 0);
        assert_eq!(out.cx_count(), 7);
    }

    #[test]
    fn noise_aware_options_run() {
        let device = CouplingMap::ibmq_montreal();
        let cal = Calibration::synthetic(&device, 5);
        let mut qc = QuantumCircuit::new(4);
        qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3);
        for options in [
            TranspileOptions::sabre(1).with_calibration(cal.clone()),
            TranspileOptions::nassc(1).with_calibration(cal),
        ] {
            let result = transpile(&qc, &device, &options).unwrap();
            assert!(is_mapped(&result.circuit, &device));
        }
    }

    #[test]
    fn precomputed_distances_match_the_inline_path() {
        let device = CouplingMap::ibmq_montreal();
        let cal = Calibration::synthetic(&device, 5);
        let circuit = sample_circuit();
        for options in [
            TranspileOptions::sabre(7),
            TranspileOptions::nassc(7),
            TranspileOptions::nassc(7).with_calibration(cal),
        ] {
            let distances = distances_for(&device, options.calibration.as_ref());
            let inline = transpile(&circuit, &device, &options).unwrap();
            let precomputed =
                transpile_with_distances(&circuit, &device, &distances, &options).unwrap();
            assert_eq!(inline.circuit, precomputed.circuit);
            assert_eq!(inline.initial_layout, precomputed.initial_layout);
            assert_eq!(inline.final_layout, precomputed.final_layout);
            assert_eq!(inline.swap_count, precomputed.swap_count);
        }
    }

    #[test]
    fn single_trial_mode_records_no_trial_diagnostics() {
        let device = CouplingMap::linear(5);
        let result = transpile(&sample_circuit(), &device, &TranspileOptions::nassc(3)).unwrap();
        assert_eq!(result.chosen_layout_trial, 0);
        assert!(result.layout_trial_costs.is_empty());
    }

    #[test]
    fn multi_trial_pipeline_is_mapped_and_records_diagnostics() {
        let device = CouplingMap::ibmq_montreal();
        let circuit = sample_circuit();
        for options in [
            TranspileOptions::sabre(3).with_layout_trials(4),
            TranspileOptions::nassc(3).with_layout_trials(4),
        ] {
            let result = transpile(&circuit, &device, &options).unwrap();
            assert!(is_mapped(&result.circuit, &device));
            assert_eq!(result.layout_trial_costs.len(), 4);
            assert!(result.chosen_layout_trial < 4);
            let best = result.layout_trial_costs[result.chosen_layout_trial];
            assert!(result.layout_trial_costs.iter().all(|&c| c >= best));
        }
    }

    #[test]
    fn multi_trial_results_are_reproducible() {
        let device = CouplingMap::ibmq_montreal();
        let circuit = sample_circuit();
        let options = TranspileOptions::nassc(5).with_layout_trials(3);
        let a = transpile(&circuit, &device, &options).unwrap();
        let b = transpile(&circuit, &device, &options).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.initial_layout, b.initial_layout);
        assert_eq!(a.chosen_layout_trial, b.chosen_layout_trial);
        assert_eq!(a.layout_trial_costs, b.layout_trial_costs);
    }

    #[test]
    fn transpile_reports_timing_and_swaps() {
        let device = CouplingMap::linear(5);
        let result = transpile(&sample_circuit(), &device, &TranspileOptions::nassc(9)).unwrap();
        assert!(result.elapsed > Duration::ZERO);
        assert!(result.depth() > 0);
        // The sample circuit cannot be routed on a line without SWAPs.
        assert!(result.swap_count > 0);
    }
}
