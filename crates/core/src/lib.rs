//! NASSC — *Not All SWAPs have the Same Cost* — optimization-aware qubit
//! routing (HPCA 2022), reproduced in Rust.
//!
//! State-of-the-art routers such as SABRE pick SWAPs by minimising a distance
//! heuristic, implicitly assuming every SWAP costs three CNOTs. NASSC's
//! observation is that the *subsequent* optimization passes — two-qubit block
//! re-synthesis and commutation-based gate cancellation — remove many of
//! those CNOTs, and that the routing decision should anticipate it. This
//! crate provides:
//!
//! * [`OptimizationFlags`] and the `C_2q`/`C_commute1`/`C_commute2` reduction
//!   terms of the cost function (Eq. 1–2),
//! * [`NasscPolicy`] — the optimization-aware SWAP scorer plugged into the
//!   SABRE traversal engine, with optimization-aware SWAP decomposition and
//!   single-qubit movement through SWAPs (§IV-E),
//! * [`Transpiler`] / [`TranspileOptions`] — the long-lived session API: the
//!   full `Qiskit+SABRE` and `Qiskit+NASSC` pipelines evaluated in the paper
//!   (including the noise-aware `+HA` variants of Eq. 3 and multi-trial
//!   layout selection via `TranspileOptions::new().layout_trials(n)`) behind
//!   one entry point that owns the persistent worker budget and reuses
//!   distance matrices, prepared baselines and layout winners across
//!   requests ([`CacheStats`] reports the hit rates),
//! * [`Transpiler::transpile_jobs`] / [`SessionJob`] — the batch engine
//!   fanning (benchmark × seed × router) grids across cores with results
//!   bit-identical to serial execution at any cache temperature.
//!
//! The nine free functions of the pre-session API (`transpile`,
//! `transpile_batch`, `distances_for`, …) remain as deprecated shims with
//! unchanged behavior.
//!
//! # Example
//!
//! ```
//! use nassc::{Transpiler, TranspileOptions, RouterKind};
//! use nassc_circuit::QuantumCircuit;
//! use nassc_topology::CouplingMap;
//!
//! // The paper's Figure 1: three CNOTs on a 3-qubit line.
//! let mut qc = QuantumCircuit::new(3);
//! qc.cx(1, 2).cx(0, 1).cx(0, 2);
//! let device = CouplingMap::linear(3);
//!
//! let sabre = Transpiler::new(
//!     device.clone(),
//!     TranspileOptions::new().router(RouterKind::Sabre).seed(7),
//! );
//! let nassc = Transpiler::new(device, TranspileOptions::new().seed(7));
//! let baseline = sabre.transpile(&qc).unwrap();
//! let ours = nassc.transpile(&qc).unwrap();
//! assert!(ours.cx_count() <= baseline.cx_count());
//! ```

pub mod batch;
pub mod cost;
pub mod device;
pub mod error;
pub mod pipeline;
pub mod policy;
pub mod session;

#[allow(deprecated)]
pub use batch::{
    transpile_batch, transpile_batch_on, transpile_batch_prepared, transpile_batch_prepared_on,
};
pub use batch::{BatchJob, DistanceCache};
pub use cost::{
    evaluate_swap_reduction, evaluate_swap_reduction_windowed, OptimizationFlags, SwapReduction,
};
pub use device::{Device, DeviceParseError};
pub use error::{Error, ErrorKind};
pub use pipeline::{
    decompose_swaps_fixed, embed, optimize_without_routing, RouterKind, TranspileOptions,
    TranspileResult,
};
#[allow(deprecated)]
pub use pipeline::{
    distances_for, transpile, transpile_prepared, transpile_prepared_on, transpile_with_distances,
};
pub use policy::NasscPolicy;
pub use session::{CacheStats, SessionJob, Transpiler};
