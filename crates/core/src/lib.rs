//! NASSC — *Not All SWAPs have the Same Cost* — optimization-aware qubit
//! routing (HPCA 2022), reproduced in Rust.
//!
//! State-of-the-art routers such as SABRE pick SWAPs by minimising a distance
//! heuristic, implicitly assuming every SWAP costs three CNOTs. NASSC's
//! observation is that the *subsequent* optimization passes — two-qubit block
//! re-synthesis and commutation-based gate cancellation — remove many of
//! those CNOTs, and that the routing decision should anticipate it. This
//! crate provides:
//!
//! * [`OptimizationFlags`] and the `C_2q`/`C_commute1`/`C_commute2` reduction
//!   terms of the cost function (Eq. 1–2),
//! * [`NasscPolicy`] — the optimization-aware SWAP scorer plugged into the
//!   SABRE traversal engine, with optimization-aware SWAP decomposition and
//!   single-qubit movement through SWAPs (§IV-E),
//! * [`transpile`] / [`TranspileOptions`] — the full `Qiskit+SABRE` and
//!   `Qiskit+NASSC` pipelines evaluated in the paper, including the
//!   noise-aware `+HA` variants (Eq. 3) and multi-trial layout selection
//!   (`TranspileOptions::with_layout_trials`, refining each candidate with
//!   the router's own policy),
//! * [`transpile_batch`] / [`BatchJob`] — the batch engine fanning
//!   (benchmark × seed × router) grids across cores with shared
//!   per-device distance matrices ([`DistanceCache`]) and results
//!   bit-identical to serial execution.
//!
//! # Example
//!
//! ```
//! use nassc::{transpile, TranspileOptions};
//! use nassc_circuit::QuantumCircuit;
//! use nassc_topology::CouplingMap;
//!
//! // The paper's Figure 1: three CNOTs on a 3-qubit line.
//! let mut qc = QuantumCircuit::new(3);
//! qc.cx(1, 2).cx(0, 1).cx(0, 2);
//! let device = CouplingMap::linear(3);
//!
//! let sabre = transpile(&qc, &device, &TranspileOptions::sabre(7)).unwrap();
//! let nassc = transpile(&qc, &device, &TranspileOptions::nassc(7)).unwrap();
//! assert!(nassc.cx_count() <= sabre.cx_count());
//! ```

pub mod batch;
pub mod cost;
pub mod pipeline;
pub mod policy;

pub use batch::{
    transpile_batch, transpile_batch_on, transpile_batch_prepared, transpile_batch_prepared_on,
    BatchJob, DistanceCache,
};
pub use cost::{
    evaluate_swap_reduction, evaluate_swap_reduction_windowed, OptimizationFlags, SwapReduction,
};
pub use pipeline::{
    decompose_swaps_fixed, distances_for, embed, optimize_without_routing, transpile,
    transpile_prepared, transpile_prepared_on, transpile_with_distances, RouterKind,
    TranspileOptions, TranspileResult,
};
pub use policy::NasscPolicy;
