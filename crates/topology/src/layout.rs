//! Logical-to-physical qubit layouts.

use rand::seq::SliceRandom;
use rand::Rng;

/// A bijective mapping between the logical qubits of a circuit and the
/// physical qubits of a device.
///
/// Both directions are kept in sync so lookups are O(1) either way, and
/// [`Layout::swap_physical`] applies the effect of a SWAP gate on two
/// physical qubits — the operation routing performs constantly.
///
/// The layout always covers *all* physical qubits; circuits narrower than
/// the device get the extra physical qubits bound to unused logical indices
/// (`num_logical..num_physical`), mirroring how Qiskit pads ancillas.
///
/// # Example
///
/// ```
/// use nassc_topology::Layout;
///
/// let mut layout = Layout::trivial(3);
/// layout.swap_physical(0, 2);
/// assert_eq!(layout.physical_of(0), 2);
/// assert_eq!(layout.logical_of(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    logical_to_physical: Vec<usize>,
    physical_to_logical: Vec<usize>,
}

impl Layout {
    /// The identity layout on `n` qubits (logical `i` → physical `i`).
    pub fn trivial(n: usize) -> Self {
        Self {
            logical_to_physical: (0..n).collect(),
            physical_to_logical: (0..n).collect(),
        }
    }

    /// Builds a layout from a logical→physical assignment.
    ///
    /// # Panics
    ///
    /// Panics when the assignment is not a permutation of `0..n`.
    pub fn from_logical_to_physical(assignment: Vec<usize>) -> Self {
        let n = assignment.len();
        let mut physical_to_logical = vec![usize::MAX; n];
        for (logical, &physical) in assignment.iter().enumerate() {
            assert!(physical < n, "physical qubit {physical} out of range");
            assert_eq!(
                physical_to_logical[physical],
                usize::MAX,
                "physical qubit {physical} assigned twice"
            );
            physical_to_logical[physical] = logical;
        }
        Self {
            logical_to_physical: assignment,
            physical_to_logical,
        }
    }

    /// A uniformly random layout over `n` qubits.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut assignment: Vec<usize> = (0..n).collect();
        assignment.shuffle(rng);
        Self::from_logical_to_physical(assignment)
    }

    /// The number of qubits covered.
    pub fn len(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Returns `true` for the empty layout.
    pub fn is_empty(&self) -> bool {
        self.logical_to_physical.is_empty()
    }

    /// The physical qubit currently holding logical qubit `logical`.
    pub fn physical_of(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// The logical qubit currently held by physical qubit `physical`.
    pub fn logical_of(&self, physical: usize) -> usize {
        self.physical_to_logical[physical]
    }

    /// The full logical→physical assignment.
    pub fn logical_to_physical(&self) -> &[usize] {
        &self.logical_to_physical
    }

    /// The full physical→logical assignment.
    pub fn physical_to_logical(&self) -> &[usize] {
        &self.physical_to_logical
    }

    /// Applies a SWAP between two *physical* qubits (the routing primitive).
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.physical_to_logical[a];
        let lb = self.physical_to_logical[b];
        self.physical_to_logical.swap(a, b);
        self.logical_to_physical[la] = b;
        self.logical_to_physical[lb] = a;
    }

    /// The composition "apply `self`, then read through `other`" is not
    /// needed; what routing needs is the permutation from this layout to
    /// another one over the same qubits: `result[l] = other.physical_of(l)`
    /// read back through `self`. Concretely, returns for every *physical*
    /// qubit of `self` the physical qubit of `other` holding the same
    /// logical qubit. Used to express the final permutation a routed circuit
    /// applies to its wires.
    pub fn permutation_to(&self, other: &Layout) -> Vec<usize> {
        assert_eq!(self.len(), other.len());
        (0..self.len())
            .map(|physical| {
                let logical = self.logical_of(physical);
                other.physical_of(logical)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(4);
        for q in 0..4 {
            assert_eq!(l.physical_of(q), q);
            assert_eq!(l.logical_of(q), q);
        }
    }

    #[test]
    fn swap_physical_updates_both_views() {
        let mut l = Layout::trivial(4);
        l.swap_physical(1, 3);
        assert_eq!(l.physical_of(1), 3);
        assert_eq!(l.physical_of(3), 1);
        assert_eq!(l.logical_of(3), 1);
        assert_eq!(l.logical_of(1), 3);
        // Unaffected qubits stay.
        assert_eq!(l.physical_of(0), 0);
    }

    #[test]
    fn from_assignment_roundtrips() {
        let l = Layout::from_logical_to_physical(vec![2, 0, 1]);
        assert_eq!(l.physical_of(0), 2);
        assert_eq!(l.logical_of(2), 0);
        assert_eq!(l.logical_of(0), 1);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn non_permutation_panics() {
        let _ = Layout::from_logical_to_physical(vec![0, 0, 1]);
    }

    #[test]
    fn random_layout_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Layout::random(10, &mut rng);
        let mut seen = vec![false; 10];
        for q in 0..10 {
            seen[l.physical_of(q)] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn permutation_between_layouts() {
        let a = Layout::trivial(3);
        let mut b = Layout::trivial(3);
        b.swap_physical(0, 2);
        let perm = a.permutation_to(&b);
        // Logical 0 sits on physical 0 in `a` and physical 2 in `b`.
        assert_eq!(perm, vec![2, 1, 0]);
    }
}
