//! Device calibration data and the noise-aware distance matrix (Eq. 3).
//!
//! The paper's noise-aware variants (SABRE+HA and NASSC+HA) replace the plain
//! hop-count distance matrix with one whose edge weights mix the CNOT error
//! rate, the SWAP execution time and the unit hop distance:
//!
//! ```text
//! D_noise[i][j] = α1·ε[i][j] + α2·T[i][j] + α3·D[i][j]        (Eq. 3)
//! ```
//!
//! with `α = (0.5, 0, 0.5)` in the paper's experiments. The original artifact
//! reads ε and T from the IBM backend; we generate a synthetic but realistic
//! calibration (documented in DESIGN.md) because real backend access is not
//! available offline.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coupling::CouplingMap;
use crate::distance::DistanceMatrix;

/// Per-device calibration data: error rates and durations.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    num_qubits: usize,
    cx_error: HashMap<(usize, usize), f64>,
    cx_duration_ns: HashMap<(usize, usize), f64>,
    sq_error: Vec<f64>,
    readout_error: Vec<f64>,
}

impl Calibration {
    /// Builds a calibration with uniform (noise-free-ish) values, useful as a
    /// neutral default in tests.
    pub fn uniform(coupling: &CouplingMap, cx_error: f64, readout_error: f64) -> Self {
        let mut cx = HashMap::new();
        let mut dur = HashMap::new();
        for &(a, b) in coupling.edges() {
            cx.insert((a, b), cx_error);
            dur.insert((a, b), 300.0);
        }
        Self {
            num_qubits: coupling.num_qubits(),
            cx_error: cx,
            cx_duration_ns: dur,
            sq_error: vec![cx_error / 10.0; coupling.num_qubits()],
            readout_error: vec![readout_error; coupling.num_qubits()],
        }
    }

    /// Generates a synthetic calibration with a realistic spread: CNOT errors
    /// in `0.6%–2.5%`, durations in `250–550 ns`, single-qubit errors a tenth
    /// of the CNOT error, readout errors in `1%–4%`. Deterministic for a
    /// given seed.
    pub fn synthetic(coupling: &CouplingMap, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cx = HashMap::new();
        let mut dur = HashMap::new();
        for &(a, b) in coupling.edges() {
            cx.insert((a, b), rng.gen_range(0.006..0.025));
            dur.insert((a, b), rng.gen_range(250.0..550.0));
        }
        let sq_error = (0..coupling.num_qubits())
            .map(|_| rng.gen_range(0.0002..0.001))
            .collect();
        let readout_error = (0..coupling.num_qubits())
            .map(|_| rng.gen_range(0.01..0.04))
            .collect();
        Self {
            num_qubits: coupling.num_qubits(),
            cx_error: cx,
            cx_duration_ns: dur,
            sq_error,
            readout_error,
        }
    }

    /// The number of qubits covered by this calibration.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The CNOT error rate of an edge (direction-insensitive). Returns `None`
    /// for non-edges.
    pub fn cx_error(&self, a: usize, b: usize) -> Option<f64> {
        let key = (a.min(b), a.max(b));
        self.cx_error.get(&key).copied()
    }

    /// The CNOT duration of an edge in nanoseconds.
    pub fn cx_duration_ns(&self, a: usize, b: usize) -> Option<f64> {
        let key = (a.min(b), a.max(b));
        self.cx_duration_ns.get(&key).copied()
    }

    /// The single-qubit gate error of a qubit.
    pub fn sq_error(&self, q: usize) -> f64 {
        self.sq_error[q]
    }

    /// The readout (measurement) error of a qubit.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }
}

/// The α coefficients of the noise-aware distance (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseAwareAlphas {
    /// Weight of the CNOT error term.
    pub alpha_error: f64,
    /// Weight of the SWAP-duration term.
    pub alpha_time: f64,
    /// Weight of the plain hop-distance term.
    pub alpha_distance: f64,
}

impl Default for NoiseAwareAlphas {
    /// The paper's setting: `(0.5, 0, 0.5)`.
    fn default() -> Self {
        Self {
            alpha_error: 0.5,
            alpha_time: 0.0,
            alpha_distance: 0.5,
        }
    }
}

/// Builds the noise-aware distance matrix of Eq. 3.
///
/// Edge weights are `α1·ε̂ + α2·T̂ + α3·1` where `ε̂`/`T̂` are the edge error
/// and duration normalised to `[0, 1]` over the device, and all-pairs
/// distances are shortest weighted paths (Dijkstra from every source). The
/// hop view of the returned matrix remains the plain BFS hop count so the
/// routers can still reason about adjacency.
pub fn noise_aware_distance(
    coupling: &CouplingMap,
    calibration: &Calibration,
    alphas: NoiseAwareAlphas,
) -> DistanceMatrix {
    let n = coupling.num_qubits();
    let base = coupling.distance_matrix();

    let max_err = coupling
        .edges()
        .iter()
        .filter_map(|&(a, b)| calibration.cx_error(a, b))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let max_dur = coupling
        .edges()
        .iter()
        .filter_map(|&(a, b)| calibration.cx_duration_ns(a, b))
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    let edge_weight = |a: usize, b: usize| -> f64 {
        let err = calibration.cx_error(a, b).unwrap_or(max_err) / max_err;
        let dur = calibration.cx_duration_ns(a, b).unwrap_or(max_dur) / max_dur;
        alphas.alpha_error * err + alphas.alpha_time * dur + alphas.alpha_distance
    };

    // Dijkstra from every source over the weighted graph.
    let mut weights = vec![f64::INFINITY; n * n];
    for source in 0..n {
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        dist[source] = 0.0;
        for _ in 0..n {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for (q, &d) in dist.iter().enumerate() {
                if !done[q] && d < best {
                    best = d;
                    u = q;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            for &v in coupling.neighbors(u) {
                let cand = dist[u] + edge_weight(u, v);
                if cand < dist[v] {
                    dist[v] = cand;
                }
            }
        }
        for (q, &d) in dist.iter().enumerate() {
            weights[source * n + q] = d;
        }
    }

    let hops: Vec<usize> = (0..n * n).map(|idx| base.hops(idx / n, idx % n)).collect();
    DistanceMatrix::from_hops(n, hops).with_weights(weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_calibration_is_deterministic_and_in_range() {
        let map = CouplingMap::ibmq_montreal();
        let a = Calibration::synthetic(&map, 7);
        let b = Calibration::synthetic(&map, 7);
        assert_eq!(a, b);
        for &(x, y) in map.edges() {
            let e = a.cx_error(x, y).unwrap();
            assert!((0.006..0.025).contains(&e));
            let d = a.cx_duration_ns(x, y).unwrap();
            assert!((250.0..550.0).contains(&d));
        }
        for q in 0..27 {
            assert!((0.01..0.04).contains(&a.readout_error(q)));
        }
    }

    #[test]
    fn non_edge_has_no_calibration() {
        let map = CouplingMap::linear(4);
        let cal = Calibration::uniform(&map, 0.01, 0.02);
        assert!(cal.cx_error(0, 3).is_none());
        assert!(cal.cx_error(0, 1).is_some());
        assert_eq!(cal.cx_error(1, 0), cal.cx_error(0, 1));
    }

    #[test]
    fn noise_aware_distance_reduces_to_scaled_hops_for_uniform_errors() {
        let map = CouplingMap::linear(5);
        let cal = Calibration::uniform(&map, 0.01, 0.02);
        let d = noise_aware_distance(&map, &cal, NoiseAwareAlphas::default());
        // Uniform errors: every edge weight is 0.5*1 + 0.5 = 1.0, so the
        // weighted distance equals the hop count.
        for i in 0..5 {
            for j in 0..5 {
                assert!((d.weight(i, j) - d.hops(i, j) as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn noisy_edge_is_penalized() {
        // A triangle where the direct edge (0,2) is very noisy: the weighted
        // distance should still prefer it only if cheaper than the detour.
        let map = CouplingMap::new(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut cal = Calibration::uniform(&map, 0.01, 0.02);
        cal.cx_error.insert((0, 2), 0.10);
        let d = noise_aware_distance(&map, &cal, NoiseAwareAlphas::default());
        // Direct edge weight: 0.5*1.0 + 0.5 = 1.0 (it is the max error).
        // Detour: 2 * (0.5*0.1 + 0.5) = 1.1. Direct edge still wins but the
        // penalty is visible relative to a clean edge.
        assert!(d.weight(0, 2) > d.weight(0, 1));
        assert!(d.weight(0, 2) <= 1.0 + 1e-9);
    }

    #[test]
    fn alphas_default_matches_paper() {
        let a = NoiseAwareAlphas::default();
        assert_eq!(a.alpha_error, 0.5);
        assert_eq!(a.alpha_time, 0.0);
        assert_eq!(a.alpha_distance, 0.5);
    }
}
