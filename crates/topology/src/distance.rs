//! All-pairs distance matrices (hop count and noise-aware weights).

/// An all-pairs distance matrix over the physical qubits of a device.
///
/// Two views are provided: integer hop counts (the plain SABRE distance) and
/// floating-point weights (used by the noise-aware HA-style distance of
/// Eq. 3 in the paper, where an edge's weight mixes its error rate, duration
/// and unit distance).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    hops: Vec<usize>,
    weights: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix from BFS hop counts; weights default to the hop count.
    pub fn from_hops(n: usize, hops: Vec<usize>) -> Self {
        assert_eq!(hops.len(), n * n);
        let weights = hops
            .iter()
            .map(|&h| {
                if h == usize::MAX {
                    f64::INFINITY
                } else {
                    h as f64
                }
            })
            .collect();
        Self { n, hops, weights }
    }

    /// Builds a matrix from explicit floating-point weights, deriving the hop
    /// view by rounding (used only for display; routing reads `weight`).
    pub fn from_weights(n: usize, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n * n);
        let hops = weights
            .iter()
            .map(|&w| {
                if w.is_finite() {
                    w.round() as usize
                } else {
                    usize::MAX
                }
            })
            .collect();
        Self { n, hops, weights }
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hop-count distance between two physical qubits
    /// (`usize::MAX` when unreachable).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.hops[a * self.n + b]
    }

    /// Weighted distance between two physical qubits.
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        self.weights[a * self.n + b]
    }

    /// Replaces the weighted view while keeping the hop view.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.n * self.n);
        self.weights = weights;
        self
    }

    /// The largest finite hop count in the matrix.
    pub fn max_hops(&self) -> usize {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_and_weight_views_agree_by_default() {
        let d = DistanceMatrix::from_hops(2, vec![0, 3, 3, 0]);
        assert_eq!(d.hops(0, 1), 3);
        assert!((d.weight(0, 1) - 3.0).abs() < 1e-12);
        assert_eq!(d.max_hops(), 3);
    }

    #[test]
    fn unreachable_is_infinite_weight() {
        let d = DistanceMatrix::from_hops(2, vec![0, usize::MAX, usize::MAX, 0]);
        assert!(d.weight(0, 1).is_infinite());
    }

    #[test]
    fn weights_can_be_overridden() {
        let d =
            DistanceMatrix::from_hops(2, vec![0, 1, 1, 0]).with_weights(vec![0.0, 2.5, 2.5, 0.0]);
        assert_eq!(d.hops(0, 1), 1);
        assert!((d.weight(0, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rounds_for_hops() {
        let d = DistanceMatrix::from_weights(2, vec![0.0, 1.9, 1.9, 0.0]);
        assert_eq!(d.hops(0, 1), 2);
    }
}
