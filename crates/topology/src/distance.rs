//! All-pairs distance matrices (hop count and noise-aware weights).

/// An all-pairs distance matrix over the physical qubits of a device.
///
/// Two views are provided: integer hop counts (the plain SABRE distance) and
/// floating-point weights (used by the noise-aware HA-style distance of
/// Eq. 3 in the paper, where an edge's weight mixes its error rate, duration
/// and unit distance).
/// Sentinel for "unreachable" in the compact hop storage; surfaced to
/// callers as `usize::MAX` so the public API is unchanged.
const UNREACHABLE: u32 = u32::MAX;

#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    // Hop counts are stored as u32 — at 433 qubits (IBM Osprey) the n² hop
    // table drops from 1.5 MB to 750 KB and halves the cache traffic of the
    // routing hot loop. Device diameters are tiny, so u32 never saturates.
    hops: Vec<u32>,
    weights: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix from BFS hop counts; weights default to the hop count.
    pub fn from_hops(n: usize, hops: Vec<usize>) -> Self {
        assert_eq!(hops.len(), n * n);
        let weights = hops
            .iter()
            .map(|&h| {
                if h == usize::MAX {
                    f64::INFINITY
                } else {
                    h as f64
                }
            })
            .collect();
        let hops = hops.into_iter().map(Self::compact_hop).collect();
        Self { n, hops, weights }
    }

    /// Builds a matrix from explicit floating-point weights, deriving the hop
    /// view by rounding (used only for display; routing reads `weight`).
    pub fn from_weights(n: usize, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n * n);
        let hops = weights
            .iter()
            .map(|&w| {
                if w.is_finite() {
                    Self::compact_hop(w.round() as usize)
                } else {
                    UNREACHABLE
                }
            })
            .collect();
        Self { n, hops, weights }
    }

    fn compact_hop(h: usize) -> u32 {
        if h == usize::MAX {
            UNREACHABLE
        } else {
            u32::try_from(h).expect("hop count exceeds u32 range")
        }
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hop-count distance between two physical qubits
    /// (`usize::MAX` when unreachable).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let h = self.hops[a * self.n + b];
        if h == UNREACHABLE {
            usize::MAX
        } else {
            h as usize
        }
    }

    /// Weighted distance between two physical qubits.
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        self.weights[a * self.n + b]
    }

    /// Replaces the weighted view while keeping the hop view.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.n * self.n);
        self.weights = weights;
        self
    }

    /// The largest finite hop count in the matrix.
    pub fn max_hops(&self) -> usize {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != UNREACHABLE)
            .max()
            .unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_and_weight_views_agree_by_default() {
        let d = DistanceMatrix::from_hops(2, vec![0, 3, 3, 0]);
        assert_eq!(d.hops(0, 1), 3);
        assert!((d.weight(0, 1) - 3.0).abs() < 1e-12);
        assert_eq!(d.max_hops(), 3);
    }

    #[test]
    fn unreachable_is_infinite_weight() {
        let d = DistanceMatrix::from_hops(2, vec![0, usize::MAX, usize::MAX, 0]);
        assert!(d.weight(0, 1).is_infinite());
    }

    #[test]
    fn weights_can_be_overridden() {
        let d =
            DistanceMatrix::from_hops(2, vec![0, 1, 1, 0]).with_weights(vec![0.0, 2.5, 2.5, 0.0]);
        assert_eq!(d.hops(0, 1), 1);
        assert!((d.weight(0, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rounds_for_hops() {
        let d = DistanceMatrix::from_weights(2, vec![0.0, 1.9, 1.9, 0.0]);
        assert_eq!(d.hops(0, 1), 2);
    }
}
