//! Hardware-topology models for the NASSC reproduction.
//!
//! Provides the device-side abstractions the routers consume:
//!
//! * [`CouplingMap`] — qubit connectivity graphs, including the paper's three
//!   evaluation topologies (`ibmq_montreal` heavy-hex, linear chain, 2-D
//!   grid) plus fully connected devices,
//! * [`DistanceMatrix`] — all-pairs hop counts and weighted distances,
//! * [`Calibration`] and [`noise_aware_distance`] — synthetic calibration
//!   data and the noise-aware distance of Eq. 3 (the HA variants),
//! * [`Layout`] — the logical↔physical qubit mapping mutated by routing.
//!
//! # Example
//!
//! ```
//! use nassc_topology::{CouplingMap, Layout};
//!
//! let device = CouplingMap::ibmq_montreal();
//! let distances = device.distance_matrix();
//! assert_eq!(distances.hops(0, 1), 1);
//!
//! let mut layout = Layout::trivial(device.num_qubits());
//! layout.swap_physical(0, 1);
//! assert_eq!(layout.logical_of(0), 1);
//! ```

pub mod calibration;
pub mod coupling;
pub mod distance;
pub mod layout;

pub use calibration::{noise_aware_distance, Calibration, NoiseAwareAlphas};
pub use coupling::CouplingMap;
pub use distance::DistanceMatrix;
pub use layout::Layout;
