//! Hardware coupling maps.

use crate::distance::DistanceMatrix;

/// The qubit-connectivity graph of a quantum device.
///
/// Connectivity is treated as undirected (the IBM basis supports CNOTs in
/// both directions after adding Hadamards, and the paper's cost model counts
/// CNOTs independent of direction).
///
/// # Example
///
/// ```
/// use nassc_topology::CouplingMap;
///
/// let line = CouplingMap::linear(4);
/// assert!(line.are_connected(1, 2));
/// assert!(!line.are_connected(0, 3));
/// assert_eq!(line.distance_matrix().hops(0, 3), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Creates a coupling map from an undirected edge list.
    ///
    /// Edges are normalised to `(min, max)` and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics when an edge references a qubit `>= num_qubits` or is a
    /// self-loop.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut normalized: Vec<(usize, usize)> = Vec::new();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edge ({a},{b}) is not allowed");
            let e = (a.min(b), a.max(b));
            if !normalized.contains(&e) {
                normalized.push(e);
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for neighbors in &mut adjacency {
            neighbors.sort_unstable();
        }
        Self {
            num_qubits,
            edges: normalized,
            adjacency,
        }
    }

    /// A 1-D nearest-neighbour chain of `n` qubits.
    pub fn linear(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::new(n, &edges)
    }

    /// A `rows × cols` 2-D grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Self::new(rows * cols, &edges)
    }

    /// A fully connected device of `n` qubits.
    pub fn fully_connected(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::new(n, &edges)
    }

    /// The 27-qubit heavy-hex coupling map of `ibmq_montreal` (IBM Falcon),
    /// as used throughout the paper's evaluation.
    pub fn ibmq_montreal() -> Self {
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Self::new(27, &edges)
    }

    /// A heavy-hex lattice of code distance `d` (odd, `>= 3`), the topology
    /// family of IBM's Falcon/Eagle/Osprey processors.
    ///
    /// The lattice is `d` rows of qubits (row 0 omits its rightmost column,
    /// row `d-1` its leftmost) joined by `d-1` gaps of rung qubits; rungs sit
    /// on columns `≡ 0 (mod 4)` in even gaps and `≡ 2 (mod 4)` in odd gaps,
    /// each connecting the same-column qubits of the two adjacent rows.
    /// `heavy_hex(7)` reproduces the 127-qubit / 144-edge Eagle graph
    /// (`ibm_washington`); `heavy_hex(13)` the 433-qubit Osprey graph.
    ///
    /// # Panics
    ///
    /// Panics when `d` is even or `< 3`.
    pub fn heavy_hex(d: usize) -> Self {
        assert!(
            d >= 3 && d % 2 == 1,
            "heavy-hex distance must be odd and >= 3, got {d}"
        );
        let width = 2 * d + 1;
        let row_cols = |r: usize| {
            if r == 0 {
                0..width - 1
            } else if r == d - 1 {
                1..width
            } else {
                0..width
            }
        };
        let mut index = 0usize;
        let mut row_at = vec![vec![usize::MAX; width]; d];
        let mut edges = Vec::new();
        // Per-gap rung qubits as (column, qubit index), interleaved with the
        // rows so numbering runs row 0, gap 0, row 1, gap 1, ... row d-1.
        let mut rungs: Vec<Vec<(usize, usize)>> = Vec::new();
        for (r, row) in row_at.iter_mut().enumerate() {
            let mut prev = None;
            for c in row_cols(r) {
                row[c] = index;
                if let Some(p) = prev {
                    edges.push((p, index));
                }
                prev = Some(index);
                index += 1;
            }
            if r + 1 < d {
                let mut gap = Vec::new();
                let mut c = if r % 2 == 0 { 0 } else { 2 };
                while c < width {
                    gap.push((c, index));
                    index += 1;
                    c += 4;
                }
                rungs.push(gap);
            }
        }
        for (g, gap) in rungs.iter().enumerate() {
            for &(c, q) in gap {
                edges.push((row_at[g][c], q));
                edges.push((row_at[g + 1][c], q));
            }
        }
        Self::new(index, &edges)
    }

    /// The number of qubits (nodes).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The undirected edge list, each edge as `(min, max)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The neighbours of a physical qubit.
    pub fn neighbors(&self, qubit: usize) -> &[usize] {
        &self.adjacency[qubit]
    }

    /// The degree of a physical qubit.
    pub fn degree(&self, qubit: usize) -> usize {
        self.adjacency[qubit].len()
    }

    /// Whether two physical qubits share an edge.
    pub fn are_connected(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let d = self.distance_matrix();
        (0..self.num_qubits).all(|q| d.hops(0, q) != usize::MAX)
    }

    /// The all-pairs shortest-path (hop-count) distance matrix via BFS.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        let n = self.num_qubits;
        let mut hops = vec![usize::MAX; n * n];
        for source in 0..n {
            let mut queue = std::collections::VecDeque::new();
            hops[source * n + source] = 0;
            queue.push_back(source);
            while let Some(u) = queue.pop_front() {
                let du = hops[source * n + u];
                for &v in self.neighbors(u) {
                    if hops[source * n + v] == usize::MAX {
                        hops[source * n + v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        DistanceMatrix::from_hops(n, hops)
    }

    /// The graph diameter (longest shortest path). Returns `None` when the
    /// graph is disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.num_qubits == 0 {
            return None;
        }
        let d = self.distance_matrix();
        let mut max = 0;
        for i in 0..self.num_qubits {
            for j in 0..self.num_qubits {
                let h = d.hops(i, j);
                if h == usize::MAX {
                    return None;
                }
                max = max.max(h);
            }
        }
        Some(max)
    }

    /// The shortest path between two physical qubits (inclusive of both
    /// endpoints), or `None` when unreachable.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let n = self.num_qubits;
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            if u == to {
                break;
            }
            for &v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if !seen[to] {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_structure() {
        let line = CouplingMap::linear(5);
        assert_eq!(line.num_qubits(), 5);
        assert_eq!(line.edges().len(), 4);
        assert_eq!(line.degree(0), 1);
        assert_eq!(line.degree(2), 2);
        assert_eq!(line.diameter(), Some(4));
    }

    #[test]
    fn grid_structure() {
        let grid = CouplingMap::grid(5, 5);
        assert_eq!(grid.num_qubits(), 25);
        assert_eq!(grid.edges().len(), 2 * 5 * 4);
        assert_eq!(grid.diameter(), Some(8));
        assert!(grid.are_connected(0, 1));
        assert!(grid.are_connected(0, 5));
        assert!(!grid.are_connected(0, 6));
    }

    #[test]
    fn fully_connected_has_diameter_one() {
        let full = CouplingMap::fully_connected(6);
        assert_eq!(full.edges().len(), 15);
        assert_eq!(full.diameter(), Some(1));
    }

    #[test]
    fn montreal_is_the_published_heavy_hex() {
        let m = CouplingMap::ibmq_montreal();
        assert_eq!(m.num_qubits(), 27);
        assert_eq!(m.edges().len(), 28);
        assert!(m.is_connected());
        // Heavy-hex degree profile: no qubit exceeds degree 3.
        assert!((0..27).all(|q| m.degree(q) <= 3));
        assert!(m.are_connected(0, 1));
        assert!(m.are_connected(25, 26));
        assert!(!m.are_connected(0, 26));
    }

    #[test]
    fn heavy_hex_reproduces_eagle_and_osprey() {
        // d=7 is the 127-qubit Eagle graph (ibm_washington): 144 edges.
        let eagle = CouplingMap::heavy_hex(7);
        assert_eq!(eagle.num_qubits(), 127);
        assert_eq!(eagle.edges().len(), 144);
        // d=13 is the 433-qubit Osprey graph.
        let osprey = CouplingMap::heavy_hex(13);
        assert_eq!(osprey.num_qubits(), 433);
        assert_eq!(osprey.edges().len(), 504);
    }

    #[test]
    fn heavy_hex_shares_the_montreal_invariants() {
        // Same checks the published Montreal heavy-hex test pins: connected,
        // degree <= 3, symmetric distances. Rung qubits have degree exactly 2.
        for d in [3usize, 5, 7] {
            let m = CouplingMap::heavy_hex(d);
            assert!(m.is_connected(), "heavy_hex({d}) must be connected");
            assert!(
                (0..m.num_qubits()).all(|q| m.degree(q) <= 3),
                "heavy_hex({d}) exceeds degree 3"
            );
            // Handshake: every edge counted twice across degrees.
            let total: usize = (0..m.num_qubits()).map(|q| m.degree(q)).sum();
            assert_eq!(total, 2 * m.edges().len());
            let dist = m.distance_matrix();
            for i in 0..m.num_qubits() {
                assert_eq!(dist.hops(i, i), 0);
                for j in 0..m.num_qubits() {
                    assert_eq!(dist.hops(i, j), dist.hops(j, i));
                }
            }
        }
        // The smallest member of the family.
        assert_eq!(CouplingMap::heavy_hex(3).num_qubits(), 23);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn heavy_hex_rejects_even_distance() {
        let _ = CouplingMap::heavy_hex(4);
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        let m = CouplingMap::ibmq_montreal();
        let d = m.distance_matrix();
        for i in 0..27 {
            assert_eq!(d.hops(i, i), 0);
            for j in 0..27 {
                assert_eq!(d.hops(i, j), d.hops(j, i));
                for k in 0..27 {
                    assert!(d.hops(i, j) <= d.hops(i, k) + d.hops(k, j));
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let m = CouplingMap::grid(3, 3);
        let p = m.shortest_path(0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), m.distance_matrix().hops(0, 8) + 1);
        for w in p.windows(2) {
            assert!(m.are_connected(w[0], w[1]));
        }
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let m = CouplingMap::new(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(m.edges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = CouplingMap::new(3, &[(1, 1)]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let m = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(m.diameter(), None);
        assert_eq!(m.shortest_path(0, 3), None);
    }
}
