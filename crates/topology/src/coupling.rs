//! Hardware coupling maps.

use crate::distance::DistanceMatrix;

/// The qubit-connectivity graph of a quantum device.
///
/// Connectivity is treated as undirected (the IBM basis supports CNOTs in
/// both directions after adding Hadamards, and the paper's cost model counts
/// CNOTs independent of direction).
///
/// # Example
///
/// ```
/// use nassc_topology::CouplingMap;
///
/// let line = CouplingMap::linear(4);
/// assert!(line.are_connected(1, 2));
/// assert!(!line.are_connected(0, 3));
/// assert_eq!(line.distance_matrix().hops(0, 3), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Creates a coupling map from an undirected edge list.
    ///
    /// Edges are normalised to `(min, max)` and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics when an edge references a qubit `>= num_qubits` or is a
    /// self-loop.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut normalized: Vec<(usize, usize)> = Vec::new();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edge ({a},{b}) is not allowed");
            let e = (a.min(b), a.max(b));
            if !normalized.contains(&e) {
                normalized.push(e);
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for neighbors in &mut adjacency {
            neighbors.sort_unstable();
        }
        Self {
            num_qubits,
            edges: normalized,
            adjacency,
        }
    }

    /// A 1-D nearest-neighbour chain of `n` qubits.
    pub fn linear(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::new(n, &edges)
    }

    /// A `rows × cols` 2-D grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Self::new(rows * cols, &edges)
    }

    /// A fully connected device of `n` qubits.
    pub fn fully_connected(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::new(n, &edges)
    }

    /// The 27-qubit heavy-hex coupling map of `ibmq_montreal` (IBM Falcon),
    /// as used throughout the paper's evaluation.
    pub fn ibmq_montreal() -> Self {
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Self::new(27, &edges)
    }

    /// The number of qubits (nodes).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The undirected edge list, each edge as `(min, max)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The neighbours of a physical qubit.
    pub fn neighbors(&self, qubit: usize) -> &[usize] {
        &self.adjacency[qubit]
    }

    /// The degree of a physical qubit.
    pub fn degree(&self, qubit: usize) -> usize {
        self.adjacency[qubit].len()
    }

    /// Whether two physical qubits share an edge.
    pub fn are_connected(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let d = self.distance_matrix();
        (0..self.num_qubits).all(|q| d.hops(0, q) != usize::MAX)
    }

    /// The all-pairs shortest-path (hop-count) distance matrix via BFS.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        let n = self.num_qubits;
        let mut hops = vec![usize::MAX; n * n];
        for source in 0..n {
            let mut queue = std::collections::VecDeque::new();
            hops[source * n + source] = 0;
            queue.push_back(source);
            while let Some(u) = queue.pop_front() {
                let du = hops[source * n + u];
                for &v in self.neighbors(u) {
                    if hops[source * n + v] == usize::MAX {
                        hops[source * n + v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        DistanceMatrix::from_hops(n, hops)
    }

    /// The graph diameter (longest shortest path). Returns `None` when the
    /// graph is disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.num_qubits == 0 {
            return None;
        }
        let d = self.distance_matrix();
        let mut max = 0;
        for i in 0..self.num_qubits {
            for j in 0..self.num_qubits {
                let h = d.hops(i, j);
                if h == usize::MAX {
                    return None;
                }
                max = max.max(h);
            }
        }
        Some(max)
    }

    /// The shortest path between two physical qubits (inclusive of both
    /// endpoints), or `None` when unreachable.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let n = self.num_qubits;
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            if u == to {
                break;
            }
            for &v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if !seen[to] {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_structure() {
        let line = CouplingMap::linear(5);
        assert_eq!(line.num_qubits(), 5);
        assert_eq!(line.edges().len(), 4);
        assert_eq!(line.degree(0), 1);
        assert_eq!(line.degree(2), 2);
        assert_eq!(line.diameter(), Some(4));
    }

    #[test]
    fn grid_structure() {
        let grid = CouplingMap::grid(5, 5);
        assert_eq!(grid.num_qubits(), 25);
        assert_eq!(grid.edges().len(), 2 * 5 * 4);
        assert_eq!(grid.diameter(), Some(8));
        assert!(grid.are_connected(0, 1));
        assert!(grid.are_connected(0, 5));
        assert!(!grid.are_connected(0, 6));
    }

    #[test]
    fn fully_connected_has_diameter_one() {
        let full = CouplingMap::fully_connected(6);
        assert_eq!(full.edges().len(), 15);
        assert_eq!(full.diameter(), Some(1));
    }

    #[test]
    fn montreal_is_the_published_heavy_hex() {
        let m = CouplingMap::ibmq_montreal();
        assert_eq!(m.num_qubits(), 27);
        assert_eq!(m.edges().len(), 28);
        assert!(m.is_connected());
        // Heavy-hex degree profile: no qubit exceeds degree 3.
        assert!((0..27).all(|q| m.degree(q) <= 3));
        assert!(m.are_connected(0, 1));
        assert!(m.are_connected(25, 26));
        assert!(!m.are_connected(0, 26));
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        let m = CouplingMap::ibmq_montreal();
        let d = m.distance_matrix();
        for i in 0..27 {
            assert_eq!(d.hops(i, i), 0);
            for j in 0..27 {
                assert_eq!(d.hops(i, j), d.hops(j, i));
                for k in 0..27 {
                    assert!(d.hops(i, j) <= d.hops(i, k) + d.hops(k, j));
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let m = CouplingMap::grid(3, 3);
        let p = m.shortest_path(0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), m.distance_matrix().hops(0, 8) + 1);
        for w in p.windows(2) {
            assert!(m.are_connected(w[0], w[1]));
        }
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let m = CouplingMap::new(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(m.edges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = CouplingMap::new(3, &[(1, 1)]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let m = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(m.diameter(), None);
        assert_eq!(m.shortest_path(0, 3), None);
    }
}
