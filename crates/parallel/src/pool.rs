//! The process-wide persistent worker pool behind [`ThreadPool`]'s parallel
//! dispatch.
//!
//! Earlier revisions spawned OS threads inside every `map`/`map_range` call
//! via [`std::thread::scope`]. That is correct but pays thread creation on
//! every call — ruinous for the routing engine, which fans out candidate
//! scoring on every routing step, and wrong for a long-lived transpilation
//! service, where worker warm-up should be paid once per process, not once
//! per request. This module replaces it with **long-lived parked workers**
//! fed by a queue of published batches:
//!
//! * Workers are spawned lazily (up to the largest helper count any batch has
//!   ever asked for, capped at [`MAX_POOL_WORKERS`]) and then live for the
//!   rest of the process, parked on a condvar while idle.
//! * A [`ThreadPool::map_range`] call publishes one `Batch` — a shared
//!   index counter over `0..n` plus the job closure — wakes the workers, and
//!   **participates in draining its own batch**. Caller participation is
//!   what makes nested dispatch (batch jobs running layout trials running
//!   in-pass scoring) deadlock-free: even if every worker is busy elsewhere,
//!   the publishing thread drains the batch alone and the call completes.
//! * A handle's `threads` budget caps how many workers may join its batch
//!   (`threads - 1` helpers + the caller), so [`ThreadPool::split_budget`]
//!   arithmetic keeps its meaning: the configured budget bounds the
//!   parallelism of each dispatch, while the *pool* is shared process-wide.
//!
//! Results are written into per-index slots by the caller-provided closure,
//! so output order — and therefore every downstream aggregate — never
//! depends on scheduling, exactly as with the scoped implementation.
//!
//! # Safety
//!
//! This is the one module in the workspace that needs `unsafe`: a persistent
//! worker cannot borrow from a caller's stack through safe APIs (that is
//! precisely what [`std::thread::scope`] exists for, and scoped threads are
//! what this module removes). The single unsafe operation is erasing the
//! lifetime of the batch closure reference in `run_batch`. It is sound
//! because `run_batch` does not return until every index of the batch has
//! finished executing (`completed == n`, observed under the batch's
//! completion lock, which every increment happens-before), and workers never
//! dereference the closure after drawing an index `>= n`. The caller's stack
//! frame — and everything the closure borrows — therefore strictly outlives
//! every use of the erased reference. `Batch` itself is reference-counted,
//! so a late-waking worker that still holds the batch only ever touches its
//! atomics, never the closure.
//!
//! [`ThreadPool`]: crate::ThreadPool
//! [`ThreadPool::map_range`]: crate::ThreadPool::map_range
//! [`ThreadPool::split_budget`]: crate::ThreadPool::split_budget

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::budget::Cancelled;

/// Hard cap on the number of persistent workers the process will ever spawn,
/// however large the requesting [`ThreadPool`] budgets are. Batches asking
/// for more helpers than exist still complete — the publishing caller always
/// participates — they just run with fewer helpers.
///
/// [`ThreadPool`]: crate::ThreadPool
pub const MAX_POOL_WORKERS: usize = 256;

/// A snapshot of the persistent pool's lifetime counters, for observability
/// (the `Transpiler` session API surfaces this next to its cache counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatus {
    /// Persistent workers spawned so far (they are never torn down).
    pub workers: usize,
    /// Parallel batches completed since process start.
    pub batches_completed: u64,
    /// Total items executed across all completed batches.
    pub items_completed: u64,
    /// Jobs that panicked (and were contained by the pool). Cooperative
    /// budget cancellations ([`Cancelled`] unwinds) are not counted — they
    /// are deadline aborts, not faults.
    ///
    /// [`Cancelled`]: crate::budget::Cancelled
    pub jobs_panicked: u64,
}

/// A snapshot of the pool's counters. Workers spawn lazily, so a process
/// that never dispatched a parallel batch reports zero workers.
pub fn worker_pool_status() -> PoolStatus {
    let shared = shared();
    PoolStatus {
        workers: shared.workers.load(Ordering::Relaxed),
        batches_completed: shared.batches.load(Ordering::Relaxed),
        items_completed: shared.items.load(Ordering::Relaxed),
        jobs_panicked: shared.jobs_panicked.load(Ordering::Relaxed),
    }
}

/// The job closure with its caller-stack lifetime erased. Soundness is
/// argued at [`run_batch`]: the erasing caller outlives every dereference.
#[derive(Clone, Copy)]
struct Task(&'static (dyn Fn(usize) + Sync));

/// Completion state of a batch, updated once per finished index.
struct DoneState {
    completed: usize,
    /// First panic observed: `(job index, payload)`. Lowest-index wins only
    /// among jobs that actually panicked; "first" here is completion order,
    /// which is fine — callers surface one representative fault.
    panic: Option<(usize, Box<dyn std::any::Any + Send>)>,
}

/// One published unit of parallel work: apply the task to every index in
/// `0..n`, with at most `seats` workers joining the publishing caller.
struct Batch {
    task: Task,
    n: usize,
    /// Next index to draw. Workers and the caller race on this counter;
    /// whoever draws an index executes it, so the partition is dynamic but
    /// every index runs exactly once.
    next: AtomicUsize,
    /// Remaining worker seats (the caller's own seat is not counted).
    seats: AtomicUsize,
    done: Mutex<DoneState>,
    all_done: Condvar,
}

impl Batch {
    /// Claims a worker seat, returning `false` when the batch is exhausted
    /// or its seat budget is spent. A seat claimed on a batch that runs out
    /// of indices immediately afterwards is harmless: the worker's drain
    /// loop exits on its first draw.
    fn try_claim_seat(&self) -> bool {
        if self.next.load(Ordering::Relaxed) >= self.n {
            return false;
        }
        self.seats
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |seats| {
                seats.checked_sub(1)
            })
            .is_ok()
    }

    /// Draws and executes indices until the batch is exhausted. Panics in
    /// the task are caught and stashed (first one wins) so persistent
    /// workers survive panicking jobs; the publishing caller receives the
    /// payload after completion. Genuine panics — not cooperative
    /// [`Cancelled`] budget aborts — also bump the pool-wide
    /// `jobs_panicked` counter.
    fn drain(&self, shared: &Shared) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.n {
                break;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.task.0)(index)));
            if let Err(payload) = &outcome {
                if !Cancelled::from_payload(payload.as_ref()) {
                    shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            let mut done = self.done.lock().expect("batch completion state poisoned");
            if let Err(payload) = outcome {
                done.panic.get_or_insert((index, payload));
            }
            done.completed += 1;
            if done.completed == self.n {
                self.all_done.notify_all();
            }
        }
    }

    /// Blocks until every index has completed, handing back the first panic
    /// `(index, payload)`, if any.
    fn wait_done(&self) -> Option<(usize, Box<dyn std::any::Any + Send>)> {
        let mut done = self.done.lock().expect("batch completion state poisoned");
        while done.completed < self.n {
            done = self
                .all_done
                .wait(done)
                .expect("batch completion state poisoned");
        }
        done.panic.take()
    }
}

/// State shared by every persistent worker and every publishing caller.
struct Shared {
    /// Published batches that still have open seats. Kept tiny: a batch is
    /// pushed by its caller, skipped by workers once exhausted, and removed
    /// by the caller before `run_batch` returns.
    queue: Mutex<Vec<Arc<Batch>>>,
    work_available: Condvar,
    workers: AtomicUsize,
    batches: AtomicU64,
    items: AtomicU64,
    jobs_panicked: AtomicU64,
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
            workers: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            items: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
        })
    })
}

/// Grows the pool until at least `want` workers exist (capped at
/// [`MAX_POOL_WORKERS`]). Workers are detached: they park on the shared
/// condvar between batches and die with the process.
fn ensure_workers(shared: &'static Arc<Shared>, want: usize) {
    let want = want.min(MAX_POOL_WORKERS);
    loop {
        let current = shared.workers.load(Ordering::Relaxed);
        if current >= want {
            return;
        }
        if shared
            .workers
            .compare_exchange(current, current + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let result = std::thread::Builder::new()
                .name(format!("nassc-worker-{current}"))
                .spawn(move || worker_main(shared));
            if result.is_err() {
                // Spawn failure (resource exhaustion) is not fatal: the
                // publishing caller always participates, so batches still
                // complete. Give the seat back and stop growing.
                shared.workers.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// A persistent worker: park until a batch with an open seat appears, drain
/// it, repeat forever.
fn worker_main(shared: &Arc<Shared>) {
    let mut queue = shared.queue.lock().expect("pool queue poisoned");
    loop {
        let claimed = queue.iter().find(|batch| batch.try_claim_seat()).cloned();
        match claimed {
            Some(batch) => {
                drop(queue);
                batch.drain(shared);
                queue = shared.queue.lock().expect("pool queue poisoned");
            }
            None => {
                queue = shared
                    .work_available
                    .wait(queue)
                    .expect("pool queue poisoned");
            }
        }
    }
}

/// Runs `task` over every index in `0..n` with up to `threads - 1` pool
/// workers helping the calling thread. Blocks until every index has
/// completed; returns the first job panic `(index, payload)` — the caller
/// decides whether to re-raise ([`ThreadPool::map_range`]) or convert it to
/// a typed error ([`ThreadPool::try_map_range`]).
///
/// Expects `threads >= 2` and `n >= 2` — serial fast paths belong to the
/// caller ([`ThreadPool::map_range`]).
///
/// [`ThreadPool::map_range`]: crate::ThreadPool::map_range
/// [`ThreadPool::try_map_range`]: crate::ThreadPool::try_map_range
pub(crate) fn run_batch(
    threads: usize,
    n: usize,
    task: &(dyn Fn(usize) + Sync),
) -> Option<(usize, Box<dyn std::any::Any + Send>)> {
    debug_assert!(threads >= 2 && n >= 2, "serial batches bypass the pool");
    let mut span = nassc_trace::span!("pool_batch");
    span.arg_u64("threads", threads as u64);
    span.arg_u64("items", n as u64);
    // SAFETY: sound because this function does not return (and so the
    // closure and everything it borrows stays alive) until `wait_done`
    // observes `completed == n` — which happens-after the last task call
    // returned, under the completion lock — and because no worker
    // dereferences the closure after drawing an index `>= n`. See the
    // module-level safety discussion.
    #[allow(clippy::missing_transmute_annotations)]
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let helpers = threads.min(n) - 1;
    let batch = Arc::new(Batch {
        task: Task(task),
        n,
        next: AtomicUsize::new(0),
        seats: AtomicUsize::new(helpers),
        done: Mutex::new(DoneState {
            completed: 0,
            panic: None,
        }),
        all_done: Condvar::new(),
    });

    let shared = shared();
    if helpers > 0 {
        ensure_workers(shared, helpers);
        shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .push(Arc::clone(&batch));
        shared.work_available.notify_all();
    }

    // The caller is always a participant: progress never depends on a pool
    // worker being free, which is what makes nested dispatch safe.
    batch.drain(shared);
    let panic = batch.wait_done();

    if helpers > 0 {
        let mut queue = shared.queue.lock().expect("pool queue poisoned");
        if let Some(position) = queue.iter().position(|b| Arc::ptr_eq(b, &batch)) {
            queue.remove(position);
        }
    }
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared.items.fetch_add(n as u64, Ordering::Relaxed);

    panic
}
