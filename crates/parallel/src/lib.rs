//! A persistent thread pool for embarrassingly parallel batches, with no
//! dependencies outside the workspace (`nassc-trace` instruments batch
//! dispatch; it is itself dependency-free).
//!
//! The build environment has no access to crates.io (mirroring
//! `crates/compat/`), so instead of `rayon` this crate provides the small
//! slice of it the NASSC pipelines need: an order-preserving
//! [`ThreadPool::map`]. Workers draw job indices from an atomic counter and
//! write results back into their original slot, so the output order — and
//! therefore every downstream aggregate — is identical to a serial
//! `Vec::into_iter().map(f).collect()`, regardless of how the OS schedules
//! the workers.
//!
//! Dispatch runs on a **process-wide persistent worker pool** (see
//! [`pool`]): worker threads are spawned once, parked between calls, and
//! shared by every [`ThreadPool`] handle. A handle is therefore just a
//! concurrency *budget* — a `Copy` value bounding how many workers may join
//! each of its dispatches — which is what lets a long-lived `Transpiler`
//! session pay thread start-up once per process instead of once per call.
//! The publishing caller always participates in its own batch, so nested
//! dispatch (a batch job running layout trials running in-pass SWAP scoring)
//! can never deadlock, and jobs may still borrow from the caller's stack:
//! a dispatch blocks until its whole batch has completed.
//!
//! Worker count resolution (see [`default_parallelism`]): the
//! `NASSC_THREADS` environment variable when set to a positive integer,
//! otherwise [`std::thread::available_parallelism`]. `NASSC_THREADS=1` forces
//! fully serial execution on the caller's thread, which is useful for
//! benchmarking the parallel speedup and for bisecting scheduling-dependent
//! bugs (there should be none: outputs never depend on the worker count).
//!
//! # Example
//!
//! ```
//! use nassc_parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

pub mod budget;
pub mod pool;

pub use budget::{Budget, Cancelled};
pub use pool::{worker_pool_status, PoolStatus, MAX_POOL_WORKERS};

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Environment variable overriding the worker count picked by
/// [`default_parallelism`].
pub const THREADS_ENV_VAR: &str = "NASSC_THREADS";

/// Parses a `NASSC_THREADS`-style override: `Some(n)` for a positive integer,
/// `None` for anything else (absent, empty, zero, garbage).
fn parse_thread_override(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The worker count used by [`ThreadPool::with_default_parallelism`]:
/// `NASSC_THREADS` when set to a positive integer, otherwise the number of
/// hardware threads (at least 1).
///
/// A set-but-unusable override (empty, zero, garbage) is ignored **with a
/// warning on stderr** — a typoed `NASSC_THREADS=1` would otherwise
/// silently benchmark "serial" timings on every core.
pub fn default_parallelism() -> usize {
    let env = std::env::var(THREADS_ENV_VAR).ok();
    match env.as_deref() {
        Some(value) => parse_thread_override(Some(value)).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring invalid {THREADS_ENV_VAR}={value:?}; \
                 using all hardware threads"
            );
            hardware_parallelism()
        }),
        None => hardware_parallelism(),
    }
}

/// [`std::thread::available_parallelism`], defaulting to 1 when unknown.
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A contained job panic, reported as a value by [`ThreadPool::try_map`] /
/// [`ThreadPool::try_map_range`] instead of being re-raised into the caller.
///
/// Carries the panicking job's index and a best-effort rendering of the
/// panic payload (`&str` / `String` payloads verbatim, anything else a
/// placeholder). The original payload is not kept: a typed payload that is
/// not `&str`/`String` is either a [`Cancelled`] budget abort — which
/// callers handle *before* reaching `JobPanic` via
/// [`JobPanic::is_cancelled`] — or a bug to be reported, not rethrown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the panicking job within its batch.
    pub index: usize,
    /// Best-effort panic message.
    pub message: String,
    cancelled: bool,
}

impl JobPanic {
    fn from_payload(index: usize, payload: Box<dyn Any + Send>) -> Self {
        let cancelled = Cancelled::from_payload(payload.as_ref());
        let message = if cancelled {
            Cancelled.to_string()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Self {
            index,
            message,
            cancelled,
        }
    }

    /// Whether this "panic" was a cooperative [`Budget`] cancellation
    /// rather than a genuine fault. Deadline-aware callers map this to
    /// their own timeout error instead of an internal one.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// An order-preserving concurrency budget over the persistent worker pool.
///
/// A `ThreadPool` value is a cheap `Copy` handle: it owns no threads itself.
/// Each [`map`](Self::map)/[`map_range`](Self::map_range) call publishes one
/// batch to the process-wide [`pool`] and lets at most `threads - 1`
/// persistent workers join the calling thread in draining it. There is no
/// per-handle state to manage and nothing to shut down; workers are spawned
/// lazily on first parallel dispatch and parked between calls.
///
/// Jobs may freely borrow from the caller's stack (no `'static` bound): a
/// dispatch blocks until its whole batch has completed, exactly like the
/// scoped-thread implementation it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running jobs on up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`default_parallelism`].
    pub fn with_default_parallelism() -> Self {
        Self::new(default_parallelism())
    }

    /// The maximum number of workers (caller included) that may run this
    /// pool's jobs concurrently.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits this pool's worker budget between an outer batch of `jobs`
    /// and the parallelism nested inside each job, so the two levels never
    /// oversubscribe the budget: `outer.threads() * inner.threads() <=
    /// self.threads()` (both at least 1).
    ///
    /// The outer pool gets `min(threads, jobs)` workers — no point spawning
    /// more workers than jobs — and the inner pool divides what is left:
    /// `threads / outer`. A saturated outer level (at least as many jobs as
    /// workers) therefore yields a serial inner pool, while a single job
    /// hands the entire budget to its nested work. Because [`map`](Self::map)
    /// is order-preserving at every worker count, the split affects wall
    /// clock only, never results.
    ///
    /// Splits chain: the batch engine splits its budget between jobs and
    /// each job's share, and the transpile pipeline splits that share again
    /// between layout trials and in-pass SWAP scoring — the product of all
    /// levels never exceeds the original budget.
    pub fn split_budget(&self, jobs: usize) -> (ThreadPool, ThreadPool) {
        let outer = self.threads.min(jobs.max(1));
        let inner = (self.threads / outer).max(1);
        (Self::new(outer), Self::new(inner))
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// Equivalent to `items.into_iter().map(f).collect()` — including when a
    /// job panics: remaining jobs finish, then the caller panics with the
    /// first job's original panic payload. With one worker (or ≤ 1 item) no
    /// batch is published and `f` runs on the caller's thread.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Park each item in its own slot and dispatch by index through the
        // shared worker loop; every slot is taken exactly once, so the
        // per-item lock is never contended.
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map_range(n, |index| {
            let item = inputs[index]
                .lock()
                .expect("input slot poisoned")
                .take()
                .expect("each index is dispatched exactly once");
            f(item)
        })
    }

    /// [`map`](Self::map) with panic containment: a panicking job becomes
    /// `Err(`[`JobPanic`]`)` instead of unwinding into the caller.
    ///
    /// In parallel dispatch, remaining jobs still run to completion before
    /// the error is returned (a published batch always drains; the serial
    /// path stops at the failing job), and the *first* panic wins when
    /// several jobs fail. Persistent pool workers survive either way; this variant
    /// is for callers — like the transpilation daemon — that must convert a
    /// fault into a response rather than crash.
    pub fn try_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, JobPanic>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.try_map_range(n, |index| {
            let item = inputs[index]
                .lock()
                .expect("input slot poisoned")
                .take()
                .expect("each index is dispatched exactly once");
            f(item)
        })
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order — [`map`](Self::map) over `(0..n).collect()` minus the input
    /// vector, and the primitive `map` itself is built on: workers draw
    /// indices from an atomic counter, so dispatching allocates nothing
    /// beyond the result slots. Built for per-step fan-outs inside hot
    /// loops (the routing engine scores SWAP candidates through this every
    /// step).
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let task = |index: usize| {
            // Run the job before touching the slot, so a panicking job
            // cannot poison its result mutex for the collection loop below.
            let result = f(index);
            *slots[index].lock().expect("result slot poisoned") = Some(result);
        };
        if let Some((_, payload)) = pool::run_batch(self.threads, n, &task) {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index stores a result before the batch completes")
            })
            .collect()
    }

    /// [`map_range`](Self::map_range) with panic containment: a panicking
    /// job becomes `Err(`[`JobPanic`]`)` instead of unwinding into the
    /// caller. See [`try_map`](Self::try_map) for the containment contract.
    pub fn try_map_range<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, JobPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            // The serial path still contains panics — the `try_` contract
            // must not depend on the worker count.
            let mut results = Vec::with_capacity(n);
            for index in 0..n {
                match catch_unwind(AssertUnwindSafe(|| f(index))) {
                    Ok(result) => results.push(result),
                    Err(payload) => return Err(JobPanic::from_payload(index, payload)),
                }
            }
            return Ok(results);
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let task = |index: usize| {
            let result = f(index);
            *slots[index].lock().expect("result slot poisoned") = Some(result);
        };
        if let Some((index, payload)) = pool::run_batch(self.threads, n, &task) {
            return Err(JobPanic::from_payload(index, payload));
        }
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index stores a result before the batch completes")
            })
            .collect())
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

/// One-shot convenience: [`ThreadPool::with_default_parallelism`]`.map(items, f)`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ThreadPool::with_default_parallelism().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Serializes every test that panics inside pool jobs, so assertions on
    /// the process-wide `jobs_panicked` counter are not racy. Poison-tolerant
    /// because `#[should_panic]` tests unwind while holding it.
    fn panic_counter_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn map_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ThreadPool::new(threads).map(items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn order_is_preserved_under_skewed_job_costs() {
        // Early items are the slowest, so a naive push-in-completion-order
        // pool would return them last.
        let items: Vec<usize> = (0..32).collect();
        let got = ThreadPool::new(4).map(items.clone(), |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = ThreadPool::new(7).map((0..100).collect::<Vec<usize>>(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn map_range_matches_serial_and_preserves_order() {
        let expected: Vec<usize> = (0..113).map(|i| i * 7 + 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ThreadPool::new(threads).map_range(113, |i| i * 7 + 2);
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert_eq!(ThreadPool::new(4).map_range(0, |i| i), Vec::<usize>::new());
        assert_eq!(ThreadPool::new(4).map_range(1, |i| i + 9), vec![9]);
    }

    #[test]
    fn map_range_runs_every_index_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        ThreadPool::new(5).map_range(64, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn jobs_may_borrow_from_the_caller_stack() {
        let base = [10usize, 20, 30];
        let got = ThreadPool::new(2).map(vec![0usize, 1, 2], |i| base[i] + i);
        assert_eq!(got, vec![10, 21, 32]);
    }

    #[test]
    fn empty_and_single_item_batches_work() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![42u32], |x| x + 1), vec![43]);
    }

    #[test]
    fn thread_count_is_clamped_to_at_least_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(default_parallelism() >= 1);
        assert!(ThreadPool::default().threads() >= 1);
    }

    #[test]
    fn split_budget_never_oversubscribes() {
        for threads in [1, 2, 3, 8, 17] {
            let pool = ThreadPool::new(threads);
            for jobs in [0, 1, 2, 5, 8, 100] {
                let (outer, inner) = pool.split_budget(jobs);
                assert!(outer.threads() >= 1 && inner.threads() >= 1);
                assert!(
                    outer.threads() * inner.threads() <= threads,
                    "threads {threads}, jobs {jobs}: {} x {}",
                    outer.threads(),
                    inner.threads()
                );
                assert!(outer.threads() <= jobs.max(1));
            }
        }
    }

    #[test]
    fn split_budget_extremes() {
        // A single job hands the whole budget to the nested level.
        let (outer, inner) = ThreadPool::new(8).split_budget(1);
        assert_eq!((outer.threads(), inner.threads()), (1, 8));
        // A saturated outer level leaves the nested level serial.
        let (outer, inner) = ThreadPool::new(8).split_budget(64);
        assert_eq!((outer.threads(), inner.threads()), (8, 1));
        // Leftover workers go to the nested level.
        let (outer, inner) = ThreadPool::new(8).split_budget(3);
        assert_eq!((outer.threads(), inner.threads()), (3, 2));
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("garbage")), None);
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 12 ")), Some(12));
    }

    #[test]
    #[should_panic(expected = "deliberate job panic")]
    fn job_panics_propagate_to_the_caller() {
        let _guard = panic_counter_guard();
        ThreadPool::new(4).map((0..8).collect::<Vec<usize>>(), |i| {
            if i == 5 {
                panic!("deliberate job panic");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        let _guard = panic_counter_guard();
        // Persistent workers must outlive panicking jobs: a batch that
        // panics is reported to its caller, and the very next dispatch on
        // the same workers still completes normally.
        let caught = std::panic::catch_unwind(|| {
            ThreadPool::new(4).map_range(16, |i| {
                if i == 3 {
                    panic!("poisoned batch");
                }
                i
            })
        });
        assert!(caught.is_err());
        let got = ThreadPool::new(4).map_range(16, |i| i * 2);
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_contains_panics_at_every_worker_count() {
        let _guard = panic_counter_guard();
        for threads in [1, 2, 4, 8] {
            let err = ThreadPool::new(threads)
                .try_map((0..16).collect::<Vec<usize>>(), |i| {
                    if i == 7 {
                        panic!("contained job panic");
                    }
                    i * 2
                })
                .expect_err("panicking job must surface as Err");
            assert_eq!(err.index, 7, "threads = {threads}");
            assert_eq!(err.message, "contained job panic");
            assert!(!err.is_cancelled());
        }
    }

    #[test]
    fn try_map_matches_map_on_success() {
        for threads in [1, 3, 8] {
            let got = ThreadPool::new(threads)
                .try_map((0..57u64).collect(), |x| x * x)
                .expect("no panics");
            let expected: Vec<u64> = (0..57).map(|x| x * x).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn try_map_range_contains_panics_and_counts_them() {
        let _guard = panic_counter_guard();
        let before = worker_pool_status().jobs_panicked;
        let err = ThreadPool::new(4)
            .try_map_range(16, |i| {
                if i == 3 {
                    panic!("boom {i}");
                }
                i
            })
            .expect_err("panicking job must surface as Err");
        assert_eq!(err.index, 3);
        assert_eq!(err.message, "boom 3");
        assert_eq!(worker_pool_status().jobs_panicked, before + 1);
        // The pool is healthy afterwards.
        let got = ThreadPool::new(4).try_map_range(8, |i| i + 1).unwrap();
        assert_eq!(got, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn budget_cancellation_is_not_a_job_panic() {
        let _guard = panic_counter_guard();
        let budget = Budget::unlimited();
        budget.cancel();
        let before = worker_pool_status().jobs_panicked;
        let err = ThreadPool::new(4)
            .try_map_range(8, |i| {
                if i >= 4 {
                    budget.checkpoint();
                }
                i
            })
            .expect_err("tripped checkpoint must surface as Err");
        assert!(err.is_cancelled());
        assert_eq!(err.message, "budget cancelled");
        assert_eq!(
            worker_pool_status().jobs_panicked,
            before,
            "cooperative cancellation must not count as a panicked job"
        );
    }

    #[test]
    fn nested_dispatch_completes_without_deadlock() {
        // Outer jobs publish inner batches while every worker may already be
        // busy; caller participation guarantees progress. This mirrors the
        // transpile pipeline's layout-trials → in-pass-scoring nesting.
        let outer = ThreadPool::new(4);
        let inner = ThreadPool::new(4);
        let got = outer.map_range(8, |i| inner.map_range(8, |j| i * 8 + j));
        let expected: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..8).map(|j| i * 8 + j).collect())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn workers_persist_across_dispatches() {
        // Two dispatches must not grow the pool past the first one's needs,
        // and counters must advance: the whole point of the refactor.
        let pool = ThreadPool::new(3);
        pool.map_range(8, |i| i);
        let after_first = worker_pool_status();
        assert!(after_first.workers >= 2, "helpers spawned: {after_first:?}");
        pool.map_range(8, |i| i);
        let after_second = worker_pool_status();
        assert_eq!(after_second.workers, after_first.workers);
        assert!(after_second.batches_completed > after_first.batches_completed);
        assert!(after_second.items_completed >= after_first.items_completed + 8);
    }

    #[test]
    fn deep_nesting_with_skewed_budgets_completes() {
        // Three levels of nesting with mismatched budgets — the worst case
        // for a queue-based pool (every level blocks on the one below).
        let got = ThreadPool::new(8).map_range(4, |i| {
            ThreadPool::new(2).map_range(3, |j| {
                ThreadPool::new(5)
                    .map_range(4, |k| i * 100 + j * 10 + k)
                    .into_iter()
                    .sum::<usize>()
            })
        });
        let expected: Vec<Vec<usize>> = (0..4)
            .map(|i| {
                (0..3)
                    .map(|j| (0..4).map(|k| i * 100 + j * 10 + k).sum())
                    .collect()
            })
            .collect();
        assert_eq!(got, expected);
    }
}
