//! Cooperative cancellation for in-flight parallel work.
//!
//! A [`Budget`] is a deadline plus a shared cancellation flag. Long-running
//! pipelines thread one through their hot loops and call
//! [`Budget::checkpoint`] at cheap, frequent points (per layout trial, per
//! routing step, per optimization pass). When the deadline has passed — or
//! the flag was raised by a sibling job — the checkpoint aborts the
//! computation by unwinding with a typed [`Cancelled`] payload.
//!
//! Cancellation-by-unwinding keeps every routing and layout API signature
//! untouched: no `Result` threading through the numeric core. The unwind is
//! caught exactly once, at the session entry-point's `catch_unwind`
//! boundary, where [`Cancelled::from_payload`] distinguishes a deadline
//! abort from a genuine bug panic. The worker pool performs the same
//! distinction so a deadline abort is not counted as a panicked job.
//!
//! The flag is shared (`Arc`) so that once any checkpoint trips, sibling
//! layout trials running on other workers abort at their own next
//! checkpoint instead of running to completion.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The typed unwind payload produced by an expired [`Budget`] checkpoint.
///
/// Carried by `panic_any`, caught at the session boundary, and mapped to a
/// deadline error there. Never printed by the default panic hook: budget
/// checkpoints unwind inside a `catch_unwind` scope that installs no hook
/// output of its own (the pool's per-job `catch_unwind` swallows it too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl Cancelled {
    /// Whether an unwind payload is a [`Cancelled`] marker (a cooperative
    /// deadline abort) rather than a genuine panic.
    pub fn from_payload(payload: &(dyn Any + Send)) -> bool {
        payload.is::<Cancelled>()
    }
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("budget cancelled")
    }
}

/// A deadline plus a shared cancellation flag, checked at cheap checkpoints
/// inside long-running pipelines.
///
/// `Budget` is cheap to clone — clones share the same flag, so cancelling
/// one cancels them all. An unlimited budget ([`Budget::unlimited`]) makes
/// every checkpoint a single relaxed atomic load.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl Budget {
    /// A budget that never expires on its own (it can still be cancelled
    /// explicitly via [`Budget::cancel`]).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget expiring `limit` from now.
    pub fn with_timeout(limit: Duration) -> Self {
        Self::with_deadline(Instant::now() + limit)
    }

    /// A budget expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The deadline instant, if this budget has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Raises the shared cancellation flag: every clone's next
    /// [`checkpoint`](Self::checkpoint) will abort.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the budget is exhausted (flag raised or deadline passed),
    /// without unwinding. Prefer [`checkpoint`](Self::checkpoint) inside
    /// pipelines; this is for callers that want to turn exhaustion into an
    /// error value themselves.
    pub fn is_exhausted(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so sibling clones abort on their flag load
                // without re-reading the clock.
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Aborts the computation by unwinding with a [`Cancelled`] payload if
    /// the budget is exhausted. The fast path — flag clear, no deadline —
    /// is one relaxed atomic load.
    #[inline]
    pub fn checkpoint(&self) {
        if self.is_exhausted() {
            std::panic::panic_any(Cancelled);
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        assert!(!budget.is_exhausted());
        budget.checkpoint();
        budget.checkpoint();
    }

    #[test]
    fn expired_deadline_unwinds_with_cancelled_payload() {
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        let caught = std::panic::catch_unwind(|| budget.checkpoint());
        let payload = caught.expect_err("expired checkpoint must unwind");
        assert!(Cancelled::from_payload(payload.as_ref()));
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let budget = Budget::unlimited();
        let clone = budget.clone();
        clone.cancel();
        assert!(budget.is_exhausted());
        assert!(
            std::panic::catch_unwind(|| budget.checkpoint()).is_err(),
            "cancelled budget must trip its checkpoint"
        );
    }

    #[test]
    fn deadline_expiry_latches_the_shared_flag() {
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        let clone = budget.clone();
        assert!(budget.is_exhausted());
        // The clone now sees the latched flag even without the clock.
        assert!(clone.is_exhausted());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let budget = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!budget.is_exhausted());
        budget.checkpoint();
    }

    #[test]
    fn ordinary_panics_are_not_cancellations() {
        let caught = std::panic::catch_unwind(|| panic!("plain panic"));
        let payload = caught.expect_err("panic must unwind");
        assert!(!Cancelled::from_payload(payload.as_ref()));
    }
}
