//! Merged trace reports: Chrome `trace_event` export and the aggregated
//! per-span table.
//!
//! [`TraceReport`] is the immutable result of [`take_report`]: every
//! buffered event in deterministic merge order plus the dropped-event
//! count. Two serializations cover the two consumers:
//!
//! * [`TraceReport::to_chrome_json`] — the Chrome `trace_event` array
//!   format (`"X"` complete events, `"C"` counter events, microsecond
//!   timestamps), loadable in `chrome://tracing` and Perfetto.
//! * [`TraceReport::span_table`] / [`span_table_json`] — per-span-name
//!   aggregates (count, total, p50/p99 wall time, allocation bytes) for
//!   profile reports, `?trace=1` response bodies and the `/trace`
//!   endpoint.
//!
//! [`take_report`]: crate::take_report
//! [`span_table_json`]: TraceReport::span_table_json

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A span or counter annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer annotation (trial index, item count, ...).
    U64(u64),
    /// A float annotation (routing cost, ...).
    F64(f64),
    /// A text annotation (router name, ...).
    Text(String),
}

/// One completed span: `[start_ns, start_ns + dur_ns)` on its thread, at
/// nesting depth `depth` (0 = top level).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (taxonomy: `prepare`, `layout_trial`, pass names, ...).
    pub name: String,
    /// Start, in nanoseconds since the process trace anchor.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the recording thread when the span opened.
    pub depth: u32,
    /// Allocation-probe delta over the span (0 without a registered probe).
    pub alloc_bytes: u64,
    /// Annotations attached via the `arg_*` methods, in attachment order.
    pub args: Vec<(String, ArgValue)>,
}

/// One (possibly coalesced) counter addition.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEvent {
    /// Counter name (`route.steps`, `cache.layout_hit`, ...).
    pub name: String,
    /// Timestamp of the last coalesced addition, ns since the anchor.
    pub ts_ns: u64,
    /// Sum of the coalesced additions.
    pub value: u64,
}

/// A recorded event: a completed span or a counter addition.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span.
    Span(SpanEvent),
    /// A counter addition.
    Counter(CounterEvent),
}

/// One event in the merged stream, tagged with its merged thread id and
/// per-thread sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Index into [`TraceReport::threads`].
    pub tid: usize,
    /// Per-thread sequence number (record order on that thread).
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// A thread that contributed events, in deterministic merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadInfo {
    /// Merged thread id (index into the report's thread list).
    pub tid: usize,
    /// OS thread name at buffer registration (may be empty).
    pub name: String,
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of wall-clock durations, ns.
    pub total_ns: u64,
    /// Median duration (nearest rank), ns.
    pub p50_ns: u64,
    /// 99th-percentile duration (nearest rank), ns.
    pub p99_ns: u64,
    /// Sum of allocation-probe deltas, bytes.
    pub alloc_bytes: u64,
}

/// The merged result of one recording window.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Contributing threads in merge order.
    pub threads: Vec<ThreadInfo>,
    /// Every event, ordered by (thread merge order, per-thread sequence).
    pub events: Vec<TraceEvent>,
    /// Events lost to the per-thread buffer bound during this window. A
    /// non-zero value means the trace is truncated, not complete.
    pub events_dropped: u64,
}

impl TraceReport {
    /// Iterates over the completed spans in merge order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter_map(|event| match &event.kind {
            EventKind::Span(span) => Some(span),
            EventKind::Counter(_) => None,
        })
    }

    /// Number of completed spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans().filter(|span| span.name == name).count() as u64
    }

    /// Sum across every counter event named `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|event| match &event.kind {
                EventKind::Counter(counter) if counter.name == name => Some(counter.value),
                _ => None,
            })
            .sum()
    }

    /// Total wall time (ns) covered by **top-level** spans (depth 0) —
    /// nested spans are already inside a parent, so this is the
    /// double-count-free coverage figure profiles compare to wall clock.
    pub fn top_level_span_ns(&self) -> u64 {
        self.spans()
            .filter(|span| span.depth == 0)
            .map(|span| span.dur_ns)
            .sum()
    }

    /// Per-counter totals, sorted by name.
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for event in &self.events {
            if let EventKind::Counter(counter) = &event.kind {
                *totals.entry(counter.name.as_str()).or_insert(0) += counter.value;
            }
        }
        totals
            .into_iter()
            .map(|(name, total)| (name.to_string(), total))
            .collect()
    }

    /// Aggregates spans by name: count, total, p50/p99 wall time (nearest
    /// rank) and allocation bytes, sorted by total time descending (name
    /// ascending on ties).
    pub fn span_table(&self) -> Vec<SpanStat> {
        let mut durations: BTreeMap<&str, (Vec<u64>, u64)> = BTreeMap::new();
        for span in self.spans() {
            let entry = durations.entry(span.name.as_str()).or_default();
            entry.0.push(span.dur_ns);
            entry.1 += span.alloc_bytes;
        }
        let mut stats: Vec<SpanStat> = durations
            .into_iter()
            .map(|(name, (mut durs, alloc_bytes))| {
                durs.sort_unstable();
                let total_ns = durs.iter().sum();
                SpanStat {
                    name: name.to_string(),
                    count: durs.len() as u64,
                    total_ns,
                    p50_ns: nearest_rank(&durs, 0.50),
                    p99_ns: nearest_rank(&durs, 0.99),
                    alloc_bytes,
                }
            })
            .collect();
        stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        stats
    }

    /// The span table, counter totals and dropped-event count as one JSON
    /// object — the `?trace=1` / `/trace` response body.
    pub fn span_table_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (index, stat) in self.span_table().iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"alloc_bytes\":{}}}",
                json_escape(&stat.name),
                stat.count,
                stat.total_ns,
                stat.p50_ns,
                stat.p99_ns,
                stat.alloc_bytes
            );
        }
        out.push_str("],\"counters\":[");
        for (index, (name, total)) in self.counter_totals().iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"total\":{}}}",
                json_escape(name),
                total
            );
        }
        let _ = write!(out, "],\"events_dropped\":{}}}", self.events_dropped);
        out
    }

    /// A human-readable span table (for `--profile` console output).
    pub fn render_span_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "p50 ms", "p99 ms", "alloc KiB"
        );
        for stat in self.span_table() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.1}",
                stat.name,
                stat.count,
                stat.total_ns as f64 / 1e6,
                stat.p50_ns as f64 / 1e6,
                stat.p99_ns as f64 / 1e6,
                stat.alloc_bytes as f64 / 1024.0
            );
        }
        for (name, total) in self.counter_totals() {
            let _ = writeln!(out, "{name:<28} {total:>8} (counter)");
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} events dropped (trace truncated)",
                self.events_dropped
            );
        }
        out
    }

    /// Serializes to the Chrome `trace_event` JSON object format: thread
    /// name metadata (`"M"`) events, complete-span (`"X"`) events and
    /// counter (`"C"`) events, with microsecond timestamps. Load the file
    /// in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |entry: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&entry);
        };
        for thread in &self.threads {
            let name = if thread.name.is_empty() {
                format!("thread-{}", thread.tid)
            } else {
                thread.name.clone()
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    thread.tid,
                    json_escape(&name)
                ),
                &mut out,
            );
        }
        for event in &self.events {
            match &event.kind {
                EventKind::Span(span) => {
                    let mut args = String::new();
                    for (key, value) in &span.args {
                        if !args.is_empty() {
                            args.push(',');
                        }
                        let _ = write!(args, "\"{}\":{}", json_escape(key), arg_json(value));
                    }
                    if span.alloc_bytes > 0 {
                        if !args.is_empty() {
                            args.push(',');
                        }
                        let _ = write!(args, "\"alloc_bytes\":{}", span.alloc_bytes);
                    }
                    push(
                        format!(
                            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":\"nassc\",\
                             \"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
                            event.tid,
                            json_escape(&span.name),
                            span.start_ns as f64 / 1e3,
                            span.dur_ns as f64 / 1e3,
                            args
                        ),
                        &mut out,
                    );
                }
                EventKind::Counter(counter) => {
                    push(
                        format!(
                            "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                             \"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                            event.tid,
                            json_escape(&counter.name),
                            counter.ts_ns as f64 / 1e3,
                            counter.value
                        ),
                        &mut out,
                    );
                }
            }
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"events_dropped\":{}}}}}",
            self.events_dropped
        );
        out
    }
}

fn arg_json(value: &ArgValue) -> String {
    match value {
        ArgValue::U64(v) => v.to_string(),
        ArgValue::F64(v) if v.is_finite() => format!("{v}"),
        ArgValue::F64(_) => "null".to_string(),
        ArgValue::Text(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 for empty).
fn nearest_rank(sorted: &[u64], quantile: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * quantile).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), 51);
        assert_eq!(nearest_rank(&v, 0.99), 99);
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn span_table_aggregates_and_sorts_by_total() {
        let mk = |name: &str, dur: u64, alloc: u64| TraceEvent {
            tid: 0,
            seq: 0,
            kind: EventKind::Span(SpanEvent {
                name: name.to_string(),
                start_ns: 0,
                dur_ns: dur,
                depth: 0,
                alloc_bytes: alloc,
                args: Vec::new(),
            }),
        };
        let report = TraceReport {
            threads: vec![ThreadInfo {
                tid: 0,
                name: "main".to_string(),
            }],
            events: vec![mk("a", 10, 4), mk("b", 100, 0), mk("a", 30, 4)],
            events_dropped: 0,
        };
        let table = report.span_table();
        assert_eq!(table[0].name, "b");
        assert_eq!(table[1].name, "a");
        assert_eq!(table[1].count, 2);
        assert_eq!(table[1].total_ns, 40);
        assert_eq!(table[1].alloc_bytes, 8);
        assert_eq!(report.top_level_span_ns(), 140);
    }
}
