//! Zero-cost pipeline tracing for the NASSC transpiler.
//!
//! A process-wide recorder behind one atomic enable flag. With tracing
//! **disabled** (the default), every instrumentation site costs exactly one
//! relaxed atomic load and performs **zero allocation** — transpile outputs
//! and performance stay bit-identical to an uninstrumented build. With
//! tracing **enabled**, sites record nested spans and counters into
//! per-thread buffers that [`take_report`] merges into a deterministic
//! total order.
//!
//! The crate has no dependencies (the build environment has no registry
//! access, mirroring `crates/compat/`), and nothing in it is specific to
//! quantum circuits: it is the repo's generic instrumentation layer.
//!
//! # Recording model
//!
//! * [`span()`]/[`span_owned`] return a [`SpanGuard`]: an RAII guard that
//!   stamps a start time on creation and records one complete-span event on
//!   drop. Guards nest naturally — each thread tracks its current depth, so
//!   reports can reconstruct the span tree without timestamp inference.
//! * [`counter`] adds to a named counter. Consecutive additions to the same
//!   counter on the same thread **coalesce** into a single event, so
//!   per-routing-step counters (`route.steps`, `route.swap_candidates`)
//!   cost an uncontended lock and an integer add, not an allocation per
//!   step.
//! * Every thread's buffer is **bounded** ([`MAX_EVENTS_PER_THREAD`]).
//!   Overflowing events are dropped and counted — never silently lost:
//!   the count appears in [`TraceReport::events_dropped`] and the
//!   process-lifetime total in [`events_dropped_total`].
//! * Buffers merge deterministically: threads order by (name, registration
//!   order) — pool workers carry stable `nassc-worker-N` names — and events
//!   within a thread by their per-thread sequence number.
//!
//! # Allocation attribution
//!
//! The recorder itself never measures the heap; a binary that installs a
//! counting allocator (see `nassc_bench::alloc`) registers a probe with
//! [`set_alloc_probe`], and every span then records the probe delta between
//! its start and end. The counter is process-wide, so deltas attribute
//! concurrent allocations to whichever spans are open — exact in serial
//! runs, an upper bound in parallel ones.
//!
//! # Example
//!
//! ```
//! nassc_trace::enable();
//! {
//!     let mut outer = nassc_trace::span!("layout_trials");
//!     outer.arg_u64("trials", 4);
//!     let _inner = nassc_trace::span!("route");
//!     nassc_trace::counter("route.steps", 3);
//! }
//! let report = nassc_trace::take_report();
//! nassc_trace::disable();
//! assert_eq!(report.span_count("route"), 1);
//! assert!(report.to_chrome_json().contains("\"layout_trials\""));
//! ```

pub mod report;

pub use report::{
    ArgValue, CounterEvent, EventKind, SpanEvent, SpanStat, ThreadInfo, TraceEvent, TraceReport,
};

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Upper bound on buffered events per thread. Overflow increments the
/// dropped-event counters instead of growing without bound.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Events dropped since the last [`take_report`] (or [`enable`]).
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Events dropped over the whole process lifetime (never reset).
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);
/// Registration order for thread buffers (merge tie-breaker).
static REGISTERED: AtomicUsize = AtomicUsize::new(0);

/// Whether the recorder is currently enabled. One relaxed load — this is
/// the entire disabled-mode cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on, clearing any events buffered from a previous
/// recording window and resetting the per-window dropped count.
pub fn enable() {
    for buffer in registry_snapshot() {
        lock_buffer(&buffer).events.clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Buffered events stay available to
/// [`take_report`]; sites go back to the one-relaxed-load fast path.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Registers the allocation probe spans sample at start and end (e.g.
/// `nassc_bench::alloc` total bytes). First registration wins; the probe
/// must be monotonically non-decreasing.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = alloc_probe_cell().set(probe);
}

/// Total events dropped by bounded thread buffers over the process
/// lifetime, including drops not yet collected by [`take_report`].
pub fn events_dropped_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed) + DROPPED.load(Ordering::Relaxed)
}

fn alloc_probe_cell() -> &'static OnceLock<fn() -> u64> {
    static PROBE: OnceLock<fn() -> u64> = OnceLock::new();
    &PROBE
}

fn alloc_now() -> u64 {
    alloc_probe_cell().get().map(|probe| probe()).unwrap_or(0)
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// One buffered instrumentation record. Private: reports expose
/// [`TraceEvent`].
#[derive(Debug)]
enum RawEvent {
    Span {
        name: Cow<'static, str>,
        start_ns: u64,
        dur_ns: u64,
        depth: u32,
        alloc_bytes: u64,
        args: Vec<(&'static str, ArgValue)>,
    },
    Counter {
        name: &'static str,
        ts_ns: u64,
        value: u64,
    },
}

struct ThreadBuffer {
    /// OS thread name at registration (pool workers: `nassc-worker-N`).
    name: String,
    /// Registration order: merge tie-breaker for same-named threads.
    registered: usize,
    /// Current span nesting depth on this thread.
    depth: u32,
    /// Per-thread sequence number of the next recorded event.
    seq: u64,
    events: Vec<(u64, RawEvent)>,
}

impl ThreadBuffer {
    /// Pushes one event, honouring the buffer bound.
    fn push(&mut self, event: RawEvent) {
        if self.events.len() >= MAX_EVENTS_PER_THREAD {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push((seq, event));
    }
}

type SharedBuffer = Arc<Mutex<ThreadBuffer>>;

fn registry() -> &'static Mutex<Vec<SharedBuffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn registry_snapshot() -> Vec<SharedBuffer> {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Poison-tolerant buffer lock: a panic while recording (spans drop during
/// unwinding) must never wedge tracing for the rest of the process.
fn lock_buffer(buffer: &SharedBuffer) -> MutexGuard<'_, ThreadBuffer> {
    buffer.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static LOCAL: OnceLock<SharedBuffer> = const { OnceLock::new() };
}

fn with_buffer<R>(f: impl FnOnce(&mut ThreadBuffer) -> R) -> R {
    LOCAL.with(|cell| {
        let shared = cell.get_or_init(|| {
            let buffer = Arc::new(Mutex::new(ThreadBuffer {
                name: std::thread::current().name().unwrap_or("").to_string(),
                registered: REGISTERED.fetch_add(1, Ordering::Relaxed),
                depth: 0,
                seq: 0,
                events: Vec::new(),
            }));
            registry()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&buffer));
            buffer
        });
        f(&mut lock_buffer(shared))
    })
}

/// An RAII span: created by [`span()`]/[`span_owned`]/[`span!`], records one
/// complete-span event when dropped. Inert (`None` inside, zero further
/// work) when tracing was disabled at creation.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: Cow<'static, str>,
    start_ns: u64,
    depth: u32,
    alloc_start: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    fn begin(name: Cow<'static, str>) -> Self {
        let depth = with_buffer(|buffer| {
            let depth = buffer.depth;
            buffer.depth += 1;
            depth
        });
        SpanGuard {
            inner: Some(ActiveSpan {
                name,
                start_ns: now_ns(),
                depth,
                alloc_start: alloc_now(),
                args: Vec::new(),
            }),
        }
    }

    /// Attaches an integer annotation (e.g. trial index, item count).
    /// No-op on an inert guard.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.inner {
            active.args.push((key, ArgValue::U64(value)));
        }
    }

    /// Attaches a float annotation (e.g. a trial's routing cost).
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if let Some(active) = &mut self.inner {
            active.args.push((key, ArgValue::F64(value)));
        }
    }

    /// Attaches a text annotation (e.g. the chosen router).
    pub fn arg_text(&mut self, key: &'static str, value: &str) {
        if let Some(active) = &mut self.inner {
            active.args.push((key, ArgValue::Text(value.to_string())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(active.start_ns);
        let alloc_bytes = alloc_now().saturating_sub(active.alloc_start);
        with_buffer(|buffer| {
            buffer.depth = buffer.depth.saturating_sub(1);
            buffer.push(RawEvent::Span {
                name: active.name,
                start_ns: active.start_ns,
                dur_ns,
                depth: active.depth,
                alloc_bytes,
                args: active.args,
            });
        });
    }
}

/// Opens a span with a static name. Disabled mode: one relaxed load, an
/// inert guard, zero allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard::begin(Cow::Borrowed(name))
}

/// Opens a span whose name is only known at runtime (e.g. a pass name).
/// The name is copied **only when tracing is enabled** — disabled mode
/// still allocates nothing.
#[inline]
pub fn span_owned(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard::begin(Cow::Owned(name.to_string()))
}

/// Opens a span; sugar for [`span()`] so call sites read
/// `nassc_trace::span!("sabre_layout")`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Adds `value` to the named counter. Consecutive adds to the same counter
/// on the same thread coalesce into one buffered event, so hot-loop sites
/// (one call per routing step) stay allocation-free after the first step.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    with_buffer(|buffer| {
        if let Some((
            _,
            RawEvent::Counter {
                name: last,
                ts_ns: last_ts,
                value: total,
            },
        )) = buffer.events.last_mut()
        {
            if *last == name {
                *total += value;
                *last_ts = ts_ns;
                return;
            }
        }
        buffer.push(RawEvent::Counter { name, ts_ns, value });
    });
}

/// Drains every thread's buffer into one deterministically merged report
/// and folds the per-window dropped count into the process total.
///
/// Merge order: threads sort by (thread name, registration order) — stable
/// across runs whenever thread names are distinct, which holds for the
/// main thread and the persistent `nassc-worker-N` pool — then each
/// thread's events in per-thread sequence order. Spans still open when the
/// report is taken are not included (their guards have not dropped yet).
pub fn take_report() -> TraceReport {
    // (thread name, registration order, drained events) per live thread.
    type DrainedBuffer = (String, usize, Vec<(u64, RawEvent)>);
    let mut buffers: Vec<DrainedBuffer> = registry_snapshot()
        .iter()
        .map(|shared| {
            let mut buffer = lock_buffer(shared);
            let events = std::mem::take(&mut buffer.events);
            (buffer.name.clone(), buffer.registered, events)
        })
        .filter(|(_, _, events)| !events.is_empty())
        .collect();
    buffers.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));

    let mut threads = Vec::with_capacity(buffers.len());
    let mut events = Vec::new();
    for (tid, (name, _, raw_events)) in buffers.into_iter().enumerate() {
        threads.push(ThreadInfo { tid, name });
        for (seq, raw) in raw_events {
            let kind = match raw {
                RawEvent::Span {
                    name,
                    start_ns,
                    dur_ns,
                    depth,
                    alloc_bytes,
                    args,
                } => EventKind::Span(SpanEvent {
                    name: name.into_owned(),
                    start_ns,
                    dur_ns,
                    depth,
                    alloc_bytes,
                    args: args
                        .into_iter()
                        .map(|(key, value)| (key.to_string(), value))
                        .collect(),
                }),
                RawEvent::Counter { name, ts_ns, value } => EventKind::Counter(CounterEvent {
                    name: name.to_string(),
                    ts_ns,
                    value,
                }),
            };
            events.push(TraceEvent { tid, seq, kind });
        }
    }
    let events_dropped = DROPPED.swap(0, Ordering::Relaxed);
    DROPPED_TOTAL.fetch_add(events_dropped, Ordering::Relaxed);
    TraceReport {
        threads,
        events,
        events_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-wide; tests that enable it must not overlap.
    fn recorder_guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = recorder_guard();
        disable();
        let _ = take_report();
        {
            let mut outer = span!("outer");
            outer.arg_u64("k", 1);
            let _inner = span_owned("inner");
            counter("c", 5);
        }
        let report = take_report();
        assert!(report.events.is_empty());
        assert_eq!(report.events_dropped, 0);
    }

    #[test]
    fn spans_nest_and_counters_coalesce() {
        let _guard = recorder_guard();
        enable();
        {
            let mut outer = span!("outer");
            outer.arg_f64("cost", 2.5);
            {
                let _inner = span!("inner");
                counter("steps", 1);
                counter("steps", 1);
                counter("candidates", 7);
                counter("steps", 1);
            }
        }
        let report = take_report();
        disable();

        assert_eq!(report.span_count("outer"), 1);
        assert_eq!(report.span_count("inner"), 1);
        let spans: Vec<&SpanEvent> = report.spans().collect();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // The child's interval sits inside the parent's.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(outer.args, vec![("cost".to_string(), ArgValue::F64(2.5))]);
        // Consecutive same-name adds coalesced; the interleaved counter
        // broke one run into two events.
        assert_eq!(report.counter_total("steps"), 3);
        assert_eq!(report.counter_total("candidates"), 7);
        let step_events = report
            .events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Counter(c) if c.name == "steps"))
            .count();
        assert_eq!(step_events, 2);
    }

    #[test]
    fn merge_order_is_deterministic_across_runs() {
        let _guard = recorder_guard();
        let run = || {
            enable();
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    std::thread::Builder::new()
                        .name(format!("trace-test-{i}"))
                        .spawn(move || {
                            for step in 0..4u64 {
                                let mut s = span!("work");
                                s.arg_u64("step", step);
                                counter("ticks", i + 1);
                            }
                        })
                        .expect("spawn test thread")
                })
                .collect();
            for handle in handles {
                handle.join().expect("test thread");
            }
            let report = take_report();
            disable();
            // Project out the deterministic shape: (thread name, seq, event
            // name) for every event, in merged order.
            report
                .events
                .iter()
                .map(|event| {
                    let name = match &event.kind {
                        EventKind::Span(s) => s.name.clone(),
                        EventKind::Counter(c) => c.name.clone(),
                    };
                    (report.threads[event.tid].name.clone(), event.seq, name)
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert_eq!(
            first.len(),
            8 * 4 * 2,
            "4 spans + 4 counter events per thread"
        );
    }

    #[test]
    fn buffers_are_bounded_and_drops_are_counted() {
        let _guard = recorder_guard();
        enable();
        for _ in 0..(MAX_EVENTS_PER_THREAD + 100) {
            let _span = span!("flood");
        }
        let report = take_report();
        disable();
        let flood = report.span_count("flood") as usize;
        assert!(flood <= MAX_EVENTS_PER_THREAD);
        assert!(report.events_dropped >= 100);
        assert_eq!(
            flood as u64 + report.events_dropped,
            MAX_EVENTS_PER_THREAD as u64 + 100
        );
        assert!(events_dropped_total() >= report.events_dropped);
        // The next window starts clean.
        enable();
        let _span = span!("after");
        drop(_span);
        let next = take_report();
        disable();
        assert_eq!(next.events_dropped, 0);
        assert_eq!(next.span_count("after"), 1);
    }

    #[test]
    fn chrome_json_and_span_table_round_trip_the_events() {
        let _guard = recorder_guard();
        enable();
        for i in 0..3u64 {
            let mut s = span!("pass");
            s.arg_u64("index", i);
        }
        counter("hits", 2);
        let report = take_report();
        disable();

        let json = report.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"pass\""));
        assert!(json.contains("\"ph\":\"C\""));

        let stats = report.span_table();
        let pass = stats.iter().find(|s| s.name == "pass").unwrap();
        assert_eq!(pass.count, 3);
        assert!(pass.total_ns >= pass.p50_ns);
        assert!(pass.p99_ns >= pass.p50_ns);
        let table_json = report.span_table_json();
        assert!(table_json.contains("\"name\":\"pass\",\"count\":3"));
        assert!(table_json.contains("\"counters\":[{\"name\":\"hits\",\"total\":2}]"));
        assert!(table_json.contains("\"events_dropped\":0"));
    }
}
