//! Smoke tests pinning the `nassc` facade's public API surface: if a
//! re-export disappears or an entry-point signature drifts, these fail before
//! any downstream consumer notices.

use nassc::{
    CacheStats, Error, OptimizationFlags, RouterKind, SessionJob, ThreadPool, TranspileOptions,
    Transpiler,
};

/// The 4-qubit circuit used by every smoke test below.
fn smoke_circuit() -> nassc::circuit::QuantumCircuit {
    let mut qc = nassc::circuit::QuantumCircuit::new(4);
    qc.h(0).cx(0, 1).t(1).cx(1, 2).cx(0, 3).h(3).cx(2, 3);
    qc
}

#[test]
fn transpiler_session_is_the_facade_entry_point() {
    let qc = smoke_circuit();
    for router in [RouterKind::Sabre, RouterKind::Nassc] {
        let session = Transpiler::new(
            nassc::topology::CouplingMap::linear(4),
            TranspileOptions::new().router(router).seed(1),
        )
        .with_pool(ThreadPool::new(2));
        let result = session.transpile(&qc).expect("transpile");
        assert!(nassc::passes::is_mapped(
            &result.circuit,
            session.coupling()
        ));
        assert!(result.circuit.iter().all(|i| i.gate.in_ibm_basis()));
        assert!(result.cx_count() > 0);
        assert!(result.depth() > 0);
        // The session-cache surface: per-request and cumulative counters.
        assert_eq!(result.cache.misses(), 3);
        let batch = session.transpile_jobs(&[SessionJob::new(&qc)]);
        assert_eq!(batch[0].as_ref().expect("batch").cache.hits(), 3);
        assert_eq!(
            session.cache_stats().misses(),
            CacheStats::default().misses() + 3
        );
        // Pool observability is part of the surface; workers spawn lazily,
        // so only the cap is a safe invariant to pin.
        assert!(session.pool_status().workers <= nassc::parallel::MAX_POOL_WORKERS);
    }
}

#[test]
fn transpile_qasm_surfaces_the_unified_error() {
    let session = Transpiler::new(
        nassc::topology::CouplingMap::linear(2),
        TranspileOptions::new().seed(1),
    );
    let err = session
        .transpile_qasm("not qasm")
        .expect_err("parse failure");
    assert!(matches!(err, Error::Qasm(_)));
}

// The deprecated pre-session free functions stay part of the public surface
// until the shims are removed; this pin keeps them (and their signatures)
// reachable through the facade.
#[test]
#[allow(deprecated)]
fn deprecated_free_functions_stay_reachable() {
    use nassc::{optimize_without_routing, transpile};
    let device = nassc::topology::CouplingMap::linear(4);
    let qc = smoke_circuit();
    for options in [TranspileOptions::sabre(1), TranspileOptions::nassc(1)] {
        let result = transpile(&qc, &device, &options).expect("transpile");
        assert!(nassc::passes::is_mapped(&result.circuit, &device));
    }
    let optimized = optimize_without_routing(&qc).expect("optimize");
    assert!(optimized.cx_count() <= qc.cx_count());
}

#[test]
fn router_kind_is_part_of_the_options_surface() {
    assert_eq!(TranspileOptions::sabre(3).router, RouterKind::Sabre);
    assert_eq!(TranspileOptions::nassc(3).router, RouterKind::Nassc);
    let flags = OptimizationFlags::default();
    assert_eq!(
        TranspileOptions::nassc_with_flags(3, flags).router,
        RouterKind::Nassc
    );
    // The builder spelling constructs the same options as the shorthands.
    assert_eq!(
        TranspileOptions::new().router(RouterKind::Sabre).seed(3),
        TranspileOptions::sabre(3)
    );
    assert_eq!(TranspileOptions::new().seed(3), TranspileOptions::nassc(3));
}

#[test]
fn sub_crate_namespaces_are_re_exported() {
    // One cheap touch per namespace keeps the re-export list honest.
    assert!(nassc::math::Matrix4::identity().approx_eq(&nassc::math::Matrix4::identity(), 1e-12));
    assert_eq!(nassc::topology::CouplingMap::linear(5).num_qubits(), 5);
    let qft = nassc::benchmarks::qft(3);
    assert_eq!(qft.num_qubits(), 3);
    assert!(qft.iter().count() > 0);
    assert!(nassc::synthesis::two_qubit_cnot_cost(&nassc::math::Matrix4::swap()).unwrap() >= 3);
    let calibration =
        nassc::topology::Calibration::synthetic(&nassc::topology::CouplingMap::linear(3), 7);
    let _noise = nassc::sim::NoiseModel::from_calibration(
        &nassc::topology::CouplingMap::linear(3),
        calibration,
    );
    let _config = nassc::sabre::SabreConfig::default();
    let _pipeline = nassc::passes::standard_optimization_pipeline();
}
