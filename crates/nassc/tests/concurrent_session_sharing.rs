//! The determinism contract under concurrency: one `Arc<Transpiler>`
//! hammered by 8 client threads over the committed QASM corpus must produce
//! exactly what a serial replay on a fresh session produces — bit-identical
//! circuits, independent of interleaving, cache temperature or which thread
//! warms which cache. This is the invariant the `nassc-serve` daemon's
//! correctness rests on.

use std::path::PathBuf;
use std::sync::Arc;

use nassc::{qasm, Device, TranspileOptions, Transpiler};

const CLIENT_THREADS: usize = 8;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/qasm")
}

/// Loads the corpus sources that fit the device, sorted by name.
fn corpus_sources(device: &Device) -> Vec<(String, String)> {
    let corpus = qasm::load_corpus(&corpus_dir()).expect("reading the committed corpus");
    assert!(!corpus.is_empty(), "committed corpus must not be empty");
    corpus
        .into_iter()
        .filter_map(|file| {
            let circuit = file.circuit.expect("committed corpus parses");
            if circuit.num_qubits() > device.num_qubits() {
                return None;
            }
            let source = std::fs::read_to_string(&file.path).expect("reading corpus file");
            Some((file.name, source))
        })
        .collect()
}

#[test]
fn eight_threads_sharing_one_session_match_serial_replay() {
    let device = Device::montreal();
    let sources = corpus_sources(&device);

    // Serial replay on a fresh session: the reference answers.
    let serial = Transpiler::new(device.clone(), TranspileOptions::new());
    let reference: Vec<String> = sources
        .iter()
        .map(|(name, source)| {
            let result = serial
                .transpile_qasm(source)
                .unwrap_or_else(|e| panic!("serial transpile of {name}: {e}"));
            qasm::export(&result.circuit).expect("export")
        })
        .collect();

    // 8 threads share one session. Each walks the corpus at a different
    // starting offset so the threads interleave different circuits and no
    // thread deterministically warms the caches for the others.
    let shared = Arc::new(Transpiler::new(device, TranspileOptions::new()));
    let sources = Arc::new(sources);
    let reference = Arc::new(reference);
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|thread| {
            let shared = Arc::clone(&shared);
            let sources = Arc::clone(&sources);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for step in 0..sources.len() {
                    let index = (thread + step) % sources.len();
                    let (name, source) = &sources[index];
                    let result = shared
                        .transpile_qasm(source)
                        .unwrap_or_else(|e| panic!("thread {thread}: {name}: {e}"));
                    let exported = qasm::export(&result.circuit).expect("export");
                    assert_eq!(
                        exported, reference[index],
                        "thread {thread}: {name} diverged from the serial replay"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // Cache-stat sanity: threads racing on a cold cache may each count a
    // first-touch miss for the same entry (the results are still identical),
    // so the shared session's misses are bounded below by the serial
    // session's — and the bulk of the 8×13 requests must have been hits.
    let serial_stats = serial.cache_stats();
    let shared_stats = shared.cache_stats();
    assert!(shared_stats.misses() >= serial_stats.misses());
    assert!(
        shared_stats.hits() > shared_stats.misses(),
        "concurrent replays must be served mostly from the shared caches \
         (hits {}, misses {})",
        shared_stats.hits(),
        shared_stats.misses()
    );
}
