//! # NASSC — *Not All SWAPs have the Same Cost* (HPCA 2022), in Rust
//!
//! Facade crate: one `use nassc::...` away from the whole reproduction.
//!
//! The heavy lifting lives in the sub-crates (re-exported below under short
//! module names); this crate re-exports the handful of types that nearly
//! every consumer needs. The blessed entry point is the [`Transpiler`]
//! session: constructed once per device, it owns the persistent worker
//! budget and reuses distance matrices, prepared baselines and layout
//! winners across requests ([`CacheStats`] reports the hit rates, and
//! [`Error`] folds pass and QASM failures into one type for
//! [`Transpiler::transpile_qasm`]). The pre-session free functions
//! ([`transpile`], [`transpile_batch`], …) remain as deprecated shims with
//! unchanged behavior — see the README's migration table.
//!
//! External OpenQASM 2.0 workloads enter and leave through the [`qasm`]
//! namespace: `nassc::qasm::parse` lowers a `.qasm` source into a
//! [`circuit::QuantumCircuit`] (or go straight through
//! [`Transpiler::transpile_qasm`]), and `nassc::qasm::export` serializes any
//! transpiled circuit back out (round-trip exact, float parameters
//! included).
//!
//! # Example
//!
//! ```
//! use nassc::{RouterKind, Transpiler, TranspileOptions};
//! use nassc::circuit::QuantumCircuit;
//! use nassc::topology::CouplingMap;
//!
//! let mut qc = QuantumCircuit::new(3);
//! qc.cx(1, 2).cx(0, 1).cx(0, 2);
//!
//! let session = Transpiler::new(
//!     CouplingMap::linear(3),
//!     TranspileOptions::new().router(RouterKind::Nassc).seed(7),
//! );
//! let cold = session.transpile(&qc).unwrap();
//! let warm = session.transpile(&qc).unwrap(); // served from the caches
//! assert_eq!(cold.circuit, warm.circuit);
//! assert!(warm.cache.hits() > 0);
//! ```

// The deprecated pre-session entry points stay re-exported (and deprecated)
// here so `use nassc::transpile` keeps compiling — with the deprecation
// warning — until the shims are removed.
#[allow(deprecated)]
pub use nassc_core::{
    distances_for, transpile, transpile_batch, transpile_batch_on, transpile_batch_prepared,
    transpile_batch_prepared_on, transpile_prepared, transpile_prepared_on,
    transpile_with_distances,
};

pub use nassc_core::{
    decompose_swaps_fixed, embed, evaluate_swap_reduction, evaluate_swap_reduction_windowed,
    optimize_without_routing, BatchJob, CacheStats, Device, DeviceParseError, DistanceCache, Error,
    ErrorKind, NasscPolicy, OptimizationFlags, RouterKind, SessionJob, TranspileOptions,
    TranspileResult, Transpiler,
};

// The persistent worker pool behind every `Transpiler` dispatch: the budget
// handle plus the process-wide pool observability hooks, and the cooperative
// deadline/cancellation primitives behind `TranspileOptions::deadline`.
pub use nassc_parallel::{worker_pool_status, Budget, Cancelled, JobPanic, PoolStatus, ThreadPool};

// The multi-trial layout subsystem (see `nassc::sabre::layout`): the engine,
// its selection/outcome records and the deterministic seed splitter, surfaced
// at the top level because `TranspileOptions::new().layout_trials(n)`
// consumers read its diagnostics.
pub use nassc_sabre::{split_seed, LayoutSelection, LayoutTrials, RoutingState, TrialOutcome};

// Sub-crate namespaces, so downstream code can write `nassc::circuit::...`
// without depending on each `nassc-*` crate individually.
pub use nassc_benchmarks as benchmarks;
pub use nassc_circuit as circuit;
pub use nassc_core as core;
pub use nassc_math as math;
pub use nassc_parallel as parallel;
pub use nassc_passes as passes;
pub use nassc_qasm as qasm;
pub use nassc_sabre as sabre;
pub use nassc_sim as sim;
pub use nassc_synthesis as synthesis;
pub use nassc_topology as topology;
pub use nassc_trace as trace;
