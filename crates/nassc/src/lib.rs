//! # NASSC — *Not All SWAPs have the Same Cost* (HPCA 2022), in Rust
//!
//! Facade crate: one `use nassc::...` away from the whole reproduction.
//!
//! The heavy lifting lives in the sub-crates (re-exported below under short
//! module names); this crate re-exports the handful of types that nearly
//! every consumer needs — the [`transpile`] entry point and its batch
//! counterpart [`transpile_batch`] (seed sweeps fanned across cores,
//! bit-identical to serial), the [`TranspileOptions`]/[`RouterKind`]
//! configuration, the [`OptimizationFlags`] controlling the Eq. 1–2 cost
//! terms, and the no-routing baseline [`optimize_without_routing`].
//!
//! External OpenQASM 2.0 workloads enter and leave through the [`qasm`]
//! namespace: `nassc::qasm::parse` lowers a `.qasm` source into a
//! [`circuit::QuantumCircuit`], and `nassc::qasm::export` serializes any
//! transpiled circuit back out (round-trip exact, float parameters
//! included).
//!
//! # Example
//!
//! ```
//! use nassc::{transpile, RouterKind, TranspileOptions};
//! use nassc::circuit::QuantumCircuit;
//! use nassc::topology::CouplingMap;
//!
//! let mut qc = QuantumCircuit::new(3);
//! qc.cx(1, 2).cx(0, 1).cx(0, 2);
//! let device = CouplingMap::linear(3);
//! let result = transpile(&qc, &device, &TranspileOptions::nassc(7)).unwrap();
//! assert_eq!(TranspileOptions::nassc(7).router, RouterKind::Nassc);
//! assert!(result.cx_count() >= qc.cx_count());
//! ```

pub use nassc_core::{
    decompose_swaps_fixed, distances_for, embed, evaluate_swap_reduction,
    evaluate_swap_reduction_windowed, optimize_without_routing, transpile, transpile_batch,
    transpile_batch_on, transpile_batch_prepared, transpile_batch_prepared_on, transpile_prepared,
    transpile_prepared_on, transpile_with_distances, BatchJob, DistanceCache, NasscPolicy,
    OptimizationFlags, RouterKind, SwapReduction, TranspileOptions, TranspileResult,
};

// The multi-trial layout subsystem (see `nassc::sabre::layout`): the engine,
// its selection/outcome records and the deterministic seed splitter, surfaced
// at the top level because `TranspileOptions::with_layout_trials` consumers
// read its diagnostics.
pub use nassc_sabre::{split_seed, LayoutSelection, LayoutTrials, RoutingState, TrialOutcome};

// Sub-crate namespaces, so downstream code can write `nassc::circuit::...`
// without depending on each `nassc-*` crate individually.
pub use nassc_benchmarks as benchmarks;
pub use nassc_circuit as circuit;
pub use nassc_core as core;
pub use nassc_math as math;
pub use nassc_parallel as parallel;
pub use nassc_passes as passes;
pub use nassc_qasm as qasm;
pub use nassc_sabre as sabre;
pub use nassc_sim as sim;
pub use nassc_synthesis as synthesis;
pub use nassc_topology as topology;
