//! Quantum-circuit intermediate representation for the NASSC reproduction.
//!
//! This crate is the substrate every other crate builds on:
//!
//! * [`Gate`] — the standard gate library with matrix semantics,
//! * [`Instruction`] — a gate bound to qubit indices,
//! * [`QuantumCircuit`] — an ordered instruction list with builder helpers
//!   and size/depth metrics,
//! * [`DagCircuit`] — the dependency-DAG view used by routing and the
//!   optimization passes,
//! * [`unitary`] — dense unitary construction for equivalence checking of
//!   small circuits.
//!
//! # Example
//!
//! ```
//! use nassc_circuit::{QuantumCircuit, DagCircuit};
//!
//! let mut qc = QuantumCircuit::new(3);
//! qc.h(0).cx(0, 1).cx(1, 2);
//! assert_eq!(qc.depth(), 3);
//!
//! let dag = DagCircuit::from_circuit(&qc);
//! assert_eq!(dag.front_layer(), vec![0]);
//! ```

pub mod circuit;
pub mod dag;
pub mod failpoints;
pub mod gate;
pub mod instruction;
pub mod qubits;
pub mod unitary;

pub use circuit::{QasmExportError, QuantumCircuit};
pub use dag::{DagCircuit, DagNode};
pub use gate::Gate;
pub use instruction::Instruction;
pub use qubits::QubitList;
pub use unitary::{
    apply_instruction, circuit_unitary, circuits_equivalent, circuits_equivalent_up_to_permutation,
    CircuitUnitary,
};
