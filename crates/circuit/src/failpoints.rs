//! Feature-gated fault-injection hooks for the chaos-testing harness.
//!
//! A *failpoint* is a named site in the pipeline — `parse`, `layout_trial`,
//! `route_step`, `pass`, `cache_commit`, `handler` — where a test or
//! benchmark can inject a fault: a panic or a delay, fired with a
//! configurable probability. Production code marks the site with a single
//! call:
//!
//! ```ignore
//! nassc_circuit::failpoints::hit("route_step");
//! ```
//!
//! With the `failpoints` cargo feature **off** (the default), `hit` is an
//! empty inline function — zero cost, nothing to configure. With the
//! feature **on**, each call is one relaxed atomic load while no site is
//! armed; an armed site rolls a deterministic per-site xorshift RNG and
//! fires its action when the roll lands under the configured probability.
//!
//! Sites are armed either programmatically (`arm`, `disarm_all` — present
//! only with the feature on, hence not doc-linked here) or
//! from the `NASSC_FAIL` environment variable at first use:
//!
//! ```text
//! NASSC_FAIL=route_step:panic:0.05,layout_trial:delay:50ms
//! ```
//!
//! i.e. a comma-separated list of `site:action:probability` clauses, where
//! `action` is `panic` or `delay:<ms>ms` (the delay clause carries its
//! duration in place of a probability suffix — see `parse_env` for the
//! exact grammar: `site:panic:<p>` or `site:delay:<ms>ms[:<p>]`, `p`
//! defaulting to 1).
//!
//! Injected panics carry the payload `"failpoint <site>"` so chaos tests
//! can tell injected faults from real bugs. `injections` counts fires
//! per site for assertions like "N faults were injected, N were contained".
//!
//! This module lives in `nassc-circuit` because it is the one crate every
//! pipeline layer (parser, layout, routing, session, daemon) already
//! depends on, and cargo feature unification means enabling
//! `nassc-circuit/failpoints` anywhere in a build turns the hooks on for
//! the whole dependency graph.

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Duration;

    /// The action an armed failpoint fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Unwind with the payload `"failpoint <site>"`.
        Panic,
        /// Sleep for the given duration, then continue normally.
        Delay(Duration),
    }

    #[derive(Debug, Clone)]
    struct ArmedSite {
        action: Action,
        /// Fire probability in fixed-point out of `u32::MAX` (1.0 ≡ MAX).
        threshold: u32,
    }

    #[derive(Default)]
    struct Registry {
        sites: BTreeMap<String, ArmedSite>,
        /// Fires per site, for test assertions.
        injections: BTreeMap<String, u64>,
        /// Deterministic xorshift state shared by every site.
        rng: u64,
    }

    /// Fast-path gate: `false` means no site is armed and `hit` returns
    /// after a single relaxed load.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);
    /// Whether the lazy `NASSC_FAIL` parse has run. `hit` must force the
    /// registry init once: env-armed sites can only flip `ANY_ARMED` there,
    /// and nothing else touches the registry in an env-only configuration.
    static ENV_CHECKED: AtomicBool = AtomicBool::new(false);
    /// Total fires across all sites (cheap to read without the lock).
    static TOTAL_INJECTIONS: AtomicU64 = AtomicU64::new(0);

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        let lock = REGISTRY.get_or_init(|| {
            let mut registry = Registry {
                rng: 0x9E37_79B9_7F4A_7C15,
                ..Registry::default()
            };
            if let Ok(spec) = std::env::var("NASSC_FAIL") {
                match parse_env(&spec) {
                    Ok(sites) => {
                        for (site, action, probability) in sites {
                            registry.sites.insert(
                                site,
                                ArmedSite {
                                    action,
                                    threshold: probability_to_threshold(probability),
                                },
                            );
                        }
                    }
                    Err(e) => eprintln!("warning: ignoring invalid NASSC_FAIL: {e}"),
                }
            }
            ANY_ARMED.store(!registry.sites.is_empty(), Ordering::Relaxed);
            Mutex::new(registry)
        });
        // Failpoints deliberately panic while the lock is *not* held (see
        // `hit`), but be poison-tolerant anyway: chaos tests must never
        // wedge on their own harness.
        lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn probability_to_threshold(probability: f64) -> u32 {
        (probability.clamp(0.0, 1.0) * u32::MAX as f64) as u32
    }

    /// xorshift64* — deterministic, seedless, good enough for fire rolls.
    fn next_roll(state: &mut u64) -> u32 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
    }

    /// Parses the `NASSC_FAIL` grammar: comma-separated
    /// `site:panic[:<p>]` or `site:delay:<ms>ms[:<p>]` clauses.
    pub fn parse_env(spec: &str) -> Result<Vec<(String, Action, f64)>, String> {
        let mut out = Vec::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let parts: Vec<&str> = clause.trim().split(':').collect();
            let (site, rest) = parts
                .split_first()
                .ok_or_else(|| format!("empty clause in {clause:?}"))?;
            let parse_p = |s: &str| {
                s.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("bad probability {s:?} in {clause:?}"))
            };
            let (action, probability) = match rest {
                ["panic"] => (Action::Panic, 1.0),
                ["panic", p] => (Action::Panic, parse_p(p)?),
                ["delay", ms] | ["delay", ms, _] => {
                    let millis = ms
                        .strip_suffix("ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| format!("bad delay {ms:?} in {clause:?} (want <n>ms)"))?;
                    let p = match rest {
                        ["delay", _, p] => parse_p(p)?,
                        _ => 1.0,
                    };
                    (Action::Delay(Duration::from_millis(millis)), p)
                }
                _ => return Err(format!("bad action in {clause:?} (want panic|delay:<n>ms)")),
            };
            out.push((site.to_string(), action, probability));
        }
        Ok(out)
    }

    /// Arms `site` to fire `action` with the given probability (clamped to
    /// `[0, 1]`), replacing any previous arming of the same site.
    pub fn arm(site: &str, action: Action, probability: f64) {
        let mut registry = registry();
        registry.sites.insert(
            site.to_string(),
            ArmedSite {
                action,
                threshold: probability_to_threshold(probability),
            },
        );
        ANY_ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarms every site and clears the injection counters.
    pub fn disarm_all() {
        let mut registry = registry();
        registry.sites.clear();
        registry.injections.clear();
        ANY_ARMED.store(false, Ordering::Relaxed);
    }

    /// Fires per site since the last [`disarm_all`].
    pub fn injections() -> BTreeMap<String, u64> {
        registry().injections.clone()
    }

    /// Total fires across all sites since the last [`disarm_all`]... or
    /// rather process start — this counter is monotonic and survives
    /// `disarm_all`, so bench harnesses can diff before/after.
    pub fn total_injections() -> u64 {
        TOTAL_INJECTIONS.load(Ordering::Relaxed)
    }

    /// The fault-injection hook. No-op unless `site` is armed and its
    /// probability roll fires; then sleeps ([`Action::Delay`]) or unwinds
    /// with payload `"failpoint <site>"` ([`Action::Panic`]).
    pub fn hit(site: &str) {
        if !ANY_ARMED.load(Ordering::Relaxed) {
            if ENV_CHECKED.load(Ordering::Relaxed) {
                return;
            }
            drop(registry()); // first call: parse NASSC_FAIL, set ANY_ARMED
            ENV_CHECKED.store(true, Ordering::Relaxed);
            if !ANY_ARMED.load(Ordering::Relaxed) {
                return;
            }
        }
        let action = {
            let mut registry = registry();
            let Some(armed) = registry.sites.get(site).cloned() else {
                return;
            };
            if armed.threshold != u32::MAX && next_roll(&mut registry.rng) > armed.threshold {
                return;
            }
            *registry.injections.entry(site.to_string()).or_insert(0) += 1;
            TOTAL_INJECTIONS.fetch_add(1, Ordering::Relaxed);
            armed.action
            // Lock dropped here: the panic below must not poison the
            // registry.
        };
        match action {
            Action::Panic => panic!("failpoint {site}"),
            Action::Delay(duration) => std::thread::sleep(duration),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Registry state is process-global; serialize the tests touching it.
        fn guard() -> MutexGuard<'static, ()> {
            static LOCK: Mutex<()> = Mutex::new(());
            LOCK.lock().unwrap_or_else(PoisonError::into_inner)
        }

        #[test]
        fn unarmed_sites_do_nothing() {
            let _g = guard();
            disarm_all();
            hit("route_step");
            hit("never_registered");
        }

        #[test]
        fn armed_panic_fires_with_site_payload() {
            let _g = guard();
            disarm_all();
            arm("parse", Action::Panic, 1.0);
            let caught = std::panic::catch_unwind(|| hit("parse"));
            let payload = caught.expect_err("armed site must fire");
            let message = payload.downcast_ref::<String>().expect("string payload");
            assert_eq!(message, "failpoint parse");
            assert_eq!(injections().get("parse"), Some(&1));
            disarm_all();
        }

        #[test]
        fn zero_probability_never_fires() {
            let _g = guard();
            disarm_all();
            arm("pass", Action::Panic, 0.0);
            for _ in 0..100 {
                hit("pass");
            }
            assert!(injections().get("pass").is_none());
            disarm_all();
        }

        #[test]
        fn partial_probability_fires_roughly_proportionally() {
            let _g = guard();
            disarm_all();
            arm("route_step", Action::Panic, 0.5);
            let mut fired = 0;
            for _ in 0..400 {
                if std::panic::catch_unwind(|| hit("route_step")).is_err() {
                    fired += 1;
                }
            }
            assert!((100..300).contains(&fired), "0.5 rate fired {fired}/400");
            disarm_all();
        }

        #[test]
        fn delay_action_sleeps_then_continues() {
            let _g = guard();
            disarm_all();
            arm(
                "layout_trial",
                Action::Delay(Duration::from_millis(20)),
                1.0,
            );
            let start = std::time::Instant::now();
            hit("layout_trial");
            assert!(start.elapsed() >= Duration::from_millis(15));
            disarm_all();
        }

        #[test]
        fn env_grammar_parses() {
            let parsed = parse_env("route_step:panic:0.05, layout_trial:delay:50ms").unwrap();
            assert_eq!(parsed.len(), 2);
            assert_eq!(parsed[0].0, "route_step");
            assert_eq!(parsed[0].1, Action::Panic);
            assert!((parsed[0].2 - 0.05).abs() < 1e-12);
            assert_eq!(parsed[1].1, Action::Delay(Duration::from_millis(50)));
            assert!((parsed[1].2 - 1.0).abs() < 1e-12);

            let with_p = parse_env("cache_commit:delay:5ms:0.25").unwrap();
            assert_eq!(with_p[0].1, Action::Delay(Duration::from_millis(5)));
            assert!((with_p[0].2 - 0.25).abs() < 1e-12);

            assert!(parse_env("site:explode").is_err());
            assert!(parse_env("site:panic:2.0").is_err());
            assert!(parse_env("site:delay:50").is_err());
            assert!(parse_env("").unwrap().is_empty());
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, disarm_all, hit, injections, parse_env, total_injections, Action};

/// With the `failpoints` feature disabled, every hook compiles to nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) {}
