//! The flat quantum-circuit container.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::gate::Gate;
use crate::instruction::Instruction;
use crate::qubits::QubitList;

/// A quantum circuit: an ordered list of [`Instruction`]s over a fixed number
/// of qubits.
///
/// The builder methods (`h`, `cx`, `rz`, …) make constructing circuits by
/// hand terse; they all append to the instruction list and return `&mut Self`
/// for chaining.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
///
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.num_gates(), 2);
/// assert_eq!(bell.cx_count(), 1);
/// assert_eq!(bell.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumCircuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl QuantumCircuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Creates an empty circuit with pre-allocated room for `capacity`
    /// instructions — the parser and generators use this so 100k-gate ingest
    /// does not re-grow the instruction buffer.
    pub fn with_capacity(num_qubits: usize, capacity: usize) -> Self {
        Self {
            num_qubits,
            instructions: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more instructions.
    pub fn reserve(&mut self, additional: usize) {
        self.instructions.reserve(additional);
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of instructions.
    pub fn num_gates(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Read-only access to the instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// A 64-bit structural fingerprint of the circuit: FNV-1a over the qubit
    /// count and, per instruction, the gate name, the exact bit patterns of
    /// its parameters, and the qubit indices.
    ///
    /// Two structurally equal circuits (`a == b`) always hash equal, so the
    /// hash works as a cheap cache pre-filter; hash-equal circuits may still
    /// differ (explicit `Unitary1`/`Unitary2` matrix entries are not folded
    /// in), so exact callers must confirm with `==` — which is what the
    /// `Transpiler` session caches do. Parameters hash by `f64::to_bits`,
    /// matching the pipelines' exact-comparison semantics: `0.1 + 0.2` and
    /// `0.3` are *different* structures, as they are to the optimizer.
    pub fn structural_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.num_qubits as u64).to_le_bytes());
        for inst in &self.instructions {
            eat(inst.gate.name().as_bytes());
            for param in inst.gate.params() {
                eat(&param.to_bits().to_le_bytes());
            }
            for q in inst.qubits().iter() {
                eat(&(q as u64).to_le_bytes());
            }
        }
        hash
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if an instruction qubit is out of range.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        for q in instruction.qubits().iter() {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for a {}-qubit circuit",
                self.num_qubits
            );
        }
        self.instructions.push(instruction);
        self
    }

    /// Appends a gate on the given qubits (array literals are
    /// allocation-free; `Vec<usize>` still works).
    pub fn append(&mut self, gate: Gate, qubits: impl Into<QubitList>) -> &mut Self {
        self.push(Instruction::new(gate, qubits))
    }

    /// Removes and returns the last instruction, if any.
    ///
    /// Routing policies use this to detach trailing gates they are about to
    /// commute through a SWAP, instead of rebuilding the instruction vector.
    pub fn pop(&mut self) -> Option<Instruction> {
        self.instructions.pop()
    }

    /// Shortens the circuit to at most `len` instructions (no-op when it is
    /// already that short).
    pub fn truncate(&mut self, len: usize) {
        self.instructions.truncate(len);
    }

    /// Appends every instruction of `other` (qubit indices taken verbatim).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend(&mut self, other: &QuantumCircuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "composed circuit is too wide"
        );
        for inst in &other.instructions {
            self.push(inst.clone());
        }
        self
    }

    /// Appends `other` with its qubit `i` mapped onto `qubits[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is shorter than `other`'s qubit count.
    pub fn compose_on(&mut self, other: &QuantumCircuit, qubits: &[usize]) -> &mut Self {
        assert!(
            qubits.len() >= other.num_qubits(),
            "qubit mapping too short"
        );
        for inst in &other.instructions {
            self.push(inst.map_qubits(|q| qubits[q]));
        }
        self
    }

    /// The circuit with all instructions inverted and reversed.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains measurements.
    pub fn inverse(&self) -> QuantumCircuit {
        let mut out = QuantumCircuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            out.push(inst.inverse());
        }
        out
    }

    /// The same circuit with instruction order reversed (used by SABRE's
    /// reverse-traversal layout refinement; gates are *not* inverted).
    pub fn reversed(&self) -> QuantumCircuit {
        let mut out = QuantumCircuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            out.push(inst.clone());
        }
        out
    }

    /// Returns a copy with every qubit index remapped through `f` onto a
    /// circuit of `new_width` qubits.
    pub fn map_qubits(&self, new_width: usize, f: impl Fn(usize) -> usize) -> QuantumCircuit {
        let mut out = QuantumCircuit::new(new_width);
        for inst in &self.instructions {
            out.push(inst.map_qubits(&f));
        }
        out
    }

    /// Per-gate-name operation counts.
    pub fn count_ops(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of CNOT gates.
    pub fn cx_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate == Gate::Cx)
            .count()
    }

    /// Number of two-qubit unitary gates of any kind.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_two_qubit())
            .count()
    }

    /// Number of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate == Gate::Swap)
            .count()
    }

    /// Circuit depth: the length of the longest qubit-dependency chain.
    /// Barriers synchronise but do not add depth; measurements count.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for inst in &self.instructions {
            let max_in = inst.qubits().iter().map(|q| level[q]).max().unwrap_or(0);
            let new_level = if inst.gate.is_directive() {
                max_in
            } else {
                max_in + 1
            };
            for q in inst.qubits().iter() {
                level[q] = new_level;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// The set of qubits actually touched by at least one instruction.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for inst in &self.instructions {
            for q in inst.qubits().iter() {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(q, &u)| if u { Some(q) } else { None })
            .collect()
    }

    /// Serializes the circuit as a strictly valid OpenQASM 2.0 program.
    ///
    /// The output carries the standard header, one `qreg q[n]` covering every
    /// qubit, a matching `creg c[n]` when the circuit measures, and canonical
    /// lower-case gate spellings (`u`, `p`, `sx`, …) resolvable against
    /// `qelib1.inc`. Parameters print via Rust's shortest-round-trip `f64`
    /// formatting, so re-parsing reproduces every angle bit-for-bit — the
    /// `nassc-qasm` round-trip guarantee builds on exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`QasmExportError`] when an instruction has no OpenQASM 2.0
    /// spelling: the synthesis intermediates `unitary1`/`unitary2` (raw
    /// matrices) and gates carrying non-finite parameters.
    ///
    /// # Example
    ///
    /// ```
    /// use nassc_circuit::QuantumCircuit;
    ///
    /// let mut bell = QuantumCircuit::new(2);
    /// bell.h(0).cx(0, 1).measure(0).measure(1);
    /// let qasm = bell.to_qasm().unwrap();
    /// assert!(qasm.starts_with("OPENQASM 2.0;"));
    /// assert!(qasm.contains("cx q[0],q[1];"));
    /// assert!(qasm.contains("measure q[0] -> c[0];"));
    /// ```
    pub fn to_qasm(&self) -> Result<String, QasmExportError> {
        self.write_qasm(false)
    }

    /// [`Self::to_qasm`] that never fails: instructions without an OpenQASM
    /// spelling are emitted as `// <name> [qubits]` comment lines instead of
    /// aborting the dump. Useful for debugging intermediate circuits that
    /// still hold `unitary1`/`unitary2` blocks.
    pub fn to_qasm_lossy(&self) -> String {
        self.write_qasm(true)
            .expect("lossy serialization cannot fail")
    }

    /// The historical name of the text dump.
    #[deprecated(note = "use `to_qasm` (strict) or `to_qasm_lossy` (total) instead")]
    pub fn to_text(&self) -> String {
        self.to_qasm_lossy()
    }

    /// Shared body of [`Self::to_qasm`] and [`Self::to_qasm_lossy`].
    ///
    /// The output string is pre-sized from the instruction count and every
    /// line is written in place (no per-gate `format!` temporaries), so a
    /// 100k-gate export performs O(1) reallocations.
    fn write_qasm(&self, lossy: bool) -> Result<String, QasmExportError> {
        // ~24 bytes covers a typical parameterless line (`cx q[12],q[13];`);
        // parameterised lines overflow into the usual amortised growth.
        let mut out = String::with_capacity(64 + 24 * self.instructions.len());
        out.push_str("OPENQASM 2.0;\n");
        out.push_str("include \"qelib1.inc\";\n");
        if self.num_qubits > 0 {
            let _ = writeln!(out, "qreg q[{}];", self.num_qubits);
        }
        if self.instructions.iter().any(|i| i.gate == Gate::Measure) {
            let _ = writeln!(out, "creg c[{}];", self.num_qubits);
        }
        for (index, inst) in self.instructions.iter().enumerate() {
            match &inst.gate {
                Gate::Measure => {
                    let q = inst.qubit(0);
                    let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
                }
                Gate::Barrier(_) => {
                    out.push_str("barrier ");
                    write_qasm_qubits(&mut out, inst.qubits());
                    out.push_str(";\n");
                }
                Gate::Unitary1(_) | Gate::Unitary2(_) => {
                    if lossy {
                        let _ = writeln!(out, "// {} {:?}", inst.gate.name(), inst.qubits());
                    } else {
                        return Err(QasmExportError::new(index, inst.gate.name()));
                    }
                }
                gate => {
                    let params = gate.params();
                    if params.iter().any(|p| !p.is_finite()) {
                        if lossy {
                            let _ = writeln!(out, "// {} {:?}", gate.name(), inst.qubits());
                            continue;
                        }
                        return Err(QasmExportError::new(index, gate.name()));
                    }
                    out.push_str(gate.name());
                    if !params.is_empty() {
                        out.push('(');
                        for (i, p) in params.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{p}");
                        }
                        out.push(')');
                    }
                    out.push(' ');
                    write_qasm_qubits(&mut out, inst.qubits());
                    out.push_str(";\n");
                }
            }
        }
        Ok(out)
    }

    // ----- builder helpers -------------------------------------------------

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.append(Gate::H, [q])
    }
    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.append(Gate::X, [q])
    }
    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Y, [q])
    }
    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Z, [q])
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.append(Gate::S, [q])
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sdg, [q])
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.append(Gate::T, [q])
    }
    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Tdg, [q])
    }
    /// Appends a √X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sx, [q])
    }
    /// Appends an Rx rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rx(theta), [q])
    }
    /// Appends an Ry rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Ry(theta), [q])
    }
    /// Appends an Rz rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rz(theta), [q])
    }
    /// Appends a phase gate.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::Phase(lambda), [q])
    }
    /// Appends a generic `U(θ, φ, λ)` gate.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::U(theta, phi, lambda), [q])
    }
    /// Appends a CNOT gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cx, [control, target])
    }
    /// Appends a CZ gate.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cz, [control, target])
    }
    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cp(lambda), [control, target])
    }
    /// Appends a controlled-Rx gate.
    pub fn crx(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Crx(theta), [control, target])
    }
    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Swap, [a, b])
    }
    /// Appends a Toffoli gate.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.append(Gate::Ccx, [c1, c2, target])
    }
    /// Appends a measurement marker on the given qubit.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Measure, [q])
    }
    /// Appends a barrier over all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let n = self.num_qubits;
        self.append(Gate::Barrier(n), (0..n).collect::<Vec<_>>())
    }
}

/// Writes a qubit index list as OpenQASM arguments: `q[0],q[3]`.
fn write_qasm_qubits(out: &mut String, qubits: &QubitList) {
    for (i, q) in qubits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "q[{q}]");
    }
}

/// Error from [`QuantumCircuit::to_qasm`]: an instruction with no OpenQASM
/// 2.0 representation (a raw-matrix `unitary1`/`unitary2`, or a gate with a
/// non-finite parameter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmExportError {
    /// Index of the offending instruction.
    pub instruction: usize,
    /// Name of the offending gate.
    pub gate: String,
}

impl QasmExportError {
    fn new(instruction: usize, gate: impl Into<String>) -> Self {
        Self {
            instruction,
            gate: gate.into(),
        }
    }
}

impl std::fmt::Display for QasmExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instruction {} ({}) has no OpenQASM 2.0 representation",
            self.instruction, self.gate
        )
    }
}

impl std::error::Error for QasmExportError {}

impl FromIterator<Instruction> for QuantumCircuit {
    /// Builds a circuit wide enough to hold every referenced qubit.
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let instructions: Vec<Instruction> = iter.into_iter().collect();
        let width = instructions
            .iter()
            .flat_map(|i| i.qubits().iter())
            .max()
            .map_or(0, |m| m + 1);
        let mut qc = QuantumCircuit::new(width);
        for inst in instructions {
            qc.push(inst);
        }
        qc
    }
}

impl<'a> IntoIterator for &'a QuantumCircuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2).swap(0, 2);
        assert_eq!(qc.num_gates(), 5);
        assert_eq!(qc.cx_count(), 2);
        assert_eq!(qc.swap_count(), 1);
        assert_eq!(qc.two_qubit_gate_count(), 3);
        assert_eq!(qc.count_ops()["cx"], 2);
    }

    #[test]
    fn structural_hash_tracks_structure() {
        let mut a = QuantumCircuit::new(3);
        a.h(0).cx(0, 1).rz(0.25, 2);
        let mut b = QuantumCircuit::new(3);
        b.h(0).cx(0, 1).rz(0.25, 2);
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Any structural difference — qubits, params, gate order, width —
        // changes the hash.
        let mut qubits = QuantumCircuit::new(3);
        qubits.h(0).cx(1, 0).rz(0.25, 2);
        let mut params = QuantumCircuit::new(3);
        params.h(0).cx(0, 1).rz(0.75, 2);
        let mut wider = QuantumCircuit::new(4);
        wider.h(0).cx(0, 1).rz(0.25, 2);
        for other in [&qubits, &params, &wider] {
            assert_ne!(a.structural_hash(), other.structural_hash());
        }
        assert_ne!(
            QuantumCircuit::new(2).structural_hash(),
            QuantumCircuit::new(3).structural_hash()
        );
    }

    #[test]
    fn pop_and_truncate_shorten_from_the_tail() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let last = qc.pop().unwrap();
        assert_eq!(last.gate, Gate::Cx);
        assert_eq!(last.qubits().to_vec(), vec![1, 2]);
        assert_eq!(qc.num_gates(), 2);
        qc.truncate(1);
        assert_eq!(qc.num_gates(), 1);
        assert_eq!(qc.instructions()[0].gate, Gate::H);
        qc.truncate(5); // longer than the circuit: no-op
        assert_eq!(qc.num_gates(), 1);
        qc.truncate(0);
        assert!(qc.is_empty());
        assert_eq!(qc.pop(), None);
    }

    #[test]
    fn depth_computation() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).h(1).h(2); // depth 1: all parallel
        assert_eq!(qc.depth(), 1);
        qc.cx(0, 1); // depth 2
        qc.cx(1, 2); // depth 3
        assert_eq!(qc.depth(), 3);
        qc.x(0); // runs in parallel with cx(1,2): still depth 3
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn barriers_do_not_add_depth_but_synchronize() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0);
        qc.barrier_all();
        qc.h(1);
        // h(1) must come after the barrier which waits for h(0): depth 2.
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = QuantumCircuit::new(2);
        qc.s(0).cx(0, 1).t(1);
        let inv = qc.inverse();
        assert_eq!(inv.instructions()[0].gate, Gate::Tdg);
        assert_eq!(inv.instructions()[1].gate, Gate::Cx);
        assert_eq!(inv.instructions()[2].gate, Gate::Sdg);
    }

    #[test]
    fn reversed_keeps_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.s(0).cx(0, 1);
        let rev = qc.reversed();
        assert_eq!(rev.instructions()[0].gate, Gate::Cx);
        assert_eq!(rev.instructions()[1].gate, Gate::S);
    }

    #[test]
    fn compose_on_remaps_qubits() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).cx(0, 1);
        let mut big = QuantumCircuit::new(5);
        big.compose_on(&bell, &[3, 1]);
        assert_eq!(big.instructions()[0].qubits().to_vec(), vec![3]);
        assert_eq!(big.instructions()[1].qubits().to_vec(), vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 2);
    }

    #[test]
    fn from_iterator_sizes_to_max_qubit() {
        let qc: QuantumCircuit = vec![
            Instruction::new(Gate::H, vec![0]),
            Instruction::new(Gate::Cx, vec![0, 4]),
        ]
        .into_iter()
        .collect();
        assert_eq!(qc.num_qubits(), 5);
    }

    #[test]
    fn active_qubits_reports_touched_wires() {
        let mut qc = QuantumCircuit::new(6);
        qc.cx(1, 4);
        assert_eq!(qc.active_qubits(), vec![1, 4]);
    }

    #[test]
    fn qasm_dump_is_a_valid_program() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0)
            .cx(0, 1)
            .rz(0.5, 1)
            .barrier_all()
            .measure(0)
            .measure(1);
        let qasm = qc.to_qasm().unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("creg c[3];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("cx q[0],q[1];"));
        assert!(qasm.contains("rz(0.5) q[1];"));
        assert!(qasm.contains("barrier q[0],q[1],q[2];"));
        assert!(qasm.contains("measure q[1] -> c[1];"));
        // The deprecated alias still produces the same dump.
        #[allow(deprecated)]
        let text = qc.to_text();
        assert_eq!(text, qasm);
    }

    #[test]
    fn measureless_circuits_omit_the_creg() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let qasm = qc.to_qasm().unwrap();
        assert!(!qasm.contains("creg"));
        assert!(!qasm.contains("measure"));
    }

    #[test]
    fn unitary_payload_gates_fail_strict_export_but_not_lossy() {
        use nassc_math::Matrix2;
        let mut qc = QuantumCircuit::new(1);
        qc.h(0);
        qc.append(Gate::Unitary1(Matrix2::identity()), vec![0]);
        let err = qc.to_qasm().unwrap_err();
        assert_eq!(err.instruction, 1);
        assert_eq!(err.gate, "unitary1");
        assert!(err.to_string().contains("no OpenQASM 2.0 representation"));
        let lossy = qc.to_qasm_lossy();
        assert!(lossy.contains("h q[0];"));
        assert!(lossy.contains("// unitary1 [0]"));
    }

    #[test]
    fn non_finite_parameters_fail_strict_export() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(f64::NAN, 0);
        assert!(qc.to_qasm().is_err());
        assert!(qc.to_qasm_lossy().contains("// rz [0]"));
    }

    #[test]
    fn empty_circuit_exports_header_only() {
        let qasm = QuantumCircuit::new(0).to_qasm().unwrap();
        assert!(!qasm.contains("qreg"));
        assert!(qasm.starts_with("OPENQASM 2.0;"));
    }
}
