//! The standard gate library.
//!
//! Every gate the benchmark circuits, the transpiler and the routers need is
//! a variant of [`Gate`]. Matrix representations follow a little-endian
//! convention: for an instruction applied to qubits `[a, b]`, the first
//! listed qubit `a` is the *least significant* bit of the 4×4 matrix basis
//! `|b a⟩`. Controlled gates list the control qubit first.

use nassc_math::{Matrix2, Matrix4, C64};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// A quantum gate (or the non-unitary `Measure`/`Barrier` markers).
///
/// # Example
///
/// ```
/// use nassc_circuit::Gate;
///
/// assert_eq!(Gate::Cx.num_qubits(), 2);
/// assert!(Gate::H.is_self_inverse());
/// assert_eq!(Gate::S.inverse(), Gate::Sdg);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// X rotation by the given angle.
    Rx(f64),
    /// Y rotation by the given angle.
    Ry(f64),
    /// Z rotation by the given angle.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iλ})`.
    Phase(f64),
    /// Generic single-qubit gate `U(θ, φ, λ)` (IBM convention).
    U(f64, f64, f64),
    /// Controlled-X (CNOT); qubit order is `[control, target]`.
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled-Hadamard.
    Ch,
    /// SWAP gate.
    Swap,
    /// Controlled X rotation.
    Crx(f64),
    /// Controlled Y rotation.
    Cry(f64),
    /// Controlled Z rotation.
    Crz(f64),
    /// Controlled phase rotation.
    Cp(f64),
    /// Ising XX interaction.
    Rxx(f64),
    /// Ising ZZ interaction.
    Rzz(f64),
    /// Toffoli; qubit order is `[control, control, target]`.
    Ccx,
    /// Controlled-SWAP; qubit order is `[control, target, target]`.
    Cswap,
    /// An explicit single-qubit unitary (produced by 1q optimization).
    Unitary1(Matrix2),
    /// An explicit two-qubit unitary (produced by block consolidation).
    Unitary2(Box<Matrix4>),
    /// Measurement in the computational basis (non-unitary marker).
    Measure,
    /// Barrier over the given number of qubits (compilation marker).
    Barrier(usize),
}

impl Gate {
    /// The lower-case OpenQASM-style name of the gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U(_, _, _) => "u",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Ch => "ch",
            Gate::Swap => "swap",
            Gate::Crx(_) => "crx",
            Gate::Cry(_) => "cry",
            Gate::Crz(_) => "crz",
            Gate::Cp(_) => "cp",
            Gate::Rxx(_) => "rxx",
            Gate::Rzz(_) => "rzz",
            Gate::Ccx => "ccx",
            Gate::Cswap => "cswap",
            Gate::Unitary1(_) => "unitary1",
            Gate::Unitary2(_) => "unitary2",
            Gate::Measure => "measure",
            Gate::Barrier(_) => "barrier",
        }
    }

    /// The inverse of [`Gate::name`]: builds the gate for a lower-case
    /// OpenQASM name and parameter list.
    ///
    /// Accepts every name [`Gate::name`] produces for a parameterizable gate
    /// (so `Gate::from_qasm_name(g.name(), &g.params()) == Some(g)` for all
    /// named gates) plus the legacy OpenQASM 2.0 spellings `u1`, `u2`, `u3`
    /// and `cu1`. Returns `None` for unknown names, wrong parameter counts,
    /// and the gates that carry non-parameter payloads (`unitary1`,
    /// `unitary2`, `barrier`).
    ///
    /// # Example
    ///
    /// ```
    /// use nassc_circuit::Gate;
    ///
    /// assert_eq!(Gate::from_qasm_name("cx", &[]), Some(Gate::Cx));
    /// assert_eq!(Gate::from_qasm_name("rz", &[0.5]), Some(Gate::Rz(0.5)));
    /// assert_eq!(Gate::from_qasm_name("rz", &[]), None);
    /// assert_eq!(Gate::from_qasm_name("u1", &[0.5]), Some(Gate::Phase(0.5)));
    /// ```
    pub fn from_qasm_name(name: &str, params: &[f64]) -> Option<Gate> {
        let gate = match (name, params) {
            ("id", []) => Gate::I,
            ("x", []) => Gate::X,
            ("y", []) => Gate::Y,
            ("z", []) => Gate::Z,
            ("h", []) => Gate::H,
            ("s", []) => Gate::S,
            ("sdg", []) => Gate::Sdg,
            ("t", []) => Gate::T,
            ("tdg", []) => Gate::Tdg,
            ("sx", []) => Gate::Sx,
            ("sxdg", []) => Gate::Sxdg,
            ("rx", &[t]) => Gate::Rx(t),
            ("ry", &[t]) => Gate::Ry(t),
            ("rz", &[t]) => Gate::Rz(t),
            ("p" | "u1", &[l]) => Gate::Phase(l),
            ("u2", &[p, l]) => Gate::U(FRAC_PI_2, p, l),
            ("u" | "u3", &[t, p, l]) => Gate::U(t, p, l),
            ("cx", []) => Gate::Cx,
            ("cy", []) => Gate::Cy,
            ("cz", []) => Gate::Cz,
            ("ch", []) => Gate::Ch,
            ("swap", []) => Gate::Swap,
            ("crx", &[t]) => Gate::Crx(t),
            ("cry", &[t]) => Gate::Cry(t),
            ("crz", &[t]) => Gate::Crz(t),
            ("cp" | "cu1", &[l]) => Gate::Cp(l),
            ("rxx", &[t]) => Gate::Rxx(t),
            ("rzz", &[t]) => Gate::Rzz(t),
            ("ccx", []) => Gate::Ccx,
            ("cswap", []) => Gate::Cswap,
            ("measure", []) => Gate::Measure,
            _ => return None,
        };
        Some(gate)
    }

    /// The number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U(_, _, _)
            | Gate::Unitary1(_)
            | Gate::Measure => 1,
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Swap
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_)
            | Gate::Rxx(_)
            | Gate::Rzz(_)
            | Gate::Unitary2(_) => 2,
            Gate::Ccx | Gate::Cswap => 3,
            Gate::Barrier(n) => *n,
        }
    }

    /// Returns `true` for unitary gates (everything except measure/barrier).
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure | Gate::Barrier(_))
    }

    /// Returns `true` when the gate is directive-like (barrier) and carries
    /// no operation.
    pub fn is_directive(&self) -> bool {
        matches!(self, Gate::Barrier(_))
    }

    /// Returns `true` for two-qubit unitary gates.
    pub fn is_two_qubit(&self) -> bool {
        self.is_unitary() && self.num_qubits() == 2
    }

    /// Returns `true` when the gate equals its own inverse.
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::X
                | Gate::Y
                | Gate::Z
                | Gate::H
                | Gate::Cx
                | Gate::Cy
                | Gate::Cz
                | Gate::Ch
                | Gate::Swap
                | Gate::Ccx
                | Gate::Cswap
        )
    }

    /// The inverse gate.
    ///
    /// # Panics
    ///
    /// Panics for the non-unitary `Measure` marker.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            Gate::Crx(t) => Gate::Crx(-t),
            Gate::Cry(t) => Gate::Cry(-t),
            Gate::Crz(t) => Gate::Crz(-t),
            Gate::Cp(t) => Gate::Cp(-t),
            Gate::Rxx(t) => Gate::Rxx(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::Unitary1(m) => Gate::Unitary1(m.adjoint()),
            Gate::Unitary2(m) => Gate::Unitary2(Box::new(m.adjoint())),
            Gate::Barrier(n) => Gate::Barrier(*n),
            Gate::Measure => panic!("measure has no inverse"),
            other => other.clone(),
        }
    }

    /// The 2×2 matrix of a single-qubit gate, if this is one.
    pub fn matrix2(&self) -> Option<Matrix2> {
        let z = C64::zero();
        let o = C64::one();
        let m = match self {
            Gate::I => Matrix2::identity(),
            Gate::X => Matrix2::pauli_x(),
            Gate::Y => Matrix2::pauli_y(),
            Gate::Z => Matrix2::pauli_z(),
            Gate::H => Matrix2::hadamard(),
            Gate::S => Matrix2::new([[o, z], [z, C64::i()]]),
            Gate::Sdg => Matrix2::new([[o, z], [z, -C64::i()]]),
            Gate::T => Matrix2::new([[o, z], [z, C64::exp_i(FRAC_PI_4)]]),
            Gate::Tdg => Matrix2::new([[o, z], [z, C64::exp_i(-FRAC_PI_4)]]),
            Gate::Sx => Matrix2::new([
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ]),
            Gate::Sxdg => Matrix2::new([
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
            ]),
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                Matrix2::new([[c, s], [s, c]])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                Matrix2::new([[c, -s], [s, c]])
            }
            Gate::Rz(t) => Matrix2::new([[C64::exp_i(-t / 2.0), z], [z, C64::exp_i(t / 2.0)]]),
            Gate::Phase(t) => Matrix2::new([[o, z], [z, C64::exp_i(*t)]]),
            Gate::U(theta, phi, lam) => u_matrix(*theta, *phi, *lam),
            Gate::Unitary1(m) => *m,
            _ => return None,
        };
        Some(m)
    }

    /// The 4×4 matrix of a two-qubit gate, if this is one.
    ///
    /// The first listed qubit of the instruction (the control for controlled
    /// gates) is the least significant bit of the basis ordering.
    pub fn matrix4(&self) -> Option<Matrix4> {
        let z = C64::zero();
        let o = C64::one();
        let ctrl = |u: Matrix2| -> Matrix4 {
            // Control is qubit 0 (least significant): act with u on qubit 1
            // when bit 0 is set. Basis order |00>,|01>,|10>,|11> = |q1 q0>.
            let mut m = Matrix4::identity();
            // The |x1> states are indices 1 and 3.
            m.set(1, 1, u.get(0, 0));
            m.set(1, 3, u.get(0, 1));
            m.set(3, 1, u.get(1, 0));
            m.set(3, 3, u.get(1, 1));
            m
        };
        let m = match self {
            Gate::Cx => Matrix4::cnot(),
            Gate::Cy => ctrl(Matrix2::pauli_y()),
            Gate::Cz => ctrl(Matrix2::pauli_z()),
            Gate::Ch => ctrl(Matrix2::hadamard()),
            Gate::Swap => Matrix4::swap(),
            Gate::Crx(t) => ctrl(Gate::Rx(*t).matrix2().expect("rx matrix")),
            Gate::Cry(t) => ctrl(Gate::Ry(*t).matrix2().expect("ry matrix")),
            Gate::Crz(t) => ctrl(Gate::Rz(*t).matrix2().expect("rz matrix")),
            Gate::Cp(t) => ctrl(Gate::Phase(*t).matrix2().expect("p matrix")),
            Gate::Rxx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                Matrix4::new([[c, z, z, s], [z, c, s, z], [z, s, c, z], [s, z, z, c]])
            }
            Gate::Rzz(t) => {
                let e0 = C64::exp_i(-t / 2.0);
                let e1 = C64::exp_i(t / 2.0);
                Matrix4::new([[e0, z, z, z], [z, e1, z, z], [z, z, e1, z], [z, z, z, e0]])
            }
            Gate::Unitary2(m) => *m.clone(),
            _ => {
                let _ = (z, o);
                return None;
            }
        };
        Some(m)
    }

    /// Number of parameters carried by the gate.
    pub fn num_params(&self) -> usize {
        match self {
            Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_)
            | Gate::Rxx(_)
            | Gate::Rzz(_) => 1,
            Gate::U(_, _, _) => 3,
            _ => 0,
        }
    }

    /// The gate's parameters, if any.
    pub fn params(&self) -> Vec<f64> {
        match self {
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::Phase(t)
            | Gate::Crx(t)
            | Gate::Cry(t)
            | Gate::Crz(t)
            | Gate::Cp(t)
            | Gate::Rxx(t)
            | Gate::Rzz(t) => vec![*t],
            Gate::U(t, p, l) => vec![*t, *p, *l],
            _ => Vec::new(),
        }
    }

    /// Returns `true` when the gate belongs to the IBM hardware basis
    /// `{id, rz, sx, x, cx}` used throughout the paper's evaluation.
    pub fn in_ibm_basis(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Rz(_)
                | Gate::Sx
                | Gate::X
                | Gate::Cx
                | Gate::Measure
                | Gate::Barrier(_)
        )
    }
}

/// The IBM `U(θ, φ, λ)` matrix.
fn u_matrix(theta: f64, phi: f64, lam: f64) -> Matrix2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix2::new([
        [C64::real(c), C64::exp_i(lam).scale(-s)],
        [C64::exp_i(phi).scale(s), C64::exp_i(phi + lam).scale(c)],
    ])
}

/// Convenience constant: π.
pub const GATE_PI: f64 = PI;
/// Convenience constant: π/2.
pub const GATE_PI_2: f64 = FRAC_PI_2;

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_math::Matrix4;

    #[test]
    fn names_and_arities() {
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::Rz(0.3).name(), "rz");
        assert_eq!(Gate::Ccx.num_qubits(), 3);
        assert_eq!(Gate::Barrier(5).num_qubits(), 5);
        assert_eq!(Gate::U(0.1, 0.2, 0.3).num_params(), 3);
    }

    #[test]
    fn self_inverse_classification() {
        assert!(Gate::X.is_self_inverse());
        assert!(Gate::Cz.is_self_inverse());
        assert!(!Gate::S.is_self_inverse());
        assert!(!Gate::Rz(0.5).is_self_inverse());
    }

    #[test]
    fn gate_inverses_multiply_to_identity_1q() {
        let gates = [
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.37),
            Gate::Ry(-1.2),
            Gate::Rz(2.1),
            Gate::Phase(0.9),
            Gate::U(0.5, 1.1, -0.3),
        ];
        for g in gates {
            let m = g.matrix2().unwrap();
            let mi = g.inverse().matrix2().unwrap();
            assert!(
                m.mul(&mi)
                    .approx_eq_up_to_phase(&Matrix2::identity(), 1e-10),
                "{} inverse failed",
                g.name()
            );
        }
    }

    #[test]
    fn gate_inverses_multiply_to_identity_2q() {
        let gates = [
            Gate::Crx(0.7),
            Gate::Cp(1.3),
            Gate::Rzz(0.4),
            Gate::Rxx(-0.8),
        ];
        for g in gates {
            let m = g.matrix4().unwrap();
            let mi = g.inverse().matrix4().unwrap();
            assert!(
                m.mul(&mi)
                    .approx_eq_up_to_phase(&Matrix4::identity(), 1e-10),
                "{} inverse failed",
                g.name()
            );
        }
    }

    #[test]
    fn matrices_are_unitary() {
        let one_q = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.3),
            Gate::Ry(0.3),
            Gate::Rz(0.3),
            Gate::Phase(0.3),
            Gate::U(1.0, 2.0, 3.0),
        ];
        for g in one_q {
            assert!(g.matrix2().unwrap().is_unitary(1e-10), "{}", g.name());
        }
        let two_q = [
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Ch,
            Gate::Swap,
            Gate::Crx(0.4),
            Gate::Cp(0.4),
            Gate::Rxx(0.4),
            Gate::Rzz(0.4),
        ];
        for g in two_q {
            assert!(g.matrix4().unwrap().is_unitary(1e-10), "{}", g.name());
        }
    }

    #[test]
    fn u_gate_special_cases() {
        // U(0,0,λ) == Phase(λ) up to phase, U(π/2,0,π) == H up to phase.
        let p = Gate::U(0.0, 0.0, 0.7).matrix2().unwrap();
        assert!(p.approx_eq_up_to_phase(&Gate::Phase(0.7).matrix2().unwrap(), 1e-10));
        let h = Gate::U(GATE_PI_2, 0.0, GATE_PI).matrix2().unwrap();
        assert!(h.approx_eq_up_to_phase(&Matrix2::hadamard(), 1e-10));
    }

    #[test]
    fn sx_squares_to_x() {
        let sx = Gate::Sx.matrix2().unwrap();
        assert!(sx
            .mul(&sx)
            .approx_eq_up_to_phase(&Matrix2::pauli_x(), 1e-10));
    }

    #[test]
    fn cz_is_symmetric_under_qubit_swap() {
        let cz = Gate::Cz.matrix4().unwrap();
        assert!(cz.approx_eq(&cz.swap_qubits(), 1e-12));
        let cx = Gate::Cx.matrix4().unwrap();
        assert!(!cx.approx_eq(&cx.swap_qubits(), 1e-12));
    }

    #[test]
    fn every_named_gate_round_trips_through_from_qasm_name() {
        // All gates constructible from (name, params) alone — i.e. everything
        // except the matrix payloads (`unitary1`/`unitary2`) and `barrier`.
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.25),
            Gate::Ry(-1.5),
            Gate::Rz(2.125),
            Gate::Phase(0.3),
            Gate::U(0.1, 0.2, 0.3),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Ch,
            Gate::Swap,
            Gate::Crx(0.7),
            Gate::Cry(0.8),
            Gate::Crz(0.9),
            Gate::Cp(1.1),
            Gate::Rxx(1.2),
            Gate::Rzz(1.3),
            Gate::Ccx,
            Gate::Cswap,
            Gate::Measure,
        ];
        for gate in gates {
            let rebuilt = Gate::from_qasm_name(gate.name(), &gate.params());
            assert_eq!(
                rebuilt,
                Some(gate.clone()),
                "{} did not round-trip",
                gate.name()
            );
            // And the other direction: name→gate→name.
            assert_eq!(rebuilt.unwrap().name(), gate.name());
        }
    }

    #[test]
    fn from_qasm_name_rejects_unknowns_and_payload_gates() {
        assert_eq!(Gate::from_qasm_name("nope", &[]), None);
        assert_eq!(Gate::from_qasm_name("cx", &[0.5]), None);
        assert_eq!(Gate::from_qasm_name("rz", &[]), None);
        assert_eq!(Gate::from_qasm_name("u", &[0.1]), None);
        assert_eq!(Gate::from_qasm_name("unitary1", &[]), None);
        assert_eq!(Gate::from_qasm_name("unitary2", &[]), None);
        assert_eq!(Gate::from_qasm_name("barrier", &[]), None);
    }

    #[test]
    fn legacy_spellings_map_to_canonical_gates() {
        assert_eq!(Gate::from_qasm_name("u1", &[0.4]), Some(Gate::Phase(0.4)));
        assert_eq!(Gate::from_qasm_name("cu1", &[0.4]), Some(Gate::Cp(0.4)));
        assert_eq!(
            Gate::from_qasm_name("u3", &[0.1, 0.2, 0.3]),
            Some(Gate::U(0.1, 0.2, 0.3))
        );
        assert_eq!(
            Gate::from_qasm_name("u2", &[0.2, 0.3]),
            Some(Gate::U(FRAC_PI_2, 0.2, 0.3))
        );
    }

    #[test]
    fn ibm_basis_membership() {
        assert!(Gate::Rz(0.2).in_ibm_basis());
        assert!(Gate::Cx.in_ibm_basis());
        assert!(!Gate::H.in_ibm_basis());
        assert!(!Gate::Swap.in_ibm_basis());
    }
}
