//! Dense state-vector and unitary construction for *small* circuits.
//!
//! This module exists for correctness checking: property tests and the
//! transpiler's equivalence assertions build the full `2ⁿ × 2ⁿ` unitary of a
//! circuit (n ≤ ~12) and compare it before/after a transformation. The noisy
//! simulator crate reuses [`apply_instruction`] as its state-update kernel.
//!
//! Bit convention: qubit `q` is bit `q` of the basis-state index
//! (little-endian), matching the gate-matrix convention where the first
//! listed qubit of an instruction is least significant.

use nassc_math::C64;

use crate::circuit::QuantumCircuit;
use crate::gate::Gate;
use crate::instruction::Instruction;

/// A dense `dim × dim` complex matrix stored column-major as flat data,
/// representing the unitary of a whole circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitUnitary {
    dim: usize,
    /// `data[col * dim + row]`.
    data: Vec<C64>,
}

impl CircuitUnitary {
    /// The matrix dimension (`2^num_qubits`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element access (row, column).
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[col * self.dim + row]
    }

    /// Compares two unitaries entry-wise ignoring a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &CircuitUnitary, tol: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        // Find the largest entry of `other` to fix the phase.
        let mut best = 0usize;
        for (i, v) in other.data.iter().enumerate() {
            if v.norm_sqr() > other.data[best].norm_sqr() {
                best = i;
            }
        }
        if other.data[best].abs() <= tol {
            return self.data.iter().all(|v| v.abs() <= tol);
        }
        let phase = self.data[best] / other.data[best];
        if (phase.abs() - 1.0).abs() > 1e-6 {
            return false;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| a.approx_eq(*b * phase, tol))
    }

    /// Reorders the *output* wires of the unitary according to `perm`, where
    /// logical output wire `i` is moved to wire `perm[i]`. This is used to
    /// compare a routed circuit (which ends with its qubits permuted by the
    /// inserted SWAPs and the chosen layout) against the original.
    pub fn permute_output(&self, perm: &[usize]) -> CircuitUnitary {
        let n = perm.len();
        assert_eq!(self.dim, 1 << n, "permutation size must match qubit count");
        let mut out = vec![C64::zero(); self.data.len()];
        for col in 0..self.dim {
            for row in 0..self.dim {
                let mut new_row = 0usize;
                for (i, &p) in perm.iter().enumerate() {
                    if (row >> i) & 1 == 1 {
                        new_row |= 1 << p;
                    }
                }
                out[col * self.dim + new_row] = self.data[col * self.dim + row];
            }
        }
        CircuitUnitary {
            dim: self.dim,
            data: out,
        }
    }
}

/// Applies one instruction to a dense state vector in place.
///
/// # Panics
///
/// Panics on `Measure` (not a unitary operation) and on gates without a
/// matrix representation for their arity.
pub fn apply_instruction(state: &mut [C64], num_qubits: usize, inst: &Instruction) {
    match &inst.gate {
        Gate::Barrier(_) => {}
        Gate::Measure => panic!("cannot apply a measurement as a unitary"),
        Gate::Ccx => {
            let (c1, c2, t) = (inst.qubit(0), inst.qubit(1), inst.qubit(2));
            for idx in 0..state.len() {
                if (idx >> c1) & 1 == 1 && (idx >> c2) & 1 == 1 && (idx >> t) & 1 == 0 {
                    state.swap(idx, idx | (1 << t));
                }
            }
        }
        Gate::Cswap => {
            let (c, a, b) = (inst.qubit(0), inst.qubit(1), inst.qubit(2));
            for idx in 0..state.len() {
                let bit_a = (idx >> a) & 1;
                let bit_b = (idx >> b) & 1;
                if (idx >> c) & 1 == 1 && bit_a == 1 && bit_b == 0 {
                    let other = (idx & !(1 << a)) | (1 << b);
                    state.swap(idx, other);
                }
            }
        }
        gate if gate.num_qubits() == 1 => {
            let m = gate
                .matrix2()
                .expect("single-qubit gate must have a matrix");
            let q = inst.qubit(0);
            let stride = 1usize << q;
            let dim = 1usize << num_qubits;
            let mut idx = 0;
            while idx < dim {
                if (idx >> q) & 1 == 0 {
                    let a = state[idx];
                    let b = state[idx + stride];
                    state[idx] = m.get(0, 0) * a + m.get(0, 1) * b;
                    state[idx + stride] = m.get(1, 0) * a + m.get(1, 1) * b;
                }
                idx += 1;
            }
        }
        gate if gate.num_qubits() == 2 => {
            let m = gate.matrix4().expect("two-qubit gate must have a matrix");
            let (q0, q1) = (inst.qubit(0), inst.qubit(1));
            let dim = 1usize << num_qubits;
            for idx in 0..dim {
                if (idx >> q0) & 1 == 0 && (idx >> q1) & 1 == 0 {
                    // Gather the four basis states |q1 q0> = 00, 01, 10, 11.
                    let i00 = idx;
                    let i01 = idx | (1 << q0);
                    let i10 = idx | (1 << q1);
                    let i11 = idx | (1 << q0) | (1 << q1);
                    let v = [state[i00], state[i01], state[i10], state[i11]];
                    let indices = [i00, i01, i10, i11];
                    for (r, &out_idx) in indices.iter().enumerate() {
                        let mut acc = C64::zero();
                        for (c, &vc) in v.iter().enumerate() {
                            acc += m.get(r, c) * vc;
                        }
                        state[out_idx] = acc;
                    }
                }
            }
        }
        other => panic!("unsupported gate {} in unitary construction", other.name()),
    }
}

/// Builds the full unitary matrix of a circuit by applying it to every basis
/// state.
///
/// # Panics
///
/// Panics when the circuit has more than 14 qubits (the dense matrix would
/// not fit in a reasonable amount of memory) or contains measurements.
pub fn circuit_unitary(circuit: &QuantumCircuit) -> CircuitUnitary {
    let n = circuit.num_qubits();
    assert!(
        n <= 14,
        "dense unitary construction is limited to 14 qubits, got {n}"
    );
    let dim = 1usize << n;
    let mut data = vec![C64::zero(); dim * dim];
    for col in 0..dim {
        let column = &mut data[col * dim..(col + 1) * dim];
        column[col] = C64::one();
        for inst in circuit.iter() {
            apply_instruction(column, n, inst);
        }
    }
    CircuitUnitary { dim, data }
}

/// Convenience: `true` when two circuits implement the same unitary up to a
/// global phase.
pub fn circuits_equivalent(a: &QuantumCircuit, b: &QuantumCircuit, tol: f64) -> bool {
    if a.num_qubits() != b.num_qubits() {
        return false;
    }
    circuit_unitary(a).approx_eq_up_to_phase(&circuit_unitary(b), tol)
}

/// Convenience: `true` when circuit `b` equals circuit `a` followed by the
/// output-wire permutation `perm` (logical wire `i` of `a` ends up on wire
/// `perm[i]` of `b`). This is the equivalence notion for routed circuits.
pub fn circuits_equivalent_up_to_permutation(
    a: &QuantumCircuit,
    b: &QuantumCircuit,
    perm: &[usize],
    tol: f64,
) -> bool {
    if a.num_qubits() != b.num_qubits() {
        return false;
    }
    let ua = circuit_unitary(a).permute_output(perm);
    let ub = circuit_unitary(b);
    ua.approx_eq_up_to_phase(&ub, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit_unitary() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let u = circuit_unitary(&qc);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // Column 0 = (|00> + |11>)/sqrt2.
        assert!(u.get(0, 0).approx_eq(C64::real(s), 1e-12));
        assert!(u.get(3, 0).approx_eq(C64::real(s), 1e-12));
        assert!(u.get(1, 0).is_zero(1e-12));
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut a = QuantumCircuit::new(2);
        a.swap(0, 1);
        let mut b = QuantumCircuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn ccx_decomposition_matches() {
        // Standard 6-CNOT Toffoli decomposition.
        let mut a = QuantumCircuit::new(3);
        a.ccx(0, 1, 2);
        let mut b = QuantumCircuit::new(3);
        b.h(2)
            .cx(1, 2)
            .tdg(2)
            .cx(0, 2)
            .t(2)
            .cx(1, 2)
            .tdg(2)
            .cx(0, 2)
            .t(1)
            .t(2)
            .h(2)
            .cx(0, 1)
            .t(0)
            .tdg(1)
            .cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn permutation_equivalence_of_routed_swap() {
        // Circuit a: cx(0,1). Circuit b: swap(0,1) then cx(1,0): the logical
        // wires end up exchanged, which the permutation accounts for.
        let mut a = QuantumCircuit::new(2);
        a.cx(0, 1);
        let mut b = QuantumCircuit::new(2);
        b.swap(0, 1).cx(1, 0);
        assert!(circuits_equivalent_up_to_permutation(
            &a,
            &b,
            &[1, 0],
            1e-10
        ));
        assert!(!circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn different_circuits_are_not_equivalent() {
        let mut a = QuantumCircuit::new(2);
        a.cx(0, 1);
        let mut b = QuantumCircuit::new(2);
        b.cx(1, 0);
        assert!(!circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn global_phase_is_ignored() {
        let mut a = QuantumCircuit::new(1);
        a.rz(1.0, 0);
        let mut b = QuantumCircuit::new(1);
        b.p(1.0, 0); // p = rz up to global phase
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn cswap_swaps_conditionally() {
        let mut qc = QuantumCircuit::new(3);
        qc.append(Gate::Cswap, vec![0, 1, 2]);
        let u = circuit_unitary(&qc);
        // |c=1, q1=1, q2=0> = index 0b011 = 3 maps to |c=1,q1=0,q2=1> = 0b101 = 5.
        assert!(u.get(5, 3).approx_eq(C64::one(), 1e-12));
        assert!(u.get(3, 3).is_zero(1e-12));
        // Control off: |011 with c=0> stays.
        assert!(u.get(2, 2).approx_eq(C64::one(), 1e-12));
    }

    #[test]
    fn barrier_is_identity() {
        let mut a = QuantumCircuit::new(2);
        a.h(0).barrier_all().cx(0, 1);
        let mut b = QuantumCircuit::new(2);
        b.h(0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-12));
    }
}
