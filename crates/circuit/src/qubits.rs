//! Compact qubit-index storage for instructions.
//!
//! Every fixed-arity gate in the IR touches at most three qubits (the
//! 3-qubit `ccx`/`cswap` are the widest), so instruction qubit lists live
//! inline as `[u32; 3]` with no heap allocation; only barriers and other
//! variable-arity operations spill to a boxed slice. At 24 bytes the list is
//! the same size as the `Vec<usize>` it replaced, but a `QuantumCircuit` of
//! named gates is now one contiguous buffer — pushing a gate (including every
//! SWAP the router inserts) allocates nothing.

/// Inline capacity: covers every fixed-arity gate in the IR.
const INLINE: usize = 3;

#[derive(Clone)]
enum Repr {
    Inline { len: u8, qs: [u32; INLINE] },
    Spill(Box<[u32]>),
}

/// The qubit indices an instruction acts on, in gate-specific order.
///
/// Indices are stored as `u32` (4 billion qubits is beyond any device this
/// pipeline will meet) and surfaced as `usize` everywhere. Lists of up to
/// three qubits are stored inline without heap allocation.
///
/// # Example
///
/// ```
/// use nassc_circuit::QubitList;
///
/// let qs: QubitList = [2usize, 5].into();
/// assert_eq!(qs.len(), 2);
/// assert_eq!(qs.get(1), 5);
/// assert_eq!(qs.to_vec(), vec![2, 5]);
/// ```
#[derive(Clone)]
pub struct QubitList(Repr);

impl QubitList {
    fn to_u32(q: usize) -> u32 {
        u32::try_from(q).expect("qubit index exceeds u32 range")
    }

    /// Builds a list from a slice of qubit indices.
    ///
    /// # Panics
    ///
    /// Panics when an index does not fit in `u32`.
    pub fn from_slice(qubits: &[usize]) -> Self {
        if qubits.len() <= INLINE {
            let mut qs = [0u32; INLINE];
            for (slot, &q) in qs.iter_mut().zip(qubits) {
                *slot = Self::to_u32(q);
            }
            Self(Repr::Inline {
                len: qubits.len() as u8,
                qs,
            })
        } else {
            Self(Repr::Spill(
                qubits.iter().map(|&q| Self::to_u32(q)).collect(),
            ))
        }
    }

    /// The raw `u32` index slice (the storage representation).
    pub fn as_u32(&self) -> &[u32] {
        match &self.0 {
            Repr::Inline { len, qs } => &qs[..*len as usize],
            Repr::Spill(qs) => qs,
        }
    }

    /// The number of qubits in the list.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spill(qs) => qs.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The qubit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> usize {
        self.as_u32()[i] as usize
    }

    /// Iterates the qubit indices as `usize` values.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = usize> + ExactSizeIterator + '_ {
        self.as_u32().iter().map(|&q| q as usize)
    }

    /// Whether the list contains the given qubit.
    pub fn contains(&self, qubit: usize) -> bool {
        u32::try_from(qubit).is_ok_and(|q| self.as_u32().contains(&q))
    }

    /// The list as a freshly allocated `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The list with every qubit remapped through `f` (allocation-free for
    /// inline lists).
    pub fn map(&self, f: impl Fn(usize) -> usize) -> Self {
        match &self.0 {
            Repr::Inline { len, qs } => {
                let mut mapped = [0u32; INLINE];
                for (slot, &q) in mapped.iter_mut().zip(&qs[..*len as usize]) {
                    *slot = Self::to_u32(f(q as usize));
                }
                Self(Repr::Inline {
                    len: *len,
                    qs: mapped,
                })
            }
            Repr::Spill(qs) => Self(Repr::Spill(
                qs.iter().map(|&q| Self::to_u32(f(q as usize))).collect(),
            )),
        }
    }
}

impl PartialEq for QubitList {
    fn eq(&self, other: &Self) -> bool {
        self.as_u32() == other.as_u32()
    }
}

impl Eq for QubitList {}

impl std::fmt::Debug for QubitList {
    /// Formats exactly like the `Vec<usize>` this type replaced, keeping
    /// `Display for Instruction` (and the lossy QASM comment path) stable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_u32().iter()).finish()
    }
}

impl From<Vec<usize>> for QubitList {
    fn from(qubits: Vec<usize>) -> Self {
        Self::from_slice(&qubits)
    }
}

impl From<&[usize]> for QubitList {
    fn from(qubits: &[usize]) -> Self {
        Self::from_slice(qubits)
    }
}

impl<const N: usize> From<[usize; N]> for QubitList {
    fn from(qubits: [usize; N]) -> Self {
        Self::from_slice(&qubits)
    }
}

impl<'a> IntoIterator for &'a QubitList {
    type Item = usize;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_u32().iter().map(|&q| q as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_up_to_three_qubits() {
        for n in 0..=3usize {
            let qubits: Vec<usize> = (10..10 + n).collect();
            let list = QubitList::from_slice(&qubits);
            assert!(matches!(list.0, Repr::Inline { .. }), "{n} qubits");
            assert_eq!(list.to_vec(), qubits);
            assert_eq!(list.len(), n);
        }
    }

    #[test]
    fn spills_beyond_three_qubits() {
        let qubits: Vec<usize> = (0..7).collect();
        let list = QubitList::from_slice(&qubits);
        assert!(matches!(list.0, Repr::Spill(_)));
        assert_eq!(list.to_vec(), qubits);
    }

    #[test]
    fn equality_and_debug_match_the_vec_representation() {
        let a: QubitList = vec![4usize, 9].into();
        let b: QubitList = [4usize, 9].into();
        assert_eq!(a, b);
        assert_ne!(a, [9usize, 4].into());
        assert_eq!(format!("{a:?}"), format!("{:?}", vec![4usize, 9]));
    }

    #[test]
    fn map_and_contains() {
        let list: QubitList = [1usize, 2, 3].into();
        assert!(list.contains(2));
        assert!(!list.contains(7));
        assert_eq!(list.map(|q| q * 10).to_vec(), vec![10, 20, 30]);
        let wide: QubitList = (0..5).collect::<Vec<_>>().into();
        assert_eq!(wide.map(|q| q + 1).to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stays_pointer_sized() {
        // The whole point: no bigger than the Vec<usize> it replaced.
        assert!(std::mem::size_of::<QubitList>() <= std::mem::size_of::<Vec<usize>>());
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn rejects_indices_beyond_u32() {
        if usize::BITS <= 32 {
            // Cannot construct the offending index on 32-bit targets.
            panic!("qubit index exceeds u32 range");
        }
        let _ = QubitList::from_slice(&[u32::MAX as usize + 1]);
    }
}
