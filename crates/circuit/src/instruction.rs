//! A gate applied to specific qubits.

use crate::gate::Gate;
use crate::qubits::QubitList;

/// One operation of a circuit: a [`Gate`] together with the qubit indices it
/// acts on.
///
/// Qubit order is significant: for controlled gates the control(s) come
/// first, and the first listed qubit is the least-significant bit of the
/// gate's matrix basis.
///
/// Qubits are stored in a compact [`QubitList`] — inline (no heap
/// allocation) for every fixed-arity gate, spilling only for variable-arity
/// operations like barriers — so a `Vec<Instruction>` is one contiguous
/// buffer even at 100k gates.
///
/// # Example
///
/// ```
/// use nassc_circuit::{Gate, Instruction};
///
/// let cx = Instruction::new(Gate::Cx, [0, 3]);
/// assert_eq!(cx.control(), Some(0));
/// assert_eq!(cx.target(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    qubits: QubitList,
}

impl Instruction {
    /// Creates a new instruction. Accepts anything convertible to a
    /// [`QubitList`]: an array literal (allocation-free), a `Vec<usize>`, a
    /// slice, or an existing list.
    ///
    /// # Panics
    ///
    /// Panics when the number of qubits does not match the gate's arity or
    /// when a qubit index is repeated.
    pub fn new(gate: Gate, qubits: impl Into<QubitList>) -> Self {
        let qubits = qubits.into();
        assert_eq!(
            gate.num_qubits(),
            qubits.len(),
            "gate {} expects {} qubits, got {:?}",
            gate.name(),
            gate.num_qubits(),
            qubits
        );
        let qs = qubits.as_u32();
        for (i, a) in qs.iter().enumerate() {
            for b in qs.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate qubit {a} in {} instruction", gate.name());
            }
        }
        Self { gate, qubits }
    }

    /// The qubits the gate acts on, in gate-specific order.
    pub fn qubits(&self) -> &QubitList {
        &self.qubits
    }

    /// The qubit at position `i` of the gate's operand list.
    ///
    /// # Panics
    ///
    /// Panics when `i >= num_qubits()`.
    pub fn qubit(&self, i: usize) -> usize {
        self.qubits.get(i)
    }

    /// The number of qubits the instruction touches.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Returns `true` for two-qubit unitary instructions (the ones routing
    /// cares about).
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_two_qubit()
    }

    /// Returns `true` when the instruction acts on the given qubit.
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.qubits.contains(qubit)
    }

    /// Returns `true` when the two instructions share at least one qubit.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }

    /// The control qubit for controlled two-qubit gates (`cx`, `cz`, …).
    pub fn control(&self) -> Option<usize> {
        match self.gate {
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_) => Some(self.qubits.get(0)),
            _ => None,
        }
    }

    /// The target qubit for controlled two-qubit gates.
    pub fn target(&self) -> Option<usize> {
        match self.gate {
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_) => Some(self.qubits.get(1)),
            _ => None,
        }
    }

    /// Produces the instruction with every qubit remapped through `f`
    /// (allocation-free for fixed-arity gates).
    pub fn map_qubits(&self, f: impl Fn(usize) -> usize) -> Instruction {
        Instruction {
            gate: self.gate.clone(),
            qubits: self.qubits.map(f),
        }
    }

    /// The inverse instruction (same qubits, inverse gate).
    ///
    /// # Panics
    ///
    /// Panics for `Measure`.
    pub fn inverse(&self) -> Instruction {
        Instruction {
            gate: self.gate.inverse(),
            qubits: self.qubits.clone(),
        }
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let params = self.gate.params();
        if params.is_empty() {
            write!(f, "{} {:?}", self.gate.name(), self.qubits)
        } else {
            let p: Vec<String> = params.iter().map(|x| format!("{x:.4}")).collect();
            write!(f, "{}({}) {:?}", self.gate.name(), p.join(","), self.qubits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_target_extraction() {
        let cx = Instruction::new(Gate::Cx, vec![2, 5]);
        assert_eq!(cx.control(), Some(2));
        assert_eq!(cx.target(), Some(5));
        let sw = Instruction::new(Gate::Swap, [1, 3]);
        assert_eq!(sw.control(), None);
    }

    #[test]
    #[should_panic(expected = "expects 2 qubits")]
    fn arity_mismatch_panics() {
        let _ = Instruction::new(Gate::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubit_panics() {
        let _ = Instruction::new(Gate::Cx, vec![1, 1]);
    }

    #[test]
    fn overlap_detection() {
        let a = Instruction::new(Gate::Cx, [0, 1]);
        let b = Instruction::new(Gate::Cx, [1, 2]);
        let c = Instruction::new(Gate::H, [3]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn qubit_remapping() {
        let cx = Instruction::new(Gate::Cx, [0, 1]);
        let mapped = cx.map_qubits(|q| q + 10);
        assert_eq!(mapped.qubits().to_vec(), vec![10, 11]);
        assert_eq!(mapped.gate, Gate::Cx);
    }

    #[test]
    fn inverse_preserves_qubits() {
        let inst = Instruction::new(Gate::S, [4]);
        let inv = inst.inverse();
        assert_eq!(inv.gate, Gate::Sdg);
        assert_eq!(inv.qubits().to_vec(), vec![4]);
    }

    #[test]
    fn display_includes_params() {
        let r = Instruction::new(Gate::Rz(0.5), [2]);
        assert!(format!("{r}").starts_with("rz(0.5000)"));
    }

    #[test]
    fn display_matches_the_old_vec_format() {
        let cx = Instruction::new(Gate::Cx, [0, 3]);
        assert_eq!(format!("{cx}"), "cx [0, 3]");
    }
}
