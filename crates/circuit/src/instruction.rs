//! A gate applied to specific qubits.

use crate::gate::Gate;

/// One operation of a circuit: a [`Gate`] together with the qubit indices it
/// acts on.
///
/// Qubit order is significant: for controlled gates the control(s) come
/// first, and the first listed qubit is the least-significant bit of the
/// gate's matrix basis.
///
/// # Example
///
/// ```
/// use nassc_circuit::{Gate, Instruction};
///
/// let cx = Instruction::new(Gate::Cx, vec![0, 3]);
/// assert_eq!(cx.control(), Some(0));
/// assert_eq!(cx.target(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// The qubits the gate acts on, in gate-specific order.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a new instruction.
    ///
    /// # Panics
    ///
    /// Panics when the number of qubits does not match the gate's arity or
    /// when a qubit index is repeated.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            gate.num_qubits(),
            qubits.len(),
            "gate {} expects {} qubits, got {:?}",
            gate.name(),
            gate.num_qubits(),
            qubits
        );
        for (i, a) in qubits.iter().enumerate() {
            for b in qubits.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate qubit {a} in {} instruction", gate.name());
            }
        }
        Self { gate, qubits }
    }

    /// The number of qubits the instruction touches.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Returns `true` for two-qubit unitary instructions (the ones routing
    /// cares about).
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_two_qubit()
    }

    /// Returns `true` when the instruction acts on the given qubit.
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.qubits.contains(&qubit)
    }

    /// Returns `true` when the two instructions share at least one qubit.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }

    /// The control qubit for controlled two-qubit gates (`cx`, `cz`, …).
    pub fn control(&self) -> Option<usize> {
        match self.gate {
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_) => Some(self.qubits[0]),
            _ => None,
        }
    }

    /// The target qubit for controlled two-qubit gates.
    pub fn target(&self) -> Option<usize> {
        match self.gate {
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cp(_) => Some(self.qubits[1]),
            _ => None,
        }
    }

    /// Produces the instruction with every qubit remapped through `f`.
    pub fn map_qubits(&self, f: impl Fn(usize) -> usize) -> Instruction {
        Instruction {
            gate: self.gate.clone(),
            qubits: self.qubits.iter().map(|&q| f(q)).collect(),
        }
    }

    /// The inverse instruction (same qubits, inverse gate).
    ///
    /// # Panics
    ///
    /// Panics for `Measure`.
    pub fn inverse(&self) -> Instruction {
        Instruction {
            gate: self.gate.inverse(),
            qubits: self.qubits.clone(),
        }
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let params = self.gate.params();
        if params.is_empty() {
            write!(f, "{} {:?}", self.gate.name(), self.qubits)
        } else {
            let p: Vec<String> = params.iter().map(|x| format!("{x:.4}")).collect();
            write!(f, "{}({}) {:?}", self.gate.name(), p.join(","), self.qubits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_target_extraction() {
        let cx = Instruction::new(Gate::Cx, vec![2, 5]);
        assert_eq!(cx.control(), Some(2));
        assert_eq!(cx.target(), Some(5));
        let sw = Instruction::new(Gate::Swap, vec![1, 3]);
        assert_eq!(sw.control(), None);
    }

    #[test]
    #[should_panic(expected = "expects 2 qubits")]
    fn arity_mismatch_panics() {
        let _ = Instruction::new(Gate::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubit_panics() {
        let _ = Instruction::new(Gate::Cx, vec![1, 1]);
    }

    #[test]
    fn overlap_detection() {
        let a = Instruction::new(Gate::Cx, vec![0, 1]);
        let b = Instruction::new(Gate::Cx, vec![1, 2]);
        let c = Instruction::new(Gate::H, vec![3]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn qubit_remapping() {
        let cx = Instruction::new(Gate::Cx, vec![0, 1]);
        let mapped = cx.map_qubits(|q| q + 10);
        assert_eq!(mapped.qubits, vec![10, 11]);
        assert_eq!(mapped.gate, Gate::Cx);
    }

    #[test]
    fn inverse_preserves_qubits() {
        let inst = Instruction::new(Gate::S, vec![4]);
        let inv = inst.inverse();
        assert_eq!(inv.gate, Gate::Sdg);
        assert_eq!(inv.qubits, vec![4]);
    }

    #[test]
    fn display_includes_params() {
        let r = Instruction::new(Gate::Rz(0.5), vec![2]);
        assert!(format!("{r}").starts_with("rz(0.5000)"));
    }
}
