//! Dependency-DAG view of a circuit.
//!
//! Routing (SABRE and NASSC) and several optimization passes need to know,
//! for each gate, which gates must execute before it and which come after it
//! on each qubit wire. [`DagCircuit`] precomputes those relations: a node per
//! instruction, an edge `i → j` whenever `j` consumes a qubit last written by
//! `i`.

use std::collections::HashMap;

use crate::circuit::QuantumCircuit;
use crate::instruction::Instruction;

/// A node of the dependency DAG: one instruction plus its wiring.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Node id; equals the instruction's index in the originating circuit.
    pub id: usize,
    /// The instruction itself.
    pub instruction: Instruction,
    preds: Vec<usize>,
    succs: Vec<usize>,
    wire_pred: HashMap<usize, usize>,
    wire_succ: HashMap<usize, usize>,
}

impl DagNode {
    /// All predecessor node ids (deduplicated, in wire order).
    pub fn predecessors(&self) -> &[usize] {
        &self.preds
    }

    /// All successor node ids (deduplicated, in wire order).
    pub fn successors(&self) -> &[usize] {
        &self.succs
    }

    /// The previous node on the given qubit wire, if any.
    pub fn wire_predecessor(&self, qubit: usize) -> Option<usize> {
        self.wire_pred.get(&qubit).copied()
    }

    /// The next node on the given qubit wire, if any.
    pub fn wire_successor(&self, qubit: usize) -> Option<usize> {
        self.wire_succ.get(&qubit).copied()
    }
}

/// A directed acyclic dependency graph over the instructions of a circuit.
///
/// # Example
///
/// ```
/// use nassc_circuit::{QuantumCircuit, DagCircuit};
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.h(0).cx(0, 1).cx(1, 2);
/// let dag = DagCircuit::from_circuit(&qc);
/// assert_eq!(dag.front_layer(), vec![0]);            // only h(0) is ready
/// assert_eq!(dag.node(2).predecessors(), &[1]);      // cx(1,2) waits on cx(0,1)
/// ```
#[derive(Debug, Clone)]
pub struct DagCircuit {
    num_qubits: usize,
    nodes: Vec<DagNode>,
}

impl DagCircuit {
    /// Builds the DAG from a circuit. Node ids follow instruction order, so
    /// iterating ids `0..len` is a valid topological order.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Self {
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.num_gates());
        // Last node seen on each qubit wire.
        let mut last_on_wire: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

        for (id, inst) in circuit.iter().enumerate() {
            let mut preds = Vec::new();
            let mut wire_pred = HashMap::new();
            for q in inst.qubits().iter() {
                if let Some(p) = last_on_wire[q] {
                    wire_pred.insert(q, p);
                    if !preds.contains(&p) {
                        preds.push(p);
                    }
                    let pred_node = &mut nodes[p];
                    pred_node.wire_succ.insert(q, id);
                    if !pred_node.succs.contains(&id) {
                        pred_node.succs.push(id);
                    }
                }
                last_on_wire[q] = Some(id);
            }
            nodes.push(DagNode {
                id,
                instruction: inst.clone(),
                preds,
                succs: Vec::new(),
                wire_pred,
                wire_succ: HashMap::new(),
            });
        }

        Self {
            num_qubits: circuit.num_qubits(),
            nodes,
        }
    }

    /// The number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of nodes (instructions).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accesses a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &DagNode {
        &self.nodes[id]
    }

    /// Iterates over the nodes in topological (instruction) order.
    pub fn iter(&self) -> std::slice::Iter<'_, DagNode> {
        self.nodes.iter()
    }

    /// Node ids with no predecessors — the initial front layer.
    pub fn front_layer(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.preds.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// The in-degree (number of distinct predecessor nodes) of each node,
    /// indexed by node id. Routing algorithms use this as the initial state
    /// of their "unresolved dependency" counters.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.preds.len()).collect()
    }

    /// Longest-path depth of the DAG, counting only non-directive gates.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for node in &self.nodes {
            let base = node.preds.iter().map(|&p| level[p]).max().unwrap_or(0);
            let own = if node.instruction.gate.is_directive() {
                base
            } else {
                base + 1
            };
            level[node.id] = own;
            max = max.max(own);
        }
        max
    }

    /// Converts the DAG back into a flat circuit (instruction order is the
    /// node-id order, which is topological by construction).
    pub fn to_circuit(&self) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(self.num_qubits);
        for node in &self.nodes {
            qc.push(node.instruction.clone());
        }
        qc
    }

    /// Walks forward along a qubit wire starting *after* `node_id`, returning
    /// the node ids encountered (up to `limit`). Useful for commute-set
    /// searches which the paper caps at 20 gates.
    pub fn wire_walk_forward(&self, node_id: usize, qubit: usize, limit: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut current = self.nodes[node_id].wire_successor(qubit);
        while let Some(id) = current {
            out.push(id);
            if out.len() >= limit {
                break;
            }
            current = self.nodes[id].wire_successor(qubit);
        }
        out
    }

    /// Walks backward along a qubit wire starting *before* `node_id`.
    pub fn wire_walk_backward(&self, node_id: usize, qubit: usize, limit: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut current = self.nodes[node_id].wire_predecessor(qubit);
        while let Some(id) = current {
            out.push(id);
            if out.len() >= limit {
                break;
            }
            current = self.nodes[id].wire_predecessor(qubit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).rz(0.5, 1).cx(1, 2).h(2);
        qc
    }

    #[test]
    fn edges_follow_wires() {
        let dag = DagCircuit::from_circuit(&sample());
        assert_eq!(dag.num_nodes(), 5);
        // h(0) -> cx(0,1) -> rz(1) -> cx(1,2) -> h(2)
        assert_eq!(dag.node(1).predecessors(), &[0]);
        assert_eq!(dag.node(2).predecessors(), &[1]);
        assert_eq!(dag.node(3).predecessors(), &[2]);
        assert_eq!(dag.node(4).predecessors(), &[3]);
        assert_eq!(dag.node(0).successors(), &[1]);
    }

    #[test]
    fn front_layer_has_independent_gates() {
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 1).cx(2, 3).cx(1, 2);
        let dag = DagCircuit::from_circuit(&qc);
        assert_eq!(dag.front_layer(), vec![0, 1]);
        assert_eq!(dag.node(2).predecessors(), &[0, 1]);
    }

    #[test]
    fn roundtrip_to_circuit() {
        let qc = sample();
        let dag = DagCircuit::from_circuit(&qc);
        assert_eq!(dag.to_circuit(), qc);
    }

    #[test]
    fn dag_depth_matches_circuit_depth() {
        let qc = sample();
        let dag = DagCircuit::from_circuit(&qc);
        assert_eq!(dag.depth(), qc.depth());
    }

    #[test]
    fn wire_navigation() {
        let dag = DagCircuit::from_circuit(&sample());
        // Wire 1: cx(0,1)=node1 -> rz=node2 -> cx(1,2)=node3.
        assert_eq!(dag.node(1).wire_successor(1), Some(2));
        assert_eq!(dag.node(3).wire_predecessor(1), Some(2));
        assert_eq!(dag.wire_walk_forward(1, 1, 10), vec![2, 3]);
        assert_eq!(dag.wire_walk_backward(3, 1, 10), vec![2, 1]);
        assert_eq!(dag.wire_walk_forward(1, 1, 1), vec![2]);
    }

    #[test]
    fn multi_qubit_gate_has_single_pred_entry_per_node() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).cx(0, 1);
        let dag = DagCircuit::from_circuit(&qc);
        // Second CX depends on the first via both wires but the pred list is
        // deduplicated.
        assert_eq!(dag.node(1).predecessors(), &[0]);
        assert_eq!(dag.node(1).wire_predecessor(0), Some(0));
        assert_eq!(dag.node(1).wire_predecessor(1), Some(0));
    }

    #[test]
    fn in_degrees_match_predecessor_counts() {
        let dag = DagCircuit::from_circuit(&sample());
        let degrees = dag.in_degrees();
        for node in dag.iter() {
            assert_eq!(degrees[node.id], node.predecessors().len());
        }
        assert_eq!(degrees[0], 0);
    }

    #[test]
    fn directive_nodes_do_not_add_depth() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0);
        qc.append(Gate::Barrier(2), vec![0, 1]);
        qc.h(1);
        let dag = DagCircuit::from_circuit(&qc);
        assert_eq!(dag.depth(), 2);
    }
}
