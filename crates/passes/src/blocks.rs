//! Two-qubit block collection and re-synthesis
//! (Qiskit's `Collect2qBlocks` + `ConsolidateBlocks`/`UnitarySynthesis`).
//!
//! A *two-qubit block* is a maximal run of gates confined to one qubit pair.
//! Because any two-qubit operator can be re-synthesised with at most three
//! CNOTs, collapsing a block and re-synthesising it often removes CNOTs —
//! including CNOTs belonging to freshly inserted SWAP gates, which is the
//! effect NASSC's `C_2q` cost term anticipates during routing.

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_math::Matrix4;
use nassc_synthesis::synthesize_two_qubit;

use crate::manager::{PassError, TranspilePass};

/// A maximal run of gates acting only on one pair of qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoQubitBlock {
    /// The two qubits, as `(low, high)` with `low < high`.
    pub qubits: (usize, usize),
    /// Indices into the circuit's instruction list, in circuit order.
    pub instruction_indices: Vec<usize>,
}

impl TwoQubitBlock {
    /// Number of CNOT gates currently inside the block.
    pub fn cx_count(&self, circuit: &QuantumCircuit) -> usize {
        self.instruction_indices
            .iter()
            .filter(|&&i| circuit.instructions()[i].gate == Gate::Cx)
            .count()
    }

    /// Number of two-qubit gates of any kind currently inside the block.
    pub fn two_qubit_count(&self, circuit: &QuantumCircuit) -> usize {
        self.instruction_indices
            .iter()
            .filter(|&&i| circuit.instructions()[i].is_two_qubit())
            .count()
    }

    /// The 4×4 unitary implemented by the block, in the basis where the
    /// block's low qubit is the least-significant bit.
    pub fn unitary(&self, circuit: &QuantumCircuit) -> Matrix4 {
        let (low, _high) = self.qubits;
        let mut acc = Matrix4::identity();
        for &idx in &self.instruction_indices {
            let inst = &circuit.instructions()[idx];
            let gate_matrix = match inst.num_qubits() {
                1 => {
                    let m = inst.gate.matrix2().expect("block gates have matrices");
                    if inst.qubit(0) == low {
                        nassc_math::Matrix2::identity().kron(&m)
                    } else {
                        m.kron(&nassc_math::Matrix2::identity())
                    }
                }
                2 => {
                    let m = inst.gate.matrix4().expect("block gates have matrices");
                    if inst.qubit(0) == low {
                        m
                    } else {
                        m.swap_qubits()
                    }
                }
                _ => unreachable!("blocks only contain 1- and 2-qubit gates"),
            };
            acc = gate_matrix.mul(&acc);
        }
        acc
    }
}

/// Collects maximal two-qubit blocks from a circuit.
///
/// Leading single-qubit gates on a block's wires are absorbed into the
/// block; barriers, measurements and wider gates terminate blocks.
pub fn collect_two_qubit_blocks(circuit: &QuantumCircuit) -> Vec<TwoQubitBlock> {
    let mut blocks: Vec<TwoQubitBlock> = Vec::new();
    let mut open_block: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    let mut pending_1q: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];

    for (idx, inst) in circuit.iter().enumerate() {
        let is_unitary = inst.gate.is_unitary();
        match (is_unitary, inst.num_qubits()) {
            (true, 1) => {
                let q = inst.qubit(0);
                if let Some(bid) = open_block[q] {
                    blocks[bid].instruction_indices.push(idx);
                } else {
                    pending_1q[q].push(idx);
                }
            }
            (true, 2) => {
                let (a, b) = (inst.qubit(0), inst.qubit(1));
                let same_block = open_block[a].is_some() && open_block[a] == open_block[b];
                if same_block {
                    let bid = open_block[a].expect("checked above");
                    blocks[bid].instruction_indices.push(idx);
                } else {
                    open_block[a] = None;
                    open_block[b] = None;
                    let mut members: Vec<usize> = Vec::new();
                    members.append(&mut pending_1q[a]);
                    members.append(&mut pending_1q[b]);
                    members.sort_unstable();
                    members.push(idx);
                    let bid = blocks.len();
                    blocks.push(TwoQubitBlock {
                        qubits: (a.min(b), a.max(b)),
                        instruction_indices: members,
                    });
                    open_block[a] = Some(bid);
                    open_block[b] = Some(bid);
                }
            }
            _ => {
                // Barriers, measurements and wider gates cut every touched wire.
                for q in inst.qubits().iter() {
                    open_block[q] = None;
                    pending_1q[q].clear();
                }
            }
        }
    }
    blocks
}

/// Maps every instruction index to the id of the block containing it (if any).
pub fn block_membership(circuit: &QuantumCircuit, blocks: &[TwoQubitBlock]) -> Vec<Option<usize>> {
    let mut membership = vec![None; circuit.num_gates()];
    for (bid, block) in blocks.iter().enumerate() {
        for &idx in &block.instruction_indices {
            membership[idx] = Some(bid);
        }
    }
    membership
}

/// Re-synthesises every two-qubit block whose Weyl decomposition certifies a
/// lower CNOT count (the paper's "two-qubit block re-synthesis").
///
/// Blocks whose re-synthesis would not reduce the CNOT count, and blocks
/// whose re-synthesis fails verification, are left untouched.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_passes::{PassManager, TwoQubitBlockResynthesis};
///
/// // A SWAP expanded to three CNOTs followed by a CNOT collapses to 2 CNOTs.
/// let mut qc = QuantumCircuit::new(2);
/// qc.cx(0, 1).cx(1, 0).cx(0, 1).cx(0, 1);
/// let mut pm = PassManager::new();
/// pm.push(TwoQubitBlockResynthesis::default());
/// assert_eq!(pm.run(&qc).unwrap().cx_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoQubitBlockResynthesis;

impl TranspilePass for TwoQubitBlockResynthesis {
    fn name(&self) -> &str {
        "two-qubit-block-resynthesis"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        let blocks = collect_two_qubit_blocks(circuit);
        let membership = block_membership(circuit, &blocks);

        // Decide the replacement (if any) for every block.
        let mut replacements: Vec<Option<Vec<Instruction>>> = vec![None; blocks.len()];
        for (bid, block) in blocks.iter().enumerate() {
            if block.two_qubit_count(circuit) < 2 {
                // Nothing to gain from re-synthesising a single two-qubit gate.
                continue;
            }
            let target = block.unitary(circuit);
            let (low, high) = block.qubits;
            let Ok(synthesized) = synthesize_two_qubit(&target, low, high) else {
                continue;
            };
            let new_cx = synthesized.iter().filter(|i| i.gate == Gate::Cx).count();
            let old_cx = block.cx_count(circuit);
            let old_2q = block.two_qubit_count(circuit);
            // Count non-CX two-qubit gates as CNOT-equivalents conservatively.
            let old_cost = old_cx.max(old_2q);
            if new_cx < old_cost {
                replacements[bid] = Some(synthesized);
            }
        }

        // Emit: each replaced block appears at the position of its first
        // two-qubit member. (Leading absorbed one-qubit gates may sit much
        // earlier in the instruction list; emitting there could hoist the
        // block's two-qubit gates over unrelated gates on the partner wire.)
        let mut first_member: Vec<usize> = vec![usize::MAX; blocks.len()];
        for (bid, block) in blocks.iter().enumerate() {
            first_member[bid] = block
                .instruction_indices
                .iter()
                .copied()
                .find(|&idx| circuit.instructions()[idx].is_two_qubit())
                .unwrap_or_else(|| *block.instruction_indices.first().expect("non-empty block"));
        }
        let mut out = QuantumCircuit::new(circuit.num_qubits());
        for (idx, inst) in circuit.iter().enumerate() {
            match membership[idx] {
                Some(bid) if replacements[bid].is_some() => {
                    if idx == first_member[bid] {
                        for new_inst in replacements[bid].as_ref().expect("checked") {
                            out.push(new_inst.clone());
                        }
                    }
                    // Other members of a replaced block are dropped.
                }
                _ => {
                    out.push(inst.clone());
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent;

    #[test]
    fn collects_simple_block() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).rz(0.2, 1).cx(0, 1).cx(1, 2);
        let blocks = collect_two_qubit_blocks(&qc);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].qubits, (0, 1));
        assert_eq!(blocks[0].instruction_indices, vec![0, 1, 2, 3]);
        assert_eq!(blocks[1].qubits, (1, 2));
        assert_eq!(blocks[1].instruction_indices, vec![4]);
    }

    #[test]
    fn barrier_terminates_blocks() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).barrier_all().cx(0, 1);
        let blocks = collect_two_qubit_blocks(&qc);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn block_unitary_matches_direct_computation() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1).rz(0.7, 1).cx(1, 0);
        let blocks = collect_two_qubit_blocks(&qc);
        assert_eq!(blocks.len(), 1);
        let u = blocks[0].unitary(&qc);
        let full = nassc_circuit::circuit_unitary(&qc);
        for r in 0..4 {
            for c in 0..4 {
                assert!(u.get(r, c).approx_eq(full.get(r, c), 1e-10));
            }
        }
    }

    #[test]
    fn swap_plus_cnot_block_resynthesizes_to_two_cnots() {
        // The motivating example of the paper: a routed SWAP adjacent to a
        // CNOT on the same pair costs only one extra CNOT after re-synthesis.
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1); // original gate
        qc.cx(0, 1).cx(1, 0).cx(0, 1); // inserted SWAP, already decomposed
        let out = TwoQubitBlockResynthesis.run(&qc).unwrap();
        assert_eq!(out.cx_count(), 2);
        // Semantics: the block equals SWAP·CX which is not the original CX,
        // so compare against the input circuit, not the bare CX.
        assert!(circuits_equivalent(&qc, &out, 1e-7));
    }

    #[test]
    fn three_cnot_blocks_absorb_a_swap_for_free() {
        // A generic 3-CNOT block followed by a SWAP still needs only 3 CNOTs.
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1)
            .rz(0.3, 1)
            .ry(0.2, 0)
            .cx(1, 0)
            .rz(0.9, 0)
            .cx(0, 1)
            .ry(1.2, 1);
        qc.swap(0, 1);
        let before = qc.clone();
        let out = TwoQubitBlockResynthesis.run(&qc).unwrap();
        assert!(out.cx_count() <= 3, "got {} CNOTs", out.cx_count());
        assert!(out.swap_count() == 0);
        assert!(circuits_equivalent(&before, &out, 1e-7));
    }

    #[test]
    fn lone_cnot_blocks_are_untouched() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let out = TwoQubitBlockResynthesis.run(&qc).unwrap();
        assert_eq!(out, qc);
    }

    #[test]
    fn gates_outside_blocks_survive() {
        let mut qc = QuantumCircuit::new(4);
        qc.h(3).cx(0, 1).cx(0, 1).x(3).measure(3);
        let out = TwoQubitBlockResynthesis.run(&qc).unwrap();
        // cx·cx cancels to an empty block; the wire-3 gates stay.
        assert_eq!(out.cx_count(), 0);
        assert_eq!(out.count_ops()["measure"], 1);
        assert_eq!(out.count_ops()["h"], 1);
    }

    #[test]
    fn membership_maps_back_to_blocks() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).h(2).cx(0, 1);
        let blocks = collect_two_qubit_blocks(&qc);
        let membership = block_membership(&qc, &blocks);
        assert_eq!(membership[0], Some(0));
        assert_eq!(membership[1], None);
        assert_eq!(membership[2], Some(0));
    }

    #[test]
    fn random_circuits_preserve_semantics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut qc = QuantumCircuit::new(3);
            for _ in 0..25 {
                match rng.gen_range(0..5) {
                    0 => {
                        qc.h(rng.gen_range(0..3));
                    }
                    1 => {
                        qc.rz(rng.gen_range(-3.0..3.0), rng.gen_range(0..3));
                    }
                    2 => {
                        qc.t(rng.gen_range(0..3));
                    }
                    _ => {
                        let a = rng.gen_range(0..3);
                        let b = (a + rng.gen_range(1..3)) % 3;
                        qc.cx(a, b);
                    }
                }
            }
            let out = TwoQubitBlockResynthesis.run(&qc).unwrap();
            assert!(circuits_equivalent(&qc, &out, 1e-6));
            assert!(out.cx_count() <= qc.cx_count());
        }
    }
}
