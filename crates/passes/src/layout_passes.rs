//! Layout application and coupling-map compliance checking.

use nassc_circuit::QuantumCircuit;
use nassc_topology::{CouplingMap, Layout};

/// Rewrites a logical circuit onto the physical qubits of a device: logical
/// qubit `l` becomes physical wire `layout.physical_of(l)` and the circuit is
/// widened to the device size.
///
/// # Panics
///
/// Panics when the device has fewer qubits than the circuit.
pub fn apply_layout(
    circuit: &QuantumCircuit,
    layout: &Layout,
    device_qubits: usize,
) -> QuantumCircuit {
    assert!(
        device_qubits >= circuit.num_qubits(),
        "device has {device_qubits} qubits but the circuit needs {}",
        circuit.num_qubits()
    );
    circuit.map_qubits(device_qubits, |q| layout.physical_of(q))
}

/// Checks that every two-qubit gate acts on a connected pair of physical
/// qubits, returning the indices of violating instructions.
pub fn coupling_violations(circuit: &QuantumCircuit, coupling: &CouplingMap) -> Vec<usize> {
    circuit
        .iter()
        .enumerate()
        .filter(|(_, inst)| {
            inst.is_two_qubit() && !coupling.are_connected(inst.qubit(0), inst.qubit(1))
        })
        .map(|(idx, _)| idx)
        .collect()
}

/// Convenience: `true` when the circuit respects the coupling map.
pub fn is_mapped(circuit: &QuantumCircuit, coupling: &CouplingMap) -> bool {
    coupling_violations(circuit, coupling).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_application_remaps_and_widens() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let layout = Layout::from_logical_to_physical(vec![3, 1, 0, 2, 4]);
        let mapped = apply_layout(&qc, &layout, 5);
        assert_eq!(mapped.num_qubits(), 5);
        assert_eq!(mapped.instructions()[0].qubits().to_vec(), vec![3]);
        assert_eq!(mapped.instructions()[1].qubits().to_vec(), vec![3, 1]);
    }

    #[test]
    fn violations_found_on_linear_device() {
        let line = CouplingMap::linear(4);
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 1).cx(0, 3).cx(2, 3);
        assert_eq!(coupling_violations(&qc, &line), vec![1]);
        assert!(!is_mapped(&qc, &line));
    }

    #[test]
    fn compliant_circuit_passes() {
        let line = CouplingMap::linear(4);
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 1).cx(2, 1).h(3).measure(3);
        assert!(is_mapped(&qc, &line));
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn too_small_device_panics() {
        let qc = QuantumCircuit::new(5);
        let layout = Layout::trivial(5);
        let _ = apply_layout(&qc, &layout, 3);
    }
}
