//! Merging of single-qubit gate runs (Qiskit's `Optimize1qGates`).

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_math::Matrix2;
use nassc_synthesis::OneQubitEulerDecomposer;

use crate::manager::{PassError, TranspilePass};

/// Collapses every maximal run of consecutive single-qubit gates on a wire
/// into at most `rz·sx·rz·sx·rz`, dropping runs that multiply to the
/// identity.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_passes::{Optimize1qGates, PassManager};
///
/// let mut qc = QuantumCircuit::new(1);
/// qc.t(0).t(0).s(0).z(0); // multiplies to the identity (up to phase)
/// let mut pm = PassManager::new();
/// pm.push(Optimize1qGates::default());
/// assert_eq!(pm.run(&qc).unwrap().num_gates(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Optimize1qGates;

impl TranspilePass for Optimize1qGates {
    fn name(&self) -> &str {
        "optimize-1q-gates"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        let mut out = QuantumCircuit::new(circuit.num_qubits());
        // Pending single-qubit matrix accumulated per wire (in circuit order).
        let mut pending: Vec<Option<Matrix2>> = vec![None; circuit.num_qubits()];

        let flush = |out: &mut QuantumCircuit, pending: &mut Vec<Option<Matrix2>>, qubit: usize| {
            if let Some(m) = pending[qubit].take() {
                for inst in OneQubitEulerDecomposer::to_zsx(&m, qubit) {
                    out.push(inst);
                }
            }
        };

        for inst in circuit.iter() {
            let is_mergeable_1q = inst.gate.is_unitary() && inst.gate.num_qubits() == 1;
            if is_mergeable_1q {
                let m = inst.gate.matrix2().ok_or_else(|| {
                    PassError::new("optimize-1q-gates", "single-qubit gate without matrix")
                })?;
                let q = inst.qubit(0);
                let acc = pending[q].take().unwrap_or_else(Matrix2::identity);
                pending[q] = Some(m.mul(&acc));
            } else {
                for q in inst.qubits().iter() {
                    flush(&mut out, &mut pending, q);
                }
                out.push(inst.clone());
            }
        }
        for q in 0..circuit.num_qubits() {
            flush(&mut out, &mut pending, q);
        }
        Ok(out)
    }
}

/// Convenience wrapper: merge runs but emit a single [`Gate::Unitary1`]
/// instead of basis gates — useful when a later pass wants the matrices.
#[derive(Debug, Clone, Copy, Default)]
pub struct Collect1qRuns;

impl TranspilePass for Collect1qRuns {
    fn name(&self) -> &str {
        "collect-1q-runs"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        let mut out = QuantumCircuit::new(circuit.num_qubits());
        let mut pending: Vec<Option<Matrix2>> = vec![None; circuit.num_qubits()];
        let flush = |out: &mut QuantumCircuit, pending: &mut Vec<Option<Matrix2>>, qubit: usize| {
            if let Some(m) = pending[qubit].take() {
                if !m.approx_eq_up_to_phase(&Matrix2::identity(), 1e-10) {
                    out.push(Instruction::new(Gate::Unitary1(m), vec![qubit]));
                }
            }
        };
        for inst in circuit.iter() {
            if inst.gate.is_unitary() && inst.gate.num_qubits() == 1 {
                let m = inst.gate.matrix2().ok_or_else(|| {
                    PassError::new("collect-1q-runs", "single-qubit gate without matrix")
                })?;
                let q = inst.qubit(0);
                let acc = pending[q].take().unwrap_or_else(Matrix2::identity);
                pending[q] = Some(m.mul(&acc));
            } else {
                for q in inst.qubits().iter() {
                    flush(&mut out, &mut pending, q);
                }
                out.push(inst.clone());
            }
        }
        for q in 0..circuit.num_qubits() {
            flush(&mut out, &mut pending, q);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent;

    #[test]
    fn merges_runs_across_other_wires() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).x(1).h(0); // The x(1) does not break the run on wire 0.
        let out = Optimize1qGates.run(&qc).unwrap();
        // h·h cancels, x(1) stays.
        assert_eq!(out.num_gates(), 1);
        assert_eq!(out.instructions()[0].qubits().to_vec(), vec![1]);
    }

    #[test]
    fn runs_are_cut_by_two_qubit_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1).h(0);
        let out = Optimize1qGates.run(&qc).unwrap();
        // The two Hadamards cannot merge across the CX.
        assert!(out.num_gates() > 1);
        assert!(circuits_equivalent(&qc, &out, 1e-8));
        assert_eq!(out.cx_count(), 1);
    }

    #[test]
    fn preserves_semantics_on_mixed_circuit() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0)
            .t(0)
            .s(1)
            .cx(0, 1)
            .rz(0.3, 1)
            .ry(0.2, 1)
            .cx(1, 2)
            .h(2)
            .h(2);
        let out = Optimize1qGates.run(&qc).unwrap();
        assert!(circuits_equivalent(&qc, &out, 1e-8));
        // The trailing h·h pair on wire 2 multiplies to the identity and is
        // dropped entirely.
        assert!(!out
            .iter()
            .any(|i| i.qubits().to_vec() == vec![2] && i.gate.is_unitary()));
    }

    #[test]
    fn output_single_qubit_gates_are_in_basis() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).t(0).ry(0.4, 0);
        let out = Optimize1qGates.run(&qc).unwrap();
        assert!(out.iter().all(|i| i.gate.in_ibm_basis()));
    }

    #[test]
    fn collect_runs_emits_unitary_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).t(0).cx(0, 1).s(1);
        let out = Collect1qRuns.run(&qc).unwrap();
        assert_eq!(out.count_ops()["unitary1"], 2);
        assert!(circuits_equivalent(&qc, &out, 1e-8));
    }

    #[test]
    fn measurement_flushes_pending_run() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).measure(0);
        let out = Optimize1qGates.run(&qc).unwrap();
        // The Hadamard must stay ahead of the measurement.
        assert!(out.num_gates() >= 2);
        assert_eq!(out.instructions().last().unwrap().gate, Gate::Measure);
    }
}
