//! Unrolling to the IBM hardware basis `{id, rz, sx, x, cx}`.

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_synthesis::{synthesize_two_qubit, OneQubitEulerDecomposer};

use crate::manager::{PassError, TranspilePass};

/// Decomposes every gate into the IBM basis `{id, rz, sx, x, cx}`
/// (measurements and barriers pass through).
///
/// Single-qubit gates go through the ZSX Euler template; two-qubit gates
/// other than `cx` are re-synthesised from their matrix via the Weyl
/// decomposition; `swap` expands to three CNOTs; `ccx`/`cswap` use the
/// standard Toffoli construction.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_passes::{PassManager, UnrollToBasis};
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0).cz(0, 1);
/// let mut pm = PassManager::new();
/// pm.push(UnrollToBasis::default());
/// let unrolled = pm.run(&qc).unwrap();
/// assert!(unrolled.iter().all(|i| i.gate.in_ibm_basis()));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrollToBasis;

impl TranspilePass for UnrollToBasis {
    fn name(&self) -> &str {
        "unroll-to-basis"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        let mut out = QuantumCircuit::new(circuit.num_qubits());
        for inst in circuit.iter() {
            for lowered in unroll_instruction(inst)? {
                out.push(lowered);
            }
        }
        Ok(out)
    }
}

/// Lowers one instruction to basis gates.
fn unroll_instruction(inst: &Instruction) -> Result<Vec<Instruction>, PassError> {
    if inst.gate.in_ibm_basis() {
        return Ok(vec![inst.clone()]);
    }
    match &inst.gate {
        Gate::Swap => Ok(nassc_synthesis::swap_decomposition(
            inst.qubit(0),
            inst.qubit(1),
            nassc_synthesis::SwapOrientation::FirstQubitControl,
        )),
        Gate::Ccx => Ok(toffoli(inst.qubit(0), inst.qubit(1), inst.qubit(2))
            .into_iter()
            .flat_map(|i| unroll_instruction(&i).expect("toffoli gates are simple"))
            .collect()),
        Gate::Cswap => {
            // CSWAP(c, a, b) = CX(b, a) · CCX(c, a, b) · CX(b, a).
            let (c, a, b) = (inst.qubit(0), inst.qubit(1), inst.qubit(2));
            let mut gates = vec![Instruction::new(Gate::Cx, vec![b, a])];
            gates.extend(toffoli(c, a, b));
            gates.push(Instruction::new(Gate::Cx, vec![b, a]));
            Ok(gates
                .into_iter()
                .flat_map(|i| unroll_instruction(&i).expect("cswap gates are simple"))
                .collect())
        }
        gate if gate.num_qubits() == 1 => {
            let m = gate.matrix2().ok_or_else(|| {
                PassError::new("unroll-to-basis", format!("no matrix for {}", gate.name()))
            })?;
            Ok(OneQubitEulerDecomposer::to_zsx(&m, inst.qubit(0)))
        }
        gate if gate.num_qubits() == 2 => {
            let m = gate.matrix4().ok_or_else(|| {
                PassError::new("unroll-to-basis", format!("no matrix for {}", gate.name()))
            })?;
            let synthesized = synthesize_two_qubit(&m, inst.qubit(0), inst.qubit(1))
                .map_err(|e| PassError::new("unroll-to-basis", e.to_string()))?;
            Ok(synthesized
                .into_iter()
                .flat_map(|i| unroll_instruction(&i).expect("synthesized gates are 1q or cx"))
                .collect())
        }
        other => Err(PassError::new(
            "unroll-to-basis",
            format!("cannot lower gate {}", other.name()),
        )),
    }
}

/// The standard 6-CNOT Toffoli decomposition.
fn toffoli(c1: usize, c2: usize, target: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::H, vec![target]),
        Instruction::new(Gate::Cx, vec![c2, target]),
        Instruction::new(Gate::Tdg, vec![target]),
        Instruction::new(Gate::Cx, vec![c1, target]),
        Instruction::new(Gate::T, vec![target]),
        Instruction::new(Gate::Cx, vec![c2, target]),
        Instruction::new(Gate::Tdg, vec![target]),
        Instruction::new(Gate::Cx, vec![c1, target]),
        Instruction::new(Gate::T, vec![c2]),
        Instruction::new(Gate::T, vec![target]),
        Instruction::new(Gate::H, vec![target]),
        Instruction::new(Gate::Cx, vec![c1, c2]),
        Instruction::new(Gate::T, vec![c1]),
        Instruction::new(Gate::Tdg, vec![c2]),
        Instruction::new(Gate::Cx, vec![c1, c2]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent;

    fn unroll(circuit: &QuantumCircuit) -> QuantumCircuit {
        UnrollToBasis.run(circuit).expect("unroll")
    }

    #[test]
    fn basis_gates_pass_through() {
        let mut qc = QuantumCircuit::new(2);
        qc.x(0).rz(0.3, 1).sx(0).cx(0, 1);
        assert_eq!(unroll(&qc), qc);
    }

    #[test]
    fn one_qubit_gates_lower_equivalently() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).t(0).s(0).ry(0.7, 0).u(0.2, 0.4, 0.6, 0);
        let lowered = unroll(&qc);
        assert!(lowered.iter().all(|i| i.gate.in_ibm_basis()));
        assert!(circuits_equivalent(&qc, &lowered, 1e-8));
    }

    #[test]
    fn two_qubit_gates_lower_equivalently() {
        let mut qc = QuantumCircuit::new(2);
        qc.cz(0, 1).swap(0, 1).cp(0.5, 1, 0).crx(1.1, 0, 1);
        let lowered = unroll(&qc);
        assert!(lowered.iter().all(|i| i.gate.in_ibm_basis()));
        assert!(circuits_equivalent(&qc, &lowered, 1e-7));
    }

    #[test]
    fn toffoli_lowers_equivalently() {
        let mut qc = QuantumCircuit::new(3);
        qc.ccx(0, 1, 2);
        let lowered = unroll(&qc);
        assert!(lowered.iter().all(|i| i.gate.in_ibm_basis()));
        assert_eq!(lowered.cx_count(), 6);
        assert!(circuits_equivalent(&qc, &lowered, 1e-8));
    }

    #[test]
    fn cswap_lowers_equivalently() {
        let mut qc = QuantumCircuit::new(3);
        qc.append(Gate::Cswap, vec![0, 1, 2]);
        let lowered = unroll(&qc);
        assert!(lowered.iter().all(|i| i.gate.in_ibm_basis()));
        assert!(circuits_equivalent(&qc, &lowered, 1e-8));
    }

    #[test]
    fn measurements_and_barriers_survive() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).barrier_all().measure(0).measure(1);
        let lowered = unroll(&qc);
        assert_eq!(lowered.count_ops()["measure"], 2);
        assert_eq!(lowered.count_ops()["barrier"], 1);
    }
}
