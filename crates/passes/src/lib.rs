//! Transpiler pass framework and circuit optimizations for the NASSC
//! reproduction.
//!
//! The crate mirrors the parts of Qiskit's transpiler that interact with
//! qubit routing in the paper:
//!
//! * [`PassManager`] / [`TranspilePass`] — the pipeline scaffolding,
//! * [`UnrollToBasis`] — decomposition into `{id, rz, sx, x, cx}`,
//! * [`Optimize1qGates`] / [`Collect1qRuns`] — single-qubit run merging,
//! * [`TwoQubitBlockResynthesis`] (with [`collect_two_qubit_blocks`]) — the
//!   two-qubit block re-synthesis that NASSC's `C_2q` cost term anticipates,
//! * [`CommutativeCancellation`] (with [`commutation_analysis`]) — the
//!   commutation-based gate cancellation behind `C_commute1`/`C_commute2`,
//! * [`apply_layout`] / [`is_mapped`] — layout application and coupling-map
//!   compliance checks.
//!
//! # Example
//!
//! ```
//! use nassc_circuit::QuantumCircuit;
//! use nassc_passes::{standard_optimization_pipeline, PassManager};
//!
//! let mut qc = QuantumCircuit::new(2);
//! qc.h(0).cx(0, 1).cx(1, 0).cx(0, 1).cx(0, 1); // SWAP + CX on the same pair
//! let optimized = standard_optimization_pipeline().run(&qc).unwrap();
//! assert!(optimized.cx_count() <= 2);
//! ```

pub mod blocks;
pub mod commutation;
pub mod layout_passes;
pub mod manager;
pub mod optimize_1q;
pub mod unroll;

pub use blocks::{
    block_membership, collect_two_qubit_blocks, TwoQubitBlock, TwoQubitBlockResynthesis,
};
pub use commutation::{
    commutation_analysis, instructions_commute, CommutationSets, CommutativeCancellation,
};
pub use layout_passes::{apply_layout, coupling_violations, is_mapped};
pub use manager::{PassError, PassManager, TranspilePass};
pub use optimize_1q::{Collect1qRuns, Optimize1qGates};
pub use unroll::UnrollToBasis;

/// The post-routing optimization pipeline both evaluation arms of the paper
/// share: block re-synthesis, commutation-based cancellation, basis
/// unrolling and single-qubit optimization.
pub fn standard_optimization_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.push(TwoQubitBlockResynthesis);
    pm.push(CommutativeCancellation::default());
    pm.push(TwoQubitBlockResynthesis);
    pm.push(UnrollToBasis);
    pm.push(CommutativeCancellation::default());
    pm.push(Optimize1qGates);
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::QuantumCircuit;

    #[test]
    fn standard_pipeline_produces_basis_gates() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cz(0, 1).swap(1, 2).ccx(0, 1, 2);
        let out = standard_optimization_pipeline().run(&qc).unwrap();
        assert!(out.iter().all(|i| i.gate.in_ibm_basis()));
    }

    #[test]
    fn standard_pipeline_reduces_swap_cnot_pair() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).swap(0, 1);
        let out = standard_optimization_pipeline().run(&qc).unwrap();
        assert!(out.cx_count() <= 2);
    }
}
