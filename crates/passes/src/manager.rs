//! A minimal pass manager mirroring Qiskit's transpiler structure.

use std::fmt;

use nassc_circuit::QuantumCircuit;

/// Error produced when a transpiler pass fails.
#[derive(Debug, Clone, PartialEq)]
pub struct PassError {
    pass: String,
    message: String,
}

impl PassError {
    /// Creates a new error attributed to the named pass.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            pass: pass.into(),
            message: message.into(),
        }
    }

    /// The name of the pass that failed.
    pub fn pass(&self) -> &str {
        &self.pass
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass {} failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// A circuit-to-circuit transformation pass.
///
/// Passes must preserve circuit semantics (up to the documented contract of
/// the pass, e.g. layout application changes qubit indices).
pub trait TranspilePass {
    /// A short identifying name for error messages and logging.
    fn name(&self) -> &str;

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] when the transformation cannot be applied.
    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError>;
}

/// An ordered pipeline of passes.
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_passes::{Optimize1qGates, PassManager};
///
/// let mut qc = QuantumCircuit::new(1);
/// qc.h(0).h(0); // cancels to the identity
///
/// let mut pm = PassManager::new();
/// pm.push(Optimize1qGates::default());
/// let optimized = pm.run(&qc).unwrap();
/// assert_eq!(optimized.num_gates(), 0);
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn TranspilePass>>,
}

impl PassManager {
    /// Creates an empty pass manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass to the pipeline.
    pub fn push<P: TranspilePass + 'static>(&mut self, pass: P) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns `true` when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PassError`] encountered.
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        self.run_with_budget(circuit, &nassc_parallel::Budget::unlimited())
    }

    /// [`run`](Self::run) under a cooperative [`Budget`], checked before
    /// each pass: an exhausted budget aborts the pipeline by unwinding with
    /// a typed [`Cancelled`] payload, caught at the session boundary and
    /// mapped to a deadline error there. On an unexpired budget each
    /// checkpoint is one relaxed atomic load.
    ///
    /// [`Budget`]: nassc_parallel::Budget
    /// [`Cancelled`]: nassc_parallel::Cancelled
    pub fn run_with_budget(
        &self,
        circuit: &QuantumCircuit,
        budget: &nassc_parallel::Budget,
    ) -> Result<QuantumCircuit, PassError> {
        let mut current = circuit.clone();
        for pass in &self.passes {
            budget.checkpoint();
            nassc_circuit::failpoints::hit("pass");
            let _span = nassc_trace::span_owned(pass.name());
            current = pass.run(&current)?;
        }
        Ok(current)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AddHadamard;
    impl TranspilePass for AddHadamard {
        fn name(&self) -> &str {
            "add-hadamard"
        }
        fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
            let mut out = circuit.clone();
            out.h(0);
            Ok(out)
        }
    }

    struct AlwaysFails;
    impl TranspilePass for AlwaysFails {
        fn name(&self) -> &str {
            "always-fails"
        }
        fn run(&self, _circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
            Err(PassError::new("always-fails", "intentional"))
        }
    }

    #[test]
    fn runs_passes_in_order() {
        let mut pm = PassManager::new();
        pm.push(AddHadamard).push(AddHadamard);
        let out = pm.run(&QuantumCircuit::new(1)).unwrap();
        assert_eq!(out.num_gates(), 2);
        assert_eq!(pm.len(), 2);
    }

    #[test]
    fn propagates_errors() {
        let mut pm = PassManager::new();
        pm.push(AddHadamard).push(AlwaysFails);
        let err = pm.run(&QuantumCircuit::new(1)).unwrap_err();
        assert_eq!(err.pass(), "always-fails");
        assert!(format!("{err}").contains("intentional"));
    }

    #[test]
    fn empty_manager_is_identity() {
        let pm = PassManager::new();
        assert!(pm.is_empty());
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1);
        assert_eq!(pm.run(&qc).unwrap(), qc);
    }

    #[test]
    fn debug_lists_pass_names() {
        let mut pm = PassManager::new();
        pm.push(AddHadamard);
        assert!(format!("{pm:?}").contains("add-hadamard"));
    }
}
