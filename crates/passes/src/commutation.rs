//! Commutation analysis and commutative gate cancellation
//! (Qiskit's `CommutationAnalysis` + `CommutativeCancellation`).

use std::collections::HashMap;

use nassc_circuit::{circuit_unitary, Instruction, QuantumCircuit};

use crate::manager::{PassError, TranspilePass};

/// Decides whether two instructions commute as operators (up to global
/// phase, matching the unitary comparison below).
///
/// Non-unitary instructions (measurements, barriers) never commute with
/// anything. Instructions on disjoint qubits always commute. Overlapping
/// pairs first try an exact structural fast path (`commute_fast_path`) —
/// this function sits in both NASSC's in-routing commute searches and the
/// commutation-analysis optimization pass, where multiplying out unitaries
/// for every `rz`-vs-`cx` pair dominated the whole transpile. Pairs the fast
/// path cannot decide fall back to the exact check: both orderings are
/// multiplied out on the (at most four) qubits involved and compared.
pub fn instructions_commute(a: &Instruction, b: &Instruction) -> bool {
    if !a.gate.is_unitary() || !b.gate.is_unitary() {
        return false;
    }
    if !a.overlaps(b) {
        return true;
    }
    if let Some(answer) = commute_fast_path(a, b) {
        return answer;
    }
    commute_by_unitary(a, b)
}

/// The exact fallback: both orderings multiplied out on the union of the
/// qubits involved and compared up to global phase. This is the ground
/// truth every [`commute_fast_path`] verdict must agree with (the test
/// suite sweeps the covered pairs against it).
fn commute_by_unitary(a: &Instruction, b: &Instruction) -> bool {
    // Map the union of qubits onto a compact register.
    let mut qubits: Vec<usize> = a.qubits().iter().chain(b.qubits().iter()).collect();
    qubits.sort_unstable();
    qubits.dedup();
    let index_of = |q: usize| qubits.iter().position(|&x| x == q).expect("qubit in union");
    let mut ab = QuantumCircuit::new(qubits.len());
    ab.push(a.map_qubits(index_of));
    ab.push(b.map_qubits(index_of));
    let mut ba = QuantumCircuit::new(qubits.len());
    ba.push(b.map_qubits(index_of));
    ba.push(a.map_qubits(index_of));
    circuit_unitary(&ab).approx_eq_up_to_phase(&circuit_unitary(&ba), 1e-9)
}

/// Tolerance of the structural fast paths, matching the unitary comparison.
const COMMUTE_TOL: f64 = 1e-9;

/// Structural commutation rules for the gate pairs that dominate routed
/// circuits (`cx`/`swap`/`cz` and single-qubit gates around them). Returns
/// `None` when the pair is not covered — the caller then performs the full
/// unitary comparison. Every `Some` verdict agrees with that comparison:
/// the rules are block-structure identities, with 2×2 matrix conditions (at
/// the same tolerance) standing in for the 4×4/8×8 products.
fn commute_fast_path(a: &Instruction, b: &Instruction) -> Option<bool> {
    use nassc_circuit::Gate;

    // Any instruction commutes with an identical copy of itself.
    if a.gate == b.gate && a.qubits() == b.qubits() {
        return Some(true);
    }
    match (a.num_qubits(), b.num_qubits()) {
        // Overlapping one-qubit gates share their only qubit: compare the
        // 2×2 products directly.
        (1, 1) => {
            let (ma, mb) = (a.gate.matrix2()?, b.gate.matrix2()?);
            Some(mb.mul(&ma).approx_eq_up_to_phase(&ma.mul(&mb), COMMUTE_TOL))
        }
        (1, 2) => one_qubit_vs_two(a, b),
        (2, 1) => one_qubit_vs_two(b, a),
        (2, 2) => {
            let diagonal = |g: &Gate| matches!(g, Gate::Cz | Gate::Cp(_) | Gate::Crz(_));
            // Two diagonal gates always commute, however they overlap.
            if diagonal(&a.gate) && diagonal(&b.gate) {
                return Some(true);
            }
            match (&a.gate, &b.gate) {
                (Gate::Cx, Gate::Cx) => {
                    // CNOTs commute iff they share only controls or only
                    // targets; a control meeting a target does not commute.
                    let control_clash = a.qubit(0) == b.qubit(1) || a.qubit(1) == b.qubit(0);
                    Some(!control_clash)
                }
                // SWAP vs SWAP or vs the exchange-symmetric CZ: on the same
                // pair the SWAP leaves the other gate fixed (qubit order is
                // immaterial for both), so they commute; any partial overlap
                // relabels a wire the other gate uses and never commutes.
                (Gate::Swap, Gate::Swap | Gate::Cz) | (Gate::Cz, Gate::Swap) => {
                    Some(a.acts_on(b.qubit(0)) && a.acts_on(b.qubit(1)))
                }
                // CX is *not* exchange-symmetric: a SWAP on its own pair
                // flips control and target.
                (Gate::Swap, Gate::Cx) | (Gate::Cx, Gate::Swap) => Some(false),
                // A diagonal gate commutes with a CNOT iff it avoids the
                // target wire (`cz` is fixed and never trivial, so touching
                // the target is a definite no).
                (Gate::Cz, Gate::Cx) => Some(!a.acts_on(b.qubit(1))),
                (Gate::Cx, Gate::Cz) => Some(!b.acts_on(a.qubit(1))),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Fast path for a one-qubit gate against an overlapping two-qubit gate.
///
/// For `one` on the control of a CNOT the orderings agree iff `one` is
/// diagonal; on the target, iff `one` commutes with Pauli-X — both read off
/// the 2×2 matrix. A one-qubit gate commutes with a SWAP it touches iff it
/// is (up to phase) the identity, i.e. diagonal with equal entries.
fn one_qubit_vs_two(one: &Instruction, two: &Instruction) -> Option<bool> {
    use nassc_circuit::Gate;

    let m = one.gate.matrix2()?;
    let q = one.qubit(0);
    let diagonal = m.get(0, 1).abs() <= COMMUTE_TOL && m.get(1, 0).abs() <= COMMUTE_TOL;
    match two.gate {
        Gate::Cx => {
            if q == two.qubit(0) {
                Some(diagonal)
            } else {
                // Commutes with the target's Pauli-X iff symmetric with
                // equal diagonal entries.
                Some(
                    (m.get(0, 0) - m.get(1, 1)).abs() <= COMMUTE_TOL
                        && (m.get(0, 1) - m.get(1, 0)).abs() <= COMMUTE_TOL,
                )
            }
        }
        // `cz`/`cp`/`crz` are diagonal on both wires: a diagonal one-qubit
        // gate commutes; a non-diagonal one does not (its off-diagonal
        // component would have to vanish against a diagonal that, for these
        // gates, is never proportional to identity... which the full check
        // resolves — so only the `true` side is decided structurally).
        Gate::Cz | Gate::Cp(_) | Gate::Crz(_) => {
            if diagonal {
                Some(true)
            } else {
                None
            }
        }
        Gate::Swap => Some(diagonal && (m.get(0, 0) - m.get(1, 1)).abs() <= COMMUTE_TOL),
        _ => None,
    }
}

/// The per-wire commutation structure of a circuit.
///
/// On every wire, consecutive gates that pairwise commute are grouped into a
/// *commute set*; gates inside one set may be freely reordered along that
/// wire. This is the information NASSC's `C_commute1`/`C_commute2` cost
/// terms query during routing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommutationSets {
    /// `sets[wire]` is the ordered list of commute sets on that wire, each a
    /// list of instruction indices in circuit order.
    sets: Vec<Vec<Vec<usize>>>,
}

impl CommutationSets {
    /// The commute sets of one wire, in circuit order.
    pub fn wire(&self, qubit: usize) -> &[Vec<usize>] {
        &self.sets[qubit]
    }

    /// The index of the commute set (on `qubit`) containing the instruction,
    /// if the instruction acts on that wire.
    pub fn set_of(&self, qubit: usize, instruction_index: usize) -> Option<usize> {
        self.sets[qubit]
            .iter()
            .position(|set| set.contains(&instruction_index))
    }

    /// Whether two instructions belong to the same commute set on `qubit`.
    pub fn same_set(&self, qubit: usize, a: usize, b: usize) -> bool {
        match (self.set_of(qubit, a), self.set_of(qubit, b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// Groups the gates on every wire into commute sets.
///
/// `max_set_size` bounds the pairwise-commutation search exactly like the
/// paper's 20-gate cap: once a set reaches the cap a new set is started.
pub fn commutation_analysis(circuit: &QuantumCircuit, max_set_size: usize) -> CommutationSets {
    let mut sets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); circuit.num_qubits()];
    for (idx, inst) in circuit.iter().enumerate() {
        for q in inst.qubits().iter() {
            let wire_sets = &mut sets[q];
            let joins_current = wire_sets.last().is_some_and(|current| {
                current.len() < max_set_size
                    && inst.gate.is_unitary()
                    && current
                        .iter()
                        .all(|&other| instructions_commute(inst, &circuit.instructions()[other]))
            });
            if joins_current {
                wire_sets.last_mut().expect("checked").push(idx);
            } else {
                wire_sets.push(vec![idx]);
            }
        }
    }
    CommutationSets { sets }
}

/// Cancels pairs of identical self-inverse gates that can be brought
/// together by commutation (Qiskit's `CommutativeCancellation`).
///
/// # Example
///
/// ```
/// use nassc_circuit::QuantumCircuit;
/// use nassc_passes::{CommutativeCancellation, PassManager};
///
/// // The middle CX(1,2) commutes with CX(0,2) (same target), so the two
/// // CX(0,2) gates cancel.
/// let mut qc = QuantumCircuit::new(3);
/// qc.cx(0, 2).cx(1, 2).cx(0, 2);
/// let mut pm = PassManager::new();
/// pm.push(CommutativeCancellation::default());
/// assert_eq!(pm.run(&qc).unwrap().cx_count(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CommutativeCancellation {
    /// Bound on the commute-set size (the paper uses 20).
    pub max_set_size: usize,
}

impl Default for CommutativeCancellation {
    fn default() -> Self {
        Self { max_set_size: 20 }
    }
}

impl TranspilePass for CommutativeCancellation {
    fn name(&self) -> &str {
        "commutative-cancellation"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, PassError> {
        let mut current = circuit.clone();
        // Iterate to a fixed point (each round may expose new cancellations),
        // with a small bound to keep the pass predictable.
        for _ in 0..4 {
            let (next, changed) = cancel_once(&current, self.max_set_size);
            current = next;
            if !changed {
                break;
            }
        }
        Ok(current)
    }
}

/// One round of commutation-aware cancellation. Returns the new circuit and
/// whether anything was removed.
fn cancel_once(circuit: &QuantumCircuit, max_set_size: usize) -> (QuantumCircuit, bool) {
    let sets = commutation_analysis(circuit, max_set_size);
    let mut removed = vec![false; circuit.num_gates()];

    for wire in 0..circuit.num_qubits() {
        for set in sets.wire(wire) {
            // Group identical self-inverse gates within the set.
            let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
            for &idx in set {
                let inst = &circuit.instructions()[idx];
                if !inst.gate.is_self_inverse() || removed[idx] {
                    continue;
                }
                let key = format!("{}:{:?}", inst.gate.name(), inst.qubits());
                groups.entry(key).or_default().push(idx);
            }
            for candidates in groups.values() {
                let mut pending: Option<usize> = None;
                for &idx in candidates {
                    if removed[idx] {
                        continue;
                    }
                    match pending {
                        None => pending = Some(idx),
                        Some(first) => {
                            let inst = &circuit.instructions()[idx];
                            // Multi-qubit cancellations must be legal on every
                            // wire the gate touches, not just this one.
                            let ok_everywhere =
                                inst.qubits().iter().all(|q| sets.same_set(q, first, idx));
                            if ok_everywhere {
                                removed[first] = true;
                                removed[idx] = true;
                                pending = None;
                            } else {
                                pending = Some(idx);
                            }
                        }
                    }
                }
            }
        }
    }

    let changed = removed.iter().any(|&r| r);
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for (idx, inst) in circuit.iter().enumerate() {
        if !removed[idx] {
            out.push(inst.clone());
        }
    }
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::{circuits_equivalent, Gate};

    /// Every `Some` verdict of the structural fast path must agree with the
    /// unitary ground truth — swept exhaustively over the covered gate set
    /// and every qubit assignment on a 3-qubit register (which realises
    /// every overlap shape: disjointness is handled before the fast path).
    #[test]
    fn fast_path_verdicts_match_the_unitary_ground_truth() {
        let one_qubit = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rz(0.37),
            Gate::Rz(0.0),
            Gate::Rx(1.2),
            Gate::Phase(0.9),
            Gate::U(0.3, 0.1, 2.0),
        ];
        let mut instructions: Vec<Instruction> = Vec::new();
        for gate in one_qubit {
            for q in 0..3 {
                instructions.push(Instruction::new(gate.clone(), vec![q]));
            }
        }
        for gate in [
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Cp(0.8),
            Gate::Crz(0.4),
        ] {
            for a in 0..3 {
                for b in 0..3 {
                    if a != b {
                        instructions.push(Instruction::new(gate.clone(), vec![a, b]));
                    }
                }
            }
        }
        let mut checked = 0usize;
        for a in &instructions {
            for b in &instructions {
                if !a.overlaps(b) {
                    continue;
                }
                if let Some(fast) = commute_fast_path(a, b) {
                    assert_eq!(
                        fast,
                        commute_by_unitary(a, b),
                        "fast path disagrees with the unitary check for {a} vs {b}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 500, "sweep only covered {checked} pairs");
    }

    #[test]
    fn commutation_of_standard_pairs() {
        let cx01 = Instruction::new(Gate::Cx, vec![0, 1]);
        let cx21 = Instruction::new(Gate::Cx, vec![2, 1]);
        let cx10 = Instruction::new(Gate::Cx, vec![1, 0]);
        let z0 = Instruction::new(Gate::Z, vec![0]);
        let x1 = Instruction::new(Gate::X, vec![1]);
        let x0 = Instruction::new(Gate::X, vec![0]);
        assert!(instructions_commute(&cx01, &cx21), "shared target commutes");
        assert!(
            !instructions_commute(&cx01, &cx10),
            "opposite direction does not"
        );
        assert!(instructions_commute(&cx01, &z0), "Z on control commutes");
        assert!(instructions_commute(&cx01, &x1), "X on target commutes");
        assert!(!instructions_commute(&cx01, &x0), "X on control does not");
        assert!(instructions_commute(&z0, &x1), "disjoint qubits commute");
    }

    #[test]
    fn measurements_never_commute() {
        let m = Instruction::new(Gate::Measure, vec![0]);
        let z = Instruction::new(Gate::Z, vec![0]);
        assert!(!instructions_commute(&m, &z));
    }

    #[test]
    fn analysis_groups_commuting_cnots() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 2).cx(1, 2).cx(0, 2).h(2);
        let sets = commutation_analysis(&qc, 20);
        // On wire 2 the three CNOTs share a target and commute; H starts a new set.
        assert_eq!(sets.wire(2).len(), 2);
        assert_eq!(sets.wire(2)[0], vec![0, 1, 2]);
        assert_eq!(sets.wire(2)[1], vec![3]);
        assert!(sets.same_set(2, 0, 2));
        assert!(!sets.same_set(2, 0, 3));
    }

    #[test]
    fn set_size_cap_is_respected() {
        let mut qc = QuantumCircuit::new(1);
        for _ in 0..10 {
            qc.z(0);
        }
        let sets = commutation_analysis(&qc, 4);
        assert!(sets.wire(0).iter().all(|s| s.len() <= 4));
        assert_eq!(sets.wire(0).len(), 3);
    }

    #[test]
    fn cancels_cnots_through_commuting_gate() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 2).cx(1, 2).cx(0, 2);
        let out = CommutativeCancellation::default().run(&qc).unwrap();
        assert_eq!(out.cx_count(), 1);
        assert!(circuits_equivalent(&qc, &out, 1e-9));
    }

    #[test]
    fn does_not_cancel_across_blocking_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).h(1).cx(0, 1);
        let out = CommutativeCancellation::default().run(&qc).unwrap();
        assert_eq!(out.cx_count(), 2);
    }

    #[test]
    fn cancels_single_qubit_self_inverses() {
        // Every gate here commutes into a cancelling pair: the whole circuit
        // collapses to the identity.
        let mut qc = QuantumCircuit::new(2);
        qc.z(0).cx(0, 1).z(0); // Z commutes with the control
        qc.x(1).cx(0, 1).x(1); // X commutes with the target
        let out = CommutativeCancellation::default().run(&qc).unwrap();
        assert_eq!(out.num_gates(), 0);
        assert!(circuits_equivalent(&qc, &out, 1e-9));
    }

    #[test]
    fn swap_cnot_cancellation_case_from_paper() {
        // Figure 4: a CNOT followed by a SWAP decomposed so its first CNOT
        // matches — one pair cancels, leaving 2 CNOTs.
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1);
        qc.cx(0, 1).cx(1, 0).cx(0, 1); // SWAP with matching orientation
        let out = CommutativeCancellation::default().run(&qc).unwrap();
        assert_eq!(out.cx_count(), 2);
        assert!(circuits_equivalent(&qc, &out, 1e-9));
    }

    #[test]
    fn rotation_gates_are_left_alone() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(0.4, 0).rz(-0.4, 0);
        let out = CommutativeCancellation::default().run(&qc).unwrap();
        // Not self-inverse gates: this pass leaves them for Optimize1qGates.
        assert_eq!(out.num_gates(), 2);
    }

    #[test]
    fn preserves_semantics_on_random_clifford_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let mut qc = QuantumCircuit::new(4);
            for _ in 0..30 {
                match rng.gen_range(0..6) {
                    0 => {
                        qc.x(rng.gen_range(0..4));
                    }
                    1 => {
                        qc.z(rng.gen_range(0..4));
                    }
                    2 => {
                        qc.h(rng.gen_range(0..4));
                    }
                    _ => {
                        let a = rng.gen_range(0..4);
                        let b = (a + rng.gen_range(1..4)) % 4;
                        qc.cx(a, b);
                    }
                }
            }
            let out = CommutativeCancellation::default().run(&qc).unwrap();
            assert!(circuits_equivalent(&qc, &out, 1e-8));
            assert!(out.num_gates() <= qc.num_gates());
        }
    }
}
