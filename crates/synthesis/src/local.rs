//! Helpers for local (tensor-product) structure of two-qubit operators:
//! the magic basis, Kronecker-factor extraction, and the canonical
//! interaction matrix `exp(i(αXX + βYY + γZZ))`.

use nassc_math::{Matrix2, Matrix4, C64};

/// The magic-basis change-of-basis matrix `B`.
///
/// In the magic basis, local unitaries (`SU(2) ⊗ SU(2)`) become real
/// orthogonal matrices and the canonical two-qubit interactions become
/// diagonal — the key facts behind the Weyl (KAK) decomposition.
pub fn magic_basis() -> Matrix4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let z = C64::zero();
    let r = C64::real(s);
    let i = C64::new(0.0, s);
    Matrix4::new([[r, z, z, i], [z, i, r, z], [z, i, -r, z], [r, z, z, -i]])
}

/// Transforms a two-qubit operator into the magic basis: `B† · U · B`.
pub fn to_magic(u: &Matrix4) -> Matrix4 {
    let b = magic_basis();
    b.adjoint().mul(u).mul(&b)
}

/// Transforms a two-qubit operator out of the magic basis: `B · U · B†`.
pub fn from_magic(u: &Matrix4) -> Matrix4 {
    let b = magic_basis();
    b.mul(u).mul(&b.adjoint())
}

/// The Kronecker product `high ⊗ low`, with `high` acting on the more
/// significant qubit (qubit 1 of the pair) and `low` on qubit 0.
pub fn kron(high: &Matrix2, low: &Matrix2) -> Matrix4 {
    high.kron(low)
}

/// Splits a 4×4 operator that is (numerically) a Kronecker product into its
/// two 2×2 factors `(high, low)` with `high ⊗ low ≈ m`.
///
/// Any global phase is absorbed into the `high` factor. Returns `None` when
/// `m` is not a tensor product within `tol`.
pub fn split_kron(m: &Matrix4, tol: f64) -> Option<(Matrix2, Matrix2)> {
    // Blocks of m: m[2i+k][2j+l] = high[i][j] * low[k][l].
    let block = |i: usize, j: usize| -> Matrix2 {
        Matrix2::new([
            [m.get(2 * i, 2 * j), m.get(2 * i, 2 * j + 1)],
            [m.get(2 * i + 1, 2 * j), m.get(2 * i + 1, 2 * j + 1)],
        ])
    };
    // Find the block with the largest norm to serve as the low-factor seed.
    let mut best = (0, 0);
    let mut best_norm = -1.0;
    for i in 0..2 {
        for j in 0..2 {
            let b = block(i, j);
            let norm: f64 = (0..2)
                .flat_map(|r| (0..2).map(move |c| (r, c)))
                .map(|(r, c)| b.get(r, c).norm_sqr())
                .sum();
            if norm > best_norm {
                best_norm = norm;
                best = (i, j);
            }
        }
    }
    let seed = block(best.0, best.1);
    let det = seed.det();
    if det.abs() < 1e-12 {
        return None;
    }
    let low = seed.scale(C64::one() / det.sqrt());
    // high[i][j] = <low, block(i,j)> / 2 (blocks are high[i][j] * low).
    let mut high = Matrix2::identity();
    for i in 0..2 {
        for j in 0..2 {
            let b = block(i, j);
            let mut acc = C64::zero();
            for r in 0..2 {
                for c in 0..2 {
                    acc += b.get(r, c) * low.get(r, c).conj();
                }
            }
            high.set(i, j, acc / 2.0);
        }
    }
    let rebuilt = high.kron(&low);
    if rebuilt.approx_eq(m, tol) {
        Some((high, low))
    } else {
        None
    }
}

/// The canonical interaction matrix `exp(i(α·XX + β·YY + γ·ZZ))`.
///
/// The three generators commute, so the matrix is the product of the three
/// individual exponentials, each of which has the closed form
/// `cos(θ)·I + i·sin(θ)·P⊗P`.
pub fn interaction_matrix(alpha: f64, beta: f64, gamma: f64) -> Matrix4 {
    let xx = Matrix2::pauli_x().kron(&Matrix2::pauli_x());
    let yy = Matrix2::pauli_y().kron(&Matrix2::pauli_y());
    let zz = Matrix2::pauli_z().kron(&Matrix2::pauli_z());
    let expo = |theta: f64, pp: &Matrix4| -> Matrix4 {
        let id = Matrix4::identity();
        let mut out = Matrix4::identity();
        for r in 0..4 {
            for c in 0..4 {
                let v = id.get(r, c).scale(theta.cos()) + pp.get(r, c) * C64::new(0.0, theta.sin());
                out.set(r, c, v);
            }
        }
        out
    };
    expo(alpha, &xx)
        .mul(&expo(beta, &yy))
        .mul(&expo(gamma, &zz))
}

/// The diagonal signatures of `XX`, `YY`, `ZZ` in the magic basis.
///
/// Each is a vector of ±1 entries `s` such that `B†·(P⊗P)·B = diag(s)`.
/// Used to solve for the interaction angles from magic-basis eigenphases.
pub fn magic_signatures() -> [[f64; 4]; 3] {
    let paulis = [Matrix2::pauli_x(), Matrix2::pauli_y(), Matrix2::pauli_z()];
    let mut out = [[0.0; 4]; 3];
    for (k, p) in paulis.iter().enumerate() {
        let m = to_magic(&p.kron(p));
        for (j, cell) in out[k].iter_mut().enumerate() {
            *cell = m.get(j, j).re;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::Gate;

    #[test]
    fn magic_basis_is_unitary() {
        assert!(magic_basis().is_unitary(1e-12));
    }

    #[test]
    fn local_gates_become_real_orthogonal_in_magic_basis() {
        let u = Gate::Ry(0.7)
            .matrix2()
            .unwrap()
            .kron(&Gate::Rz(1.3).matrix2().unwrap());
        let m = to_magic(&u);
        for r in 0..4 {
            for c in 0..4 {
                assert!(m.get(r, c).im.abs() < 1e-10, "expected real entries");
            }
        }
        assert!(m.mul(&m.transpose()).approx_eq(&Matrix4::identity(), 1e-10));
    }

    #[test]
    fn pauli_pairs_are_diagonal_in_magic_basis() {
        for sig in magic_signatures() {
            // Every signature entry is ±1 and they sum to zero.
            for s in sig {
                assert!((s.abs() - 1.0).abs() < 1e-10);
            }
            assert!(sig.iter().sum::<f64>().abs() < 1e-10);
        }
        // The three signatures are distinct.
        let sigs = magic_signatures();
        assert_ne!(sigs[0], sigs[1]);
        assert_ne!(sigs[1], sigs[2]);
    }

    #[test]
    fn split_kron_roundtrips() {
        let a = Gate::U(0.3, 1.0, -0.4).matrix2().unwrap();
        let b = Gate::Ry(2.0).matrix2().unwrap();
        let m = a.kron(&b);
        let (high, low) = split_kron(&m, 1e-9).expect("is a product");
        assert!(high.kron(&low).approx_eq(&m, 1e-9));
    }

    #[test]
    fn split_kron_rejects_entangling_gates() {
        assert!(split_kron(&Matrix4::cnot(), 1e-9).is_none());
        assert!(split_kron(&Matrix4::swap(), 1e-9).is_none());
    }

    #[test]
    fn split_kron_absorbs_global_phase() {
        let a = Gate::H.matrix2().unwrap();
        let b = Gate::S.matrix2().unwrap();
        let m = a.kron(&b).scale(C64::exp_i(0.9));
        let (high, low) = split_kron(&m, 1e-9).expect("still a product");
        assert!(high.kron(&low).approx_eq(&m, 1e-9));
    }

    #[test]
    fn interaction_matrix_special_values() {
        // Zero angles give the identity.
        assert!(interaction_matrix(0.0, 0.0, 0.0).approx_eq(&Matrix4::identity(), 1e-12));
        // pi/2 on one axis is a local gate (X⊗X up to phase).
        let m = interaction_matrix(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
        let xx = Matrix2::pauli_x().kron(&Matrix2::pauli_x());
        assert!(m.approx_eq_up_to_phase(&xx, 1e-10));
        // The SWAP gate is exp(i pi/4 (XX+YY+ZZ)) up to phase.
        let q = std::f64::consts::FRAC_PI_4;
        assert!(interaction_matrix(q, q, q).approx_eq_up_to_phase(&Matrix4::swap(), 1e-10));
    }

    #[test]
    fn interaction_matrix_is_unitary_and_symmetric_in_magic_basis() {
        let m = interaction_matrix(0.3, 0.2, -0.1);
        assert!(m.is_unitary(1e-10));
        let mm = to_magic(&m);
        // Diagonal in the magic basis.
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(mm.get(r, c).abs() < 1e-10);
                }
            }
        }
    }
}
