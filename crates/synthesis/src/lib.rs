//! One- and two-qubit unitary synthesis for the NASSC reproduction.
//!
//! The transpiler's block re-synthesis (the optimization NASSC's `C_2q` cost
//! term anticipates) and its single-qubit optimization pass are built on the
//! decompositions in this crate:
//!
//! * [`OneQubitEulerDecomposer`] — ZYZ Euler angles and `{rz, sx, x}`-basis
//!   synthesis of single-qubit unitaries,
//! * [`WeylDecomposition`] — the two-qubit Weyl (KAK) decomposition, giving
//!   the interaction angles that determine the CNOT cost of any two-qubit
//!   operator,
//! * [`synthesize_two_qubit`] / [`two_qubit_cnot_cost`] — re-synthesis of a
//!   two-qubit unitary with 0–3 CNOTs,
//! * [`swap_decomposition`] / [`SwapOrientation`] — the two SWAP-to-CNOT
//!   expansions the optimization-aware decomposition of §IV-E selects from.
//!
//! # Example
//!
//! ```
//! use nassc_math::Matrix4;
//! use nassc_synthesis::two_qubit_cnot_cost;
//!
//! // A SWAP fused with a CNOT only needs two CNOTs — the paper's Figure 1.
//! let fused = Matrix4::swap().mul(&Matrix4::cnot());
//! assert_eq!(two_qubit_cnot_cost(&fused).unwrap(), 2);
//! ```

pub mod euler;
pub mod local;
pub mod synth;
pub mod weyl;

pub use euler::{wrap_angle, EulerAngles, OneQubitEulerDecomposer};
pub use local::{interaction_matrix, magic_basis, split_kron};
pub use synth::{
    interaction_circuit, swap_decomposition, synthesize_two_qubit, two_qubit_cnot_cost,
    SwapOrientation,
};
pub use weyl::{DecomposeUnitaryError, WeylDecomposition};
