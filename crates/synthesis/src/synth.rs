//! Circuit emission: re-synthesis of two-qubit unitaries with minimal CNOTs
//! and the two SWAP-gate decompositions the paper's optimization-aware
//! routing chooses between.

use nassc_circuit::{Gate, Instruction};
use nassc_math::{Matrix2, Matrix4};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

use crate::weyl::{DecomposeUnitaryError, WeylDecomposition};

/// Threshold below which an interaction angle is treated as absent.
const ANGLE_TOL: f64 = 1e-7;

/// Which qubit acts as the control of the *first* CNOT when a SWAP gate is
/// expanded into three CNOTs.
///
/// The two decompositions are logically equivalent, but — as §IV-E of the
/// paper argues — only one of them lines its first (or last) CNOT up with a
/// cancellable CNOT already in the circuit. NASSC records the required
/// orientation during routing and applies it here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwapOrientation {
    /// The first CNOT uses the SWAP's first qubit as control:
    /// `CX(a,b)·CX(b,a)·CX(a,b)`.
    #[default]
    FirstQubitControl,
    /// The first CNOT uses the SWAP's second qubit as control:
    /// `CX(b,a)·CX(a,b)·CX(b,a)`.
    SecondQubitControl,
}

impl SwapOrientation {
    /// The orientation whose first CNOT has `control` as its control qubit,
    /// given the SWAP acts on `(a, b)`.
    pub fn with_first_control(a: usize, _b: usize, control: usize) -> Self {
        if control == a {
            SwapOrientation::FirstQubitControl
        } else {
            SwapOrientation::SecondQubitControl
        }
    }
}

/// Expands a SWAP on `(a, b)` into three CNOTs with the requested
/// orientation.
pub fn swap_decomposition(a: usize, b: usize, orientation: SwapOrientation) -> Vec<Instruction> {
    let (first, second) = match orientation {
        SwapOrientation::FirstQubitControl => ((a, b), (b, a)),
        SwapOrientation::SecondQubitControl => ((b, a), (a, b)),
    };
    vec![
        Instruction::new(Gate::Cx, vec![first.0, first.1]),
        Instruction::new(Gate::Cx, vec![second.0, second.1]),
        Instruction::new(Gate::Cx, vec![first.0, first.1]),
    ]
}

/// Synthesises a two-qubit unitary into CNOTs and single-qubit gates on the
/// qubit pair `(q0, q1)`, where `q0` is the least-significant qubit of the
/// matrix convention (the first qubit listed on the original instructions).
///
/// The emitted circuit reproduces `u` up to a global phase and uses the
/// minimum number of CNOTs this crate's decomposer can certify: 0 for local
/// operators, 1 for CNOT-class operators, 2 when one interaction axis
/// vanishes, and 3 otherwise.
///
/// # Errors
///
/// Propagates [`DecomposeUnitaryError`] when the Weyl decomposition fails.
pub fn synthesize_two_qubit(
    u: &Matrix4,
    q0: usize,
    q1: usize,
) -> Result<Vec<Instruction>, DecomposeUnitaryError> {
    let d = WeylDecomposition::new(u)?;
    let mut out = Vec::new();
    push_local(&mut out, &d.k2r, q0);
    push_local(&mut out, &d.k2l, q1);
    out.extend(interaction_circuit(d.alpha, d.beta, d.gamma, q0, q1));
    push_local(&mut out, &d.k1r, q0);
    push_local(&mut out, &d.k1l, q1);
    Ok(out)
}

/// The number of CNOTs [`synthesize_two_qubit`] will emit for `u`.
///
/// # Errors
///
/// Propagates [`DecomposeUnitaryError`] when the Weyl decomposition fails.
pub fn two_qubit_cnot_cost(u: &Matrix4) -> Result<usize, DecomposeUnitaryError> {
    Ok(WeylDecomposition::new(u)?.cnot_cost())
}

/// Appends a single-qubit unitary as an instruction unless it is the
/// identity up to phase.
fn push_local(out: &mut Vec<Instruction>, m: &Matrix2, qubit: usize) {
    if m.approx_eq_up_to_phase(&Matrix2::identity(), 1e-9) {
        return;
    }
    out.push(Instruction::new(Gate::Unitary1(*m), vec![qubit]));
}

/// Emits a circuit implementing `exp(i(αXX + βYY + γZZ))` (up to global
/// phase) on `(q0, q1)` using as few CNOTs as the angle pattern allows.
pub fn interaction_circuit(
    alpha: f64,
    beta: f64,
    gamma: f64,
    q0: usize,
    q1: usize,
) -> Vec<Instruction> {
    let active = |x: f64| x.abs() > ANGLE_TOL;
    let axes = [active(alpha), active(beta), active(gamma)];
    let count = axes.iter().filter(|&&a| a).count();

    if count == 0 {
        return Vec::new();
    }

    // Single-axis ±π/4 interactions are exactly one CNOT plus locals.
    if count == 1 {
        let (axis, angle) = [(0usize, alpha), (1, beta), (2, gamma)]
            .into_iter()
            .find(|(_, a)| active(*a))
            .expect("one active axis");
        if (angle.abs() - FRAC_PI_4).abs() < ANGLE_TOL {
            return single_cnot_interaction(axis, angle > 0.0, q0, q1);
        }
    }

    // Move a vanishing axis into the YY slot (the slot the general template
    // handles for free) so two-axis interactions cost two CNOTs.
    if active(beta) && count < 3 {
        if !active(gamma) {
            // Conjugating by Rx(π/2)⊗Rx(π/2) exchanges the YY and ZZ axes.
            let mut out = vec![
                Instruction::new(Gate::Rx(-FRAC_PI_2), vec![q0]),
                Instruction::new(Gate::Rx(-FRAC_PI_2), vec![q1]),
            ];
            out.extend(core_interaction(alpha, 0.0, beta, q0, q1));
            out.push(Instruction::new(Gate::Rx(FRAC_PI_2), vec![q0]));
            out.push(Instruction::new(Gate::Rx(FRAC_PI_2), vec![q1]));
            return out;
        }
        if !active(alpha) {
            // Conjugating by S⊗S exchanges the XX and YY axes.
            let mut out = vec![
                Instruction::new(Gate::Sdg, vec![q0]),
                Instruction::new(Gate::Sdg, vec![q1]),
            ];
            out.extend(core_interaction(beta, 0.0, gamma, q0, q1));
            out.push(Instruction::new(Gate::S, vec![q0]));
            out.push(Instruction::new(Gate::S, vec![q1]));
            return out;
        }
    }

    core_interaction(alpha, beta, gamma, q0, q1)
}

/// The general interaction template.
///
/// In matrix order the identity used is
/// `exp(i(aXX+bYY+cZZ)) = e^{iπ/4}·Rz(π/2)₀·Rx(π/2)₁·H₀·CX·Rx(-π/2)₀·Rz(2b)₁·CX·H₀·Rx(-2a)₀·Rz(-2c)₁·CX`,
/// which collapses to the two-CNOT form `CX·Rx(-2a)₀·Rz(-2c)₁·CX` when `b = 0`.
fn core_interaction(a: f64, b: f64, c: f64, q0: usize, q1: usize) -> Vec<Instruction> {
    let mut out = Vec::new();
    // Circuit order is the reverse of matrix order.
    out.push(Instruction::new(Gate::Cx, vec![q0, q1]));
    if c.abs() > ANGLE_TOL {
        out.push(Instruction::new(Gate::Rz(-2.0 * c), vec![q1]));
    }
    if a.abs() > ANGLE_TOL {
        out.push(Instruction::new(Gate::Rx(-2.0 * a), vec![q0]));
    }
    if b.abs() > ANGLE_TOL {
        out.push(Instruction::new(Gate::H, vec![q0]));
        out.push(Instruction::new(Gate::Cx, vec![q0, q1]));
        out.push(Instruction::new(Gate::Rz(2.0 * b), vec![q1]));
        out.push(Instruction::new(Gate::Rx(-FRAC_PI_2), vec![q0]));
        out.push(Instruction::new(Gate::Cx, vec![q0, q1]));
        out.push(Instruction::new(Gate::H, vec![q0]));
        out.push(Instruction::new(Gate::Rx(FRAC_PI_2), vec![q1]));
        out.push(Instruction::new(Gate::Rz(FRAC_PI_2), vec![q0]));
    } else {
        out.push(Instruction::new(Gate::Cx, vec![q0, q1]));
    }
    out
}

/// Exact one-CNOT circuits for `exp(±iπ/4·P⊗P)` on each axis.
fn single_cnot_interaction(axis: usize, positive: bool, q0: usize, q1: usize) -> Vec<Instruction> {
    // Base circuit for exp(+iπ/4·XX), circuit order:
    //   H(q0) · CX · Rx(-π/2)(q1) · Rz(-π/2)(q0) · H(q0)
    // (matrix order: H₀ · Rz(-π/2)₀ · Rx(-π/2)₁ · CX · H₀, a rearrangement of
    // the exponential form of the CNOT).
    let xx_positive = vec![
        Instruction::new(Gate::H, vec![q0]),
        Instruction::new(Gate::Cx, vec![q0, q1]),
        Instruction::new(Gate::Rx(-FRAC_PI_2), vec![q1]),
        Instruction::new(Gate::Rz(-FRAC_PI_2), vec![q0]),
        Instruction::new(Gate::H, vec![q0]),
    ];
    let xx: Vec<Instruction> = if positive {
        xx_positive
    } else {
        // The adjoint circuit implements the negative angle.
        xx_positive.iter().rev().map(|i| i.inverse()).collect()
    };
    match axis {
        0 => xx,
        1 => {
            // exp(iθYY) = (S⊗S)·exp(iθXX)·(S†⊗S†).
            let mut out = vec![
                Instruction::new(Gate::Sdg, vec![q0]),
                Instruction::new(Gate::Sdg, vec![q1]),
            ];
            out.extend(xx);
            out.push(Instruction::new(Gate::S, vec![q0]));
            out.push(Instruction::new(Gate::S, vec![q1]));
            out
        }
        _ => {
            // exp(iθZZ) = (H⊗H)·exp(iθXX)·(H⊗H).
            let mut out = vec![
                Instruction::new(Gate::H, vec![q0]),
                Instruction::new(Gate::H, vec![q1]),
            ];
            out.extend(xx);
            out.push(Instruction::new(Gate::H, vec![q0]));
            out.push(Instruction::new(Gate::H, vec![q1]));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::interaction_matrix;
    use nassc_circuit::{circuit_unitary, QuantumCircuit};
    use nassc_math::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds the 4×4 unitary of an instruction list over qubits {0, 1}.
    fn circuit_matrix(instructions: &[Instruction]) -> Matrix4 {
        let mut qc = QuantumCircuit::new(2);
        for inst in instructions {
            qc.push(inst.clone());
        }
        let u = circuit_unitary(&qc);
        let mut out = Matrix4::identity();
        for r in 0..4 {
            for c in 0..4 {
                out.set(r, c, u.get(r, c));
            }
        }
        out
    }

    fn cx_count(instructions: &[Instruction]) -> usize {
        instructions.iter().filter(|i| i.gate == Gate::Cx).count()
    }

    #[test]
    fn interaction_circuit_matches_matrix_for_random_angles() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..60 {
            let a = rng.gen_range(-1.4..1.4);
            let b = rng.gen_range(-1.4..1.4);
            let c = rng.gen_range(-1.4..1.4);
            let circ = interaction_circuit(a, b, c, 0, 1);
            let expected = interaction_matrix(a, b, c);
            assert!(
                circuit_matrix(&circ).approx_eq_up_to_phase(&expected, 1e-8),
                "angles ({a},{b},{c})"
            );
            assert!(cx_count(&circ) <= 3);
        }
    }

    #[test]
    fn two_axis_interactions_use_two_cnots() {
        let cases = [
            (0.3, 0.0, 0.7),
            (0.3, 0.7, 0.0),
            (0.0, 0.3, 0.7),
            (0.0, 0.9, 0.0),
            (0.5, 0.0, 0.0),
        ];
        for (a, b, c) in cases {
            let circ = interaction_circuit(a, b, c, 0, 1);
            assert_eq!(cx_count(&circ), 2, "angles ({a},{b},{c})");
            let expected = interaction_matrix(a, b, c);
            assert!(circuit_matrix(&circ).approx_eq_up_to_phase(&expected, 1e-8));
        }
    }

    #[test]
    fn quarter_pi_single_axis_uses_one_cnot() {
        for axis in 0..3 {
            for sign in [1.0, -1.0] {
                let mut angles = [0.0; 3];
                angles[axis] = sign * FRAC_PI_4;
                let circ = interaction_circuit(angles[0], angles[1], angles[2], 0, 1);
                assert_eq!(cx_count(&circ), 1, "axis {axis} sign {sign}");
                let expected = interaction_matrix(angles[0], angles[1], angles[2]);
                assert!(
                    circuit_matrix(&circ).approx_eq_up_to_phase(&expected, 1e-8),
                    "axis {axis} sign {sign}"
                );
            }
        }
    }

    #[test]
    fn zero_interaction_is_empty() {
        assert!(interaction_circuit(0.0, 0.0, 0.0, 0, 1).is_empty());
    }

    #[test]
    fn synthesizes_named_gates_with_expected_costs() {
        let cases: Vec<(Matrix4, usize)> = vec![
            (Gate::Cx.matrix4().unwrap(), 1),
            (Gate::Cz.matrix4().unwrap(), 1),
            (Gate::Swap.matrix4().unwrap(), 3),
            (Gate::Crx(1.1).matrix4().unwrap(), 2),
            (Matrix4::swap().mul(&Matrix4::cnot()), 2),
            (
                Gate::H.matrix2().unwrap().kron(&Gate::T.matrix2().unwrap()),
                0,
            ),
        ];
        for (m, cost) in cases {
            let circ = synthesize_two_qubit(&m, 0, 1).expect("synthesis");
            assert_eq!(cx_count(&circ), cost);
            assert!(circuit_matrix(&circ).approx_eq_up_to_phase(&m, 1e-7));
            assert_eq!(two_qubit_cnot_cost(&m).unwrap(), cost);
        }
    }

    #[test]
    fn synthesizes_random_two_qubit_unitaries() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..60 {
            let k1 = Gate::U(
                rng.gen_range(0.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            )
            .matrix2()
            .unwrap()
            .kron(
                &Gate::U(rng.gen_range(0.0..3.0), rng.gen_range(-3.0..3.0), 0.2)
                    .matrix2()
                    .unwrap(),
            );
            let k2 = Gate::U(rng.gen_range(0.0..3.0), 0.3, -0.8)
                .matrix2()
                .unwrap()
                .kron(
                    &Gate::U(rng.gen_range(0.0..3.0), 1.0, 0.0)
                        .matrix2()
                        .unwrap(),
                );
            let a = interaction_matrix(
                rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.5..1.5),
            );
            let target = k1
                .mul(&a)
                .mul(&k2)
                .scale(C64::exp_i(rng.gen_range(-3.0..3.0)));
            let circ = synthesize_two_qubit(&target, 0, 1).expect("synthesis");
            assert!(circuit_matrix(&circ).approx_eq_up_to_phase(&target, 1e-6));
            assert!(cx_count(&circ) <= 3);
        }
    }

    #[test]
    fn swap_decompositions_are_correct_and_differ_in_first_control() {
        for orientation in [
            SwapOrientation::FirstQubitControl,
            SwapOrientation::SecondQubitControl,
        ] {
            let circ = swap_decomposition(0, 1, orientation);
            assert_eq!(circ.len(), 3);
            assert!(circuit_matrix(&circ).approx_eq_up_to_phase(&Matrix4::swap(), 1e-10));
        }
        let a = swap_decomposition(4, 7, SwapOrientation::FirstQubitControl);
        assert_eq!(a[0].qubits().to_vec(), vec![4, 7]);
        let b = swap_decomposition(4, 7, SwapOrientation::SecondQubitControl);
        assert_eq!(b[0].qubits().to_vec(), vec![7, 4]);
    }

    #[test]
    fn orientation_helper_selects_control() {
        assert_eq!(
            SwapOrientation::with_first_control(3, 8, 3),
            SwapOrientation::FirstQubitControl
        );
        assert_eq!(
            SwapOrientation::with_first_control(3, 8, 8),
            SwapOrientation::SecondQubitControl
        );
    }

    #[test]
    fn locals_near_identity_are_skipped() {
        let circ = synthesize_two_qubit(&Matrix4::cnot(), 0, 1).expect("synthesis");
        // A plain CNOT needs no single-qubit dressing at all.
        assert!(circ
            .iter()
            .all(|i| i.gate == Gate::Cx || i.gate.num_qubits() == 1));
        assert_eq!(cx_count(&circ), 1);
    }
}
