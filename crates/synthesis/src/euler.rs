//! One-qubit Euler decomposition into the IBM basis.
//!
//! Any single-qubit unitary can be written as `e^{iφ}·Rz(ϕ)·Ry(θ)·Rz(λ)`
//! (ZYZ angles). The hardware basis of the paper is `{rz, sx, x}`, so the
//! [`OneQubitEulerDecomposer`] further rewrites the ZYZ form into the
//! standard "ZSX" template `Rz(ϕ+π)·SX·Rz(θ+π)·SX·Rz(λ)` that Qiskit's
//! `Optimize1qGates` pass emits, dropping rotations that collapse to the
//! identity.

use nassc_circuit::{Gate, Instruction};
use nassc_math::{Matrix2, C64};
use std::f64::consts::PI;

/// Numerical tolerance for treating an angle as zero.
const ANGLE_TOL: f64 = 1e-9;

/// The ZYZ Euler angles of a single-qubit unitary: `U = e^{iφ}·Rz(ϕ)·Ry(θ)·Rz(λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EulerAngles {
    /// Polar rotation θ.
    pub theta: f64,
    /// Leading Z rotation ϕ.
    pub phi: f64,
    /// Trailing Z rotation λ.
    pub lambda: f64,
    /// Global phase φ.
    pub phase: f64,
}

/// Decomposer for single-qubit unitaries.
///
/// # Example
///
/// ```
/// use nassc_circuit::Gate;
/// use nassc_synthesis::OneQubitEulerDecomposer;
///
/// let h = Gate::H.matrix2().unwrap();
/// let angles = OneQubitEulerDecomposer::angles(&h);
/// let rebuilt = OneQubitEulerDecomposer::matrix_from_angles(&angles);
/// assert!(rebuilt.approx_eq(&h, 1e-10));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OneQubitEulerDecomposer;

impl OneQubitEulerDecomposer {
    /// Extracts ZYZ Euler angles (and the global phase) from a unitary.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not unitary.
    pub fn angles(u: &Matrix2) -> EulerAngles {
        assert!(
            u.is_unitary(1e-6),
            "euler decomposition requires a unitary matrix"
        );
        // Normalise to SU(2).
        let det = u.det();
        let det_phase = det.arg() / 2.0;
        let scale = C64::exp_i(-det_phase);
        let su = u.scale(scale);

        let u00 = su.get(0, 0);
        let u10 = su.get(1, 0);
        let u11 = su.get(1, 1);

        let theta = 2.0 * u10.abs().atan2(u00.abs());
        let (phi, lambda) = if u10.abs() < ANGLE_TOL {
            // theta ~ 0: only phi+lambda is defined.
            (2.0 * u11.arg(), 0.0)
        } else if u00.abs() < ANGLE_TOL {
            // theta ~ pi: only phi-lambda is defined.
            (2.0 * u10.arg(), 0.0)
        } else {
            let phi_plus_lambda = 2.0 * u11.arg();
            let phi_minus_lambda = 2.0 * u10.arg();
            (
                (phi_plus_lambda + phi_minus_lambda) / 2.0,
                (phi_plus_lambda - phi_minus_lambda) / 2.0,
            )
        };
        EulerAngles {
            theta,
            phi,
            lambda,
            phase: det_phase,
        }
    }

    /// Rebuilds the matrix `e^{iφ}·Rz(ϕ)·Ry(θ)·Rz(λ)` from its angles.
    pub fn matrix_from_angles(angles: &EulerAngles) -> Matrix2 {
        let rz_phi = Gate::Rz(angles.phi).matrix2().expect("rz matrix");
        let ry = Gate::Ry(angles.theta).matrix2().expect("ry matrix");
        let rz_lam = Gate::Rz(angles.lambda).matrix2().expect("rz matrix");
        rz_phi.mul(&ry).mul(&rz_lam).scale(C64::exp_i(angles.phase))
    }

    /// Synthesises a unitary as a `U(θ, φ, λ)` gate instruction on `qubit`.
    pub fn to_u_gate(u: &Matrix2, qubit: usize) -> Instruction {
        let a = Self::angles(u);
        Instruction::new(Gate::U(a.theta, a.phi, a.lambda), vec![qubit])
    }

    /// Synthesises a unitary into the `{rz, sx}` basis on `qubit`.
    ///
    /// The output uses at most two `sx` gates and three `rz` gates; pure
    /// Z rotations collapse to a single `rz` and identities to nothing.
    pub fn to_zsx(u: &Matrix2, qubit: usize) -> Vec<Instruction> {
        let a = Self::angles(u);
        let mut out = Vec::new();
        let push_rz = |out: &mut Vec<Instruction>, angle: f64| {
            let wrapped = wrap_angle(angle);
            if wrapped.abs() > ANGLE_TOL {
                out.push(Instruction::new(Gate::Rz(wrapped), vec![qubit]));
            }
        };
        if a.theta.abs() < ANGLE_TOL {
            // Pure Z rotation.
            push_rz(&mut out, a.phi + a.lambda);
            return out;
        }
        if u.approx_eq_up_to_phase(&Matrix2::pauli_x(), ANGLE_TOL) {
            out.push(Instruction::new(Gate::X, vec![qubit]));
            return out;
        }
        // General case: Rz(phi) Ry(theta) Rz(lambda)
        //             = Rz(phi + pi) SX Rz(theta + pi) SX Rz(lambda)   (up to phase).
        push_rz(&mut out, a.lambda);
        out.push(Instruction::new(Gate::Sx, vec![qubit]));
        push_rz(&mut out, a.theta + PI);
        out.push(Instruction::new(Gate::Sx, vec![qubit]));
        push_rz(&mut out, a.phi + PI);
        out
    }

    /// Multiplies a run of single-qubit gate matrices (listed in circuit
    /// order, i.e. first applied first) into one matrix.
    pub fn combine_run(gates: &[Gate]) -> Matrix2 {
        let mut acc = Matrix2::identity();
        for gate in gates {
            let m = gate
                .matrix2()
                .unwrap_or_else(|| panic!("gate {} is not single-qubit", gate.name()));
            acc = m.mul(&acc);
        }
        acc
    }
}

/// Wraps an angle into `(-π, π]`.
pub fn wrap_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a > PI {
        a -= two_pi;
    } else if a <= -PI {
        a += two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuit_unitary;
    use nassc_circuit::QuantumCircuit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unitary2(rng: &mut StdRng) -> Matrix2 {
        // Random ZYZ angles give a Haar-ish random unitary good enough for tests.
        let theta = rng.gen_range(0.0..PI);
        let phi = rng.gen_range(-PI..PI);
        let lam = rng.gen_range(-PI..PI);
        let phase = rng.gen_range(-PI..PI);
        OneQubitEulerDecomposer::matrix_from_angles(&EulerAngles {
            theta,
            phi,
            lambda: lam,
            phase,
        })
    }

    #[test]
    fn angles_reconstruct_named_gates() {
        for gate in [
            Gate::H,
            Gate::X,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rz(0.4),
            Gate::Ry(1.1),
        ] {
            let m = gate.matrix2().unwrap();
            let a = OneQubitEulerDecomposer::angles(&m);
            let rebuilt = OneQubitEulerDecomposer::matrix_from_angles(&a);
            assert!(
                rebuilt.approx_eq(&m, 1e-9),
                "{} reconstruction failed",
                gate.name()
            );
        }
    }

    #[test]
    fn angles_reconstruct_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let m = random_unitary2(&mut rng);
            let a = OneQubitEulerDecomposer::angles(&m);
            let rebuilt = OneQubitEulerDecomposer::matrix_from_angles(&a);
            assert!(rebuilt.approx_eq(&m, 1e-8));
        }
    }

    #[test]
    fn zsx_synthesis_is_equivalent_and_in_basis() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let m = random_unitary2(&mut rng);
            let gates = OneQubitEulerDecomposer::to_zsx(&m, 0);
            assert!(gates.iter().all(|i| i.gate.in_ibm_basis()));
            let mut qc = QuantumCircuit::new(1);
            for g in &gates {
                qc.push(g.clone());
            }
            let mut reference = QuantumCircuit::new(1);
            reference.append(Gate::Unitary1(m), vec![0]);
            assert!(
                circuit_unitary(&qc).approx_eq_up_to_phase(&circuit_unitary(&reference), 1e-8),
                "zsx synthesis mismatch"
            );
        }
    }

    #[test]
    fn zsx_collapses_z_rotations() {
        let m = Gate::Rz(0.7).matrix2().unwrap();
        let gates = OneQubitEulerDecomposer::to_zsx(&m, 3);
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].gate.name(), "rz");
        assert_eq!(gates[0].qubits().to_vec(), vec![3]);
    }

    #[test]
    fn zsx_of_identity_is_empty() {
        let gates = OneQubitEulerDecomposer::to_zsx(&Matrix2::identity(), 0);
        assert!(gates.is_empty());
    }

    #[test]
    fn zsx_of_x_is_single_gate() {
        let gates = OneQubitEulerDecomposer::to_zsx(&Matrix2::pauli_x(), 0);
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].gate, Gate::X);
    }

    #[test]
    fn combine_run_multiplies_in_circuit_order() {
        // S then T equals a single Rz(3pi/4) up to phase.
        let combined = OneQubitEulerDecomposer::combine_run(&[Gate::S, Gate::T]);
        let expected = Gate::Rz(3.0 * PI / 4.0).matrix2().unwrap();
        assert!(combined.approx_eq_up_to_phase(&expected, 1e-10));
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-15);
        assert!(wrap_angle(2.0 * PI).abs() < 1e-12);
    }
}
