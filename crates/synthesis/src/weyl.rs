//! Two-qubit Weyl (KAK) decomposition.
//!
//! Every two-qubit unitary `U` factors as
//!
//! ```text
//! U = e^{iφ} · (K1l ⊗ K1r) · exp(i(α·XX + β·YY + γ·ZZ)) · (K2l ⊗ K2r)
//! ```
//!
//! with single-qubit `K` factors. The interaction angles `(α, β, γ)` carry
//! all the entangling content and determine how many CNOTs a re-synthesis of
//! `U` needs — the quantity NASSC's `C_2q` cost term is built on.
//!
//! The algorithm follows the standard magic-basis procedure: transform into
//! the magic basis, diagonalise `M = UᵀU` with a real orthogonal matrix
//! (simultaneously diagonalising its commuting real and imaginary parts),
//! recover the interaction angles from the eigenphases, and read the local
//! factors off the orthogonal diagonaliser.

use nassc_math::eigen::{jacobi_eigen, RealMatrix};
use nassc_math::{Matrix2, Matrix4, C64};
use std::fmt;

use crate::local::{from_magic, interaction_matrix, magic_signatures, split_kron, to_magic};

/// Numerical tolerance for the decomposition internals.
const TOL: f64 = 1e-9;

/// Error returned when a two-qubit decomposition cannot be computed.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposeUnitaryError {
    message: String,
}

impl fmt::Display for DecomposeUnitaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "two-qubit decomposition failed: {}", self.message)
    }
}

impl std::error::Error for DecomposeUnitaryError {}

/// The result of a Weyl decomposition of a two-qubit unitary.
///
/// The reconstruction identity is
/// `U = e^{i·phase} · (k1l ⊗ k1r) · exp(i(αXX + βYY + γZZ)) · (k2l ⊗ k2r)`,
/// where the `l` factors act on qubit 1 (the more significant bit of the
/// matrix basis) and the `r` factors on qubit 0.
///
/// The interaction angles are reduced to `(-π/2, π/2]` with exact ±π/2
/// interactions folded into the local factors, so an angle is (numerically)
/// zero exactly when the corresponding axis carries no entangling content.
#[derive(Debug, Clone)]
pub struct WeylDecomposition {
    /// Global phase φ.
    pub phase: f64,
    /// Left local factor on qubit 1.
    pub k1l: Matrix2,
    /// Left local factor on qubit 0.
    pub k1r: Matrix2,
    /// Right local factor on qubit 1.
    pub k2l: Matrix2,
    /// Right local factor on qubit 0.
    pub k2r: Matrix2,
    /// XX interaction angle.
    pub alpha: f64,
    /// YY interaction angle.
    pub beta: f64,
    /// ZZ interaction angle.
    pub gamma: f64,
}

impl WeylDecomposition {
    /// Decomposes a two-qubit unitary.
    ///
    /// # Errors
    ///
    /// Returns an error when the input is not unitary or the numerical
    /// procedure fails to converge (which the retry loop makes vanishingly
    /// rare).
    pub fn new(u: &Matrix4) -> Result<Self, DecomposeUnitaryError> {
        if !u.is_unitary(1e-7) {
            return Err(DecomposeUnitaryError {
                message: "input matrix is not unitary".into(),
            });
        }

        // Normalise to SU(4) and move to the magic basis.
        let det = u.det();
        let phase0 = det.arg() / 4.0;
        let u_su = u.scale(C64::exp_i(-phase0));
        let um = to_magic(&u_su);
        let m2 = um.transpose().mul(&um);

        // Split M2 into commuting real symmetric parts.
        let mut re = RealMatrix::zeros(4);
        let mut im = RealMatrix::zeros(4);
        for r in 0..4 {
            for c in 0..4 {
                re.set(r, c, m2.get(r, c).re);
                im.set(r, c, m2.get(r, c).im);
            }
        }
        // Symmetrise away numerical noise.
        for m in [&mut re, &mut im] {
            for r in 0..4 {
                for c in (r + 1)..4 {
                    let avg = 0.5 * (m.get(r, c) + m.get(c, r));
                    m.set(r, c, avg);
                    m.set(c, r, avg);
                }
            }
        }

        // Diagonalise cos(r)·Re + sin(r)·Im for a generic mixing angle; for a
        // generic angle the eigenvalues are simple and the eigenvectors
        // diagonalise both parts simultaneously.
        let mixing_angles: [f64; 7] = [
            0.614_352_1,
            1.170_313,
            0.0,
            2.035_77,
            0.333_33,
            std::f64::consts::E,
            std::f64::consts::FRAC_PI_2,
        ];
        let mut chosen_p: Option<RealMatrix> = None;
        for &ang in &mixing_angles {
            let mut mix = RealMatrix::zeros(4);
            for r in 0..4 {
                for c in 0..4 {
                    mix.set(r, c, ang.cos() * re.get(r, c) + ang.sin() * im.get(r, c));
                }
            }
            let eig = jacobi_eigen(&mix);
            let p = eig.vectors;
            if is_simultaneous_diagonalizer(&p, &re, &im, 1e-7) {
                chosen_p = Some(p);
                break;
            }
        }
        let mut p = chosen_p.ok_or_else(|| DecomposeUnitaryError {
            message: "failed to simultaneously diagonalize the magic-basis Gram matrix".into(),
        })?;

        // Force det(P) = +1 so that P corresponds to a local unitary.
        if p.det() < 0.0 {
            for r in 0..4 {
                p.set(r, 0, -p.get(r, 0));
            }
        }

        // Eigenphases of M2 on the diagonal of Pᵀ M2 P.
        let mut theta = [0.0_f64; 4];
        for (j, th) in theta.iter_mut().enumerate() {
            let mut acc = C64::zero();
            for r in 0..4 {
                for c in 0..4 {
                    acc += m2.get(r, c).scale(p.get(r, j) * p.get(c, j));
                }
            }
            *th = acc.arg() / 2.0;
        }

        // Fix the half-angle branch parity: the left local factor lies in
        // SO(4) (i.e. is a tensor product of single-qubit gates) only when
        // the eigenphases sum to 0 mod 2π. Flipping one branch by π toggles
        // the parity without affecting anything else.
        let phase_sum = C64::exp_i(theta.iter().sum::<f64>());
        if (phase_sum - C64::one()).abs() > 0.5 {
            theta[0] += std::f64::consts::PI;
        }
        let k1_imag = max_imag(&left_factor(&um, &p, &theta));
        if k1_imag > 1e-6 {
            return Err(DecomposeUnitaryError {
                message: format!("left local factor is not real (residual {k1_imag:.2e})"),
            });
        }

        // Solve the interaction angles from the eigenphases using the fixed
        // magic-basis signatures of XX, YY, ZZ (a consistent 4×3 linear
        // system once the mean eigenphase is moved into the global phase).
        let mean = theta.iter().sum::<f64>() / 4.0;
        let centred: Vec<f64> = theta.iter().map(|t| t - mean).collect();
        let sigs = magic_signatures();
        let (alpha, beta, gamma) =
            solve_interaction_angles(&centred, &sigs).ok_or_else(|| DecomposeUnitaryError {
                message: "eigenphases are inconsistent with XX/YY/ZZ axes".into(),
            })?;

        // Local factors: K̂2 = Pᵀ, K̂1 = Um · P · diag(e^{-iθ}).
        let k1_hat = left_factor(&um, &p, &theta);
        let k1 = from_magic(&realify(&k1_hat));
        let mut k2_hat = Matrix4::identity();
        for r in 0..4 {
            for c in 0..4 {
                k2_hat.set(r, c, C64::real(p.get(c, r)));
            }
        }
        let k2 = from_magic(&k2_hat);

        let (k1l, k1r) = split_kron(&k1, 1e-6).ok_or_else(|| DecomposeUnitaryError {
            message: "left local factor is not a tensor product".into(),
        })?;
        let (k2l, k2r) = split_kron(&k2, 1e-6).ok_or_else(|| DecomposeUnitaryError {
            message: "right local factor is not a tensor product".into(),
        })?;

        let mut decomposition = WeylDecomposition {
            phase: 0.0,
            k1l,
            k1r,
            k2l,
            k2r,
            alpha,
            beta,
            gamma,
        };
        decomposition.reduce_angles();
        decomposition.fix_phase(u)?;
        Ok(decomposition)
    }

    /// The canonical interaction matrix `exp(i(αXX + βYY + γZZ))` of this
    /// decomposition.
    pub fn canonical_matrix(&self) -> Matrix4 {
        interaction_matrix(self.alpha, self.beta, self.gamma)
    }

    /// Rebuilds the original unitary from the factors.
    pub fn reconstruct(&self) -> Matrix4 {
        let k1 = self.k1l.kron(&self.k1r);
        let k2 = self.k2l.kron(&self.k2r);
        k1.mul(&self.canonical_matrix())
            .mul(&k2)
            .scale(C64::exp_i(self.phase))
    }

    /// The interaction angles `(α, β, γ)`.
    pub fn interaction_angles(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// The number of interaction axes with non-negligible angles (0–3). This
    /// equals the CNOT count of the re-synthesis this crate emits, except for
    /// the single-axis ±π/4 case which needs only one CNOT.
    pub fn entangling_axes(&self) -> usize {
        [self.alpha, self.beta, self.gamma]
            .iter()
            .filter(|a| a.abs() > 1e-7)
            .count()
    }

    /// The number of CNOTs [`crate::synthesize_two_qubit`] will emit for this
    /// operator.
    pub fn cnot_cost(&self) -> usize {
        let axes = self.entangling_axes();
        if axes == 0 {
            return 0;
        }
        if axes == 1 {
            let angle = [self.alpha, self.beta, self.gamma]
                .into_iter()
                .find(|a| a.abs() > 1e-7)
                .expect("one non-zero axis");
            if (angle.abs() - std::f64::consts::FRAC_PI_4).abs() < 1e-7 {
                return 1;
            }
            return 2;
        }
        if axes == 2 {
            return 2;
        }
        3
    }

    /// Reduces each interaction angle into `(-π/2, π/2]` and folds exact
    /// ±π/2 interactions (which are local up to phase) into the left local
    /// factors.
    fn reduce_angles(&mut self) {
        use std::f64::consts::{FRAC_PI_2, PI};
        let paulis = [Matrix2::pauli_x(), Matrix2::pauli_y(), Matrix2::pauli_z()];
        let mut angles = [self.alpha, self.beta, self.gamma];
        for (axis, angle) in angles.iter_mut().enumerate() {
            while *angle > FRAC_PI_2 + TOL {
                *angle -= PI;
            }
            while *angle <= -FRAC_PI_2 + TOL {
                *angle += PI;
            }
            if (*angle - FRAC_PI_2).abs() < 1e-9 {
                // exp(i·π/2·PP) = i·(P⊗P): absorb the Paulis into K1.
                self.k1l = self.k1l.mul(&paulis[axis]);
                self.k1r = self.k1r.mul(&paulis[axis]);
                *angle = 0.0;
            }
        }
        self.alpha = angles[0];
        self.beta = angles[1];
        self.gamma = angles[2];
    }

    /// Recomputes the global phase by comparing the reconstruction against
    /// the original matrix, verifying the decomposition along the way.
    fn fix_phase(&mut self, original: &Matrix4) -> Result<(), DecomposeUnitaryError> {
        self.phase = 0.0;
        let rebuilt = self.reconstruct();
        // Find the largest entry to estimate the phase.
        let mut best = (0, 0);
        let mut best_norm = -1.0;
        for r in 0..4 {
            for c in 0..4 {
                if rebuilt.get(r, c).norm_sqr() > best_norm {
                    best_norm = rebuilt.get(r, c).norm_sqr();
                    best = (r, c);
                }
            }
        }
        let ratio = original.get(best.0, best.1) / rebuilt.get(best.0, best.1);
        self.phase = ratio.arg();
        let adjusted = self.reconstruct();
        if adjusted.approx_eq(original, 1e-6) {
            Ok(())
        } else {
            Err(DecomposeUnitaryError {
                message: "reconstruction does not match the input".into(),
            })
        }
    }
}

/// `K̂1 = Um · P · diag(e^{-iθ})` in the magic basis.
fn left_factor(um: &Matrix4, p: &RealMatrix, theta: &[f64; 4]) -> Matrix4 {
    let mut out = Matrix4::identity();
    for r in 0..4 {
        for (c, th) in theta.iter().enumerate() {
            let mut acc = C64::zero();
            for k in 0..4 {
                acc += um.get(r, k).scale(p.get(k, c));
            }
            out.set(r, c, acc * C64::exp_i(-th));
        }
    }
    out
}

/// The largest imaginary component of any entry.
fn max_imag(m: &Matrix4) -> f64 {
    let mut worst: f64 = 0.0;
    for r in 0..4 {
        for c in 0..4 {
            worst = worst.max(m.get(r, c).im.abs());
        }
    }
    worst
}

/// Drops (numerically negligible) imaginary parts.
fn realify(m: &Matrix4) -> Matrix4 {
    let mut out = *m;
    for r in 0..4 {
        for c in 0..4 {
            out.set(r, c, C64::real(m.get(r, c).re));
        }
    }
    out
}

/// Checks that `P` diagonalises both symmetric matrices.
fn is_simultaneous_diagonalizer(p: &RealMatrix, a: &RealMatrix, b: &RealMatrix, tol: f64) -> bool {
    for m in [a, b] {
        let d = p.transpose().mul(m).mul(p);
        for r in 0..4 {
            for c in 0..4 {
                if r != c && d.get(r, c).abs() > tol {
                    return false;
                }
            }
        }
    }
    true
}

/// Solves `θ_j ≈ α·s_xx[j] + β·s_yy[j] + γ·s_zz[j]` for the three angles.
fn solve_interaction_angles(theta: &[f64], sigs: &[[f64; 4]; 3]) -> Option<(f64, f64, f64)> {
    // Normal equations of the 4×3 least-squares system; the signature rows
    // are orthogonal (they are distinct non-trivial ±1 patterns summing to
    // zero), so the system is diagonal: coefficient = <θ, s> / 4.
    let dot =
        |s: &[f64; 4]| -> f64 { theta.iter().zip(s.iter()).map(|(t, x)| t * x).sum::<f64>() / 4.0 };
    let alpha = dot(&sigs[0]);
    let beta = dot(&sigs[1]);
    let gamma = dot(&sigs[2]);
    // Verify the residual: the centred eigenphases must be fully explained.
    for j in 0..4 {
        let model = alpha * sigs[0][j] + beta * sigs[1][j] + gamma * sigs[2][j];
        let residual = (theta[j] - model).rem_euclid(2.0 * std::f64::consts::PI);
        let residual = residual.min(2.0 * std::f64::consts::PI - residual);
        if residual > 1e-5 {
            return None;
        }
    }
    Some((alpha, beta, gamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::Gate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_local(rng: &mut StdRng) -> Matrix2 {
        Gate::U(
            rng.gen_range(0.0..std::f64::consts::PI),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
        )
        .matrix2()
        .unwrap()
    }

    fn random_two_qubit(rng: &mut StdRng) -> Matrix4 {
        // Random locals sandwiching a random interaction cover the whole
        // two-qubit group.
        let k1 = random_local(rng).kron(&random_local(rng));
        let k2 = random_local(rng).kron(&random_local(rng));
        let a = interaction_matrix(
            rng.gen_range(-1.5..1.5),
            rng.gen_range(-1.5..1.5),
            rng.gen_range(-1.5..1.5),
        );
        k1.mul(&a)
            .mul(&k2)
            .scale(C64::exp_i(rng.gen_range(-3.0..3.0)))
    }

    #[test]
    fn decomposes_named_gates() {
        for (gate, axes) in [
            (Gate::Cx, 1),
            (Gate::Cz, 1),
            (Gate::Swap, 3),
            (Gate::Crx(0.8), 1),
            (Gate::Rzz(0.6), 1),
        ] {
            let m = gate.matrix4().unwrap();
            let d = WeylDecomposition::new(&m).unwrap_or_else(|e| panic!("{}: {e}", gate.name()));
            assert!(
                d.reconstruct().approx_eq(&m, 1e-7),
                "{} reconstruction",
                gate.name()
            );
            assert_eq!(d.entangling_axes(), axes, "{} axes", gate.name());
        }
    }

    #[test]
    fn cnot_costs_of_named_gates() {
        let cases = [
            (Matrix4::identity(), 0),
            (Gate::Cx.matrix4().unwrap(), 1),
            (Gate::Cz.matrix4().unwrap(), 1),
            (Gate::Crx(0.8).matrix4().unwrap(), 2),
            (Gate::Swap.matrix4().unwrap(), 3),
            // SWAP·CX is the paper's Figure 1 example: only 2 CNOTs needed.
            (Matrix4::swap().mul(&Matrix4::cnot()), 2),
        ];
        for (m, expected) in cases {
            let d = WeylDecomposition::new(&m).unwrap();
            assert_eq!(d.cnot_cost(), expected);
        }
    }

    #[test]
    fn local_gate_has_no_entangling_axes() {
        let m = Gate::H.matrix2().unwrap().kron(&Gate::T.matrix2().unwrap());
        let d = WeylDecomposition::new(&m).unwrap();
        assert_eq!(d.entangling_axes(), 0);
        assert!(d.reconstruct().approx_eq(&m, 1e-7));
    }

    #[test]
    fn random_unitaries_reconstruct() {
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..120 {
            let m = random_two_qubit(&mut rng);
            let d = WeylDecomposition::new(&m).unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert!(
                d.reconstruct().approx_eq(&m, 1e-6),
                "case {i} reconstruction failed"
            );
            assert!(d.alpha.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
            assert!(d.beta.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
            assert!(d.gamma.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
        }
    }

    #[test]
    fn products_of_circuit_gates_reconstruct() {
        // Matrices that arise from real blocks (SWAP followed by CNOT and
        // locals) — the exact shapes NASSC re-synthesises.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            let mut m = Matrix4::identity();
            for _ in 0..6 {
                let pick: u8 = rng.gen_range(0..4);
                let factor = match pick {
                    0 => Matrix4::cnot(),
                    1 => Matrix4::swap(),
                    2 => random_local(&mut rng).kron(&Matrix2::identity()),
                    _ => Matrix2::identity().kron(&random_local(&mut rng)),
                };
                m = factor.mul(&m);
            }
            let d = WeylDecomposition::new(&m).unwrap();
            assert!(d.reconstruct().approx_eq(&m, 1e-6));
            assert!(d.cnot_cost() <= 3);
        }
    }

    #[test]
    fn non_unitary_input_is_rejected() {
        let mut m = Matrix4::identity();
        m.set(0, 0, C64::real(2.0));
        assert!(WeylDecomposition::new(&m).is_err());
    }

    #[test]
    fn error_type_displays() {
        let err = DecomposeUnitaryError {
            message: "boom".into(),
        };
        assert!(format!("{err}").contains("boom"));
    }
}
