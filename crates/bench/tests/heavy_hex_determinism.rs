//! The heavy-hex scale determinism contract: a 10k-gate QV-style circuit on
//! the 127-qubit Eagle device transpiles **bit-identically** across
//! `NASSC_THREADS` ∈ {1, 8} under both routers. This pins the compact
//! instruction storage and the allocation-free routing hot loop at a scale
//! the montreal corpus never reaches — any thread-count-dependent divergence
//! in layout, routing, or decomposition shows up as a hard failure here.
//!
//! The single test owns the `NASSC_THREADS` sweep, so the env mutation
//! cannot race a concurrent reader (the same isolation pattern as
//! `qasm_corpus_determinism.rs`).

// The deprecated pre-session free function is used on purpose: it is the
// reference path the `Transpiler` session must keep matching.
#![allow(deprecated)]

use nassc::{transpile, RouterKind, TranspileOptions};
use nassc_bench::scale::qv_style;
use nassc_bench::BASE_SEED;
use nassc_topology::CouplingMap;

#[test]
fn eagle_10k_gates_transpile_identically_across_thread_counts() {
    let device = CouplingMap::heavy_hex(7);
    assert_eq!(device.num_qubits(), 127, "heavy_hex(7) must be Eagle-sized");
    let circuit = qv_style(device.num_qubits(), 10_000, BASE_SEED);

    for router in [RouterKind::Sabre, RouterKind::Nassc] {
        let options = match router {
            RouterKind::Sabre => TranspileOptions::sabre(7),
            RouterKind::Nassc => TranspileOptions::nassc(7),
        };
        let mut reference = None;
        for threads in ["1", "8"] {
            std::env::set_var("NASSC_THREADS", threads);
            let result = transpile(&circuit, &device, &options)
                .unwrap_or_else(|e| panic!("eagle/qv10k ({router:?}): {e}"));
            match &reference {
                None => reference = Some(result),
                Some(baseline) => {
                    assert_eq!(
                        baseline.circuit, result.circuit,
                        "eagle/qv10k ({router:?}): routed circuit diverged at {threads} threads"
                    );
                    assert_eq!(
                        baseline.initial_layout, result.initial_layout,
                        "eagle/qv10k ({router:?}): initial layout diverged at {threads} threads"
                    );
                    assert_eq!(
                        baseline.swap_count, result.swap_count,
                        "eagle/qv10k ({router:?}): swap count diverged at {threads} threads"
                    );
                }
            }
        }
    }
    std::env::remove_var("NASSC_THREADS");
}
