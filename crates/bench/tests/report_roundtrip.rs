//! Property tests: `BenchReport` survives the hand-rolled JSON writer/parser
//! round trip for arbitrary field contents — including names exercising every
//! escape path and extreme-but-finite metric values.

use proptest::prelude::*;

use nassc_bench::{BenchReport, ReportRow};

/// Builds a gnarly string from sampled bytes: ASCII, quotes, backslashes,
/// control characters and multi-byte code points all show up.
fn gnarly_name(tag: &str, bytes: &[u8]) -> String {
    let mut name = format!("{tag}:");
    for &b in bytes {
        match b % 7 {
            0 => name.push('"'),
            1 => name.push('\\'),
            2 => name.push((b'a' + b % 26) as char),
            3 => name.push('\n'),
            4 => name.push(char::from_u32(0x0001 + u32::from(b) % 0x1f).unwrap()),
            5 => name.push(char::from_u32(0x0394 + u32::from(b)).unwrap()), // Greek and friends
            _ => name.push('😀'),
        }
    }
    name
}

/// Widens a uniform sample into a large dynamic range (still finite).
fn stretch(v: f64, exponent: u8) -> f64 {
    v * 10f64.powi(i32::from(exponent % 40) - 20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_report_roundtrips_through_json(
        runs in 0usize..100,
        header in proptest::collection::vec(any::<u8>(), 0..12),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..10),  // row name bytes
                0usize..50,                                     // qubits
                proptest::collection::vec((any::<u8>(), -1.0f64..1.0, any::<u8>()), 0..6),
            ),
            0..6,
        ),
        summary in proptest::collection::vec((any::<u8>(), -1.0f64..1.0, any::<u8>()), 0..5),
    ) {
        let mut report = BenchReport::new(
            gnarly_name("artefact", &header),
            gnarly_name("title", &header),
            if runs % 2 == 0 { "quick" } else { "full" },
            runs,
        );
        report.layout_trials = runs % 7 + 1;
        for (name_bytes, qubits, metrics) in &rows {
            report.rows.push(ReportRow {
                name: gnarly_name("row", name_bytes),
                qubits: *qubits,
                metrics: metrics
                    .iter()
                    .map(|(tag, v, exp)| (gnarly_name("metric", &[*tag]), stretch(*v, *exp)))
                    .collect(),
            });
        }
        report.summary = summary
            .iter()
            .map(|(tag, v, exp)| (gnarly_name("sum", &[*tag]), stretch(*v, *exp)))
            .collect();

        let json = report.to_json();
        let parsed = BenchReport::from_json(&json);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}\n{json}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), report);
    }
}
