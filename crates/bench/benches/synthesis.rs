//! Criterion benches for the synthesis substrate: Weyl decomposition and
//! two-qubit re-synthesis throughput (the per-SWAP-candidate cost that keeps
//! NASSC's routing complexity at SABRE's level, §IV-H).

use criterion::{criterion_group, criterion_main, Criterion};
use nassc_math::Matrix4;
use nassc_synthesis::{synthesize_two_qubit, two_qubit_cnot_cost, WeylDecomposition};

fn synthesis_benchmarks(c: &mut Criterion) {
    let swap_cx = Matrix4::swap().mul(&Matrix4::cnot());
    c.bench_function("weyl_decompose_swap_cx", |b| {
        b.iter(|| WeylDecomposition::new(&swap_cx).unwrap())
    });
    c.bench_function("cnot_cost_swap_cx", |b| {
        b.iter(|| two_qubit_cnot_cost(&swap_cx).unwrap())
    });
    c.bench_function("synthesize_swap_cx", |b| {
        b.iter(|| synthesize_two_qubit(&swap_cx, 0, 1).unwrap())
    });
}

criterion_group!(benches, synthesis_benchmarks);
criterion_main!(benches);
