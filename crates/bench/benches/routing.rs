//! Criterion benches: transpilation time of Qiskit+SABRE vs Qiskit+NASSC
//! (the `transpile time` columns of Tables I/III/IV) on representative
//! benchmarks and topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nassc::{transpile, TranspileOptions};
use nassc_benchmarks::circuits;
use nassc_topology::CouplingMap;

fn routing_benchmarks(c: &mut Criterion) {
    let montreal = CouplingMap::ibmq_montreal();
    let line = CouplingMap::linear(25);
    let cases = vec![
        ("grover_n4", circuits::grover(4)),
        ("vqe_n8", circuits::vqe(8, 3, 1)),
        ("qft_n15", circuits::qft(15)),
        ("adder_n10", circuits::adder(10)),
    ];

    let mut group = c.benchmark_group("transpile_montreal");
    group.sample_size(10);
    for (name, circuit) in &cases {
        group.bench_with_input(BenchmarkId::new("sabre", name), circuit, |b, qc| {
            b.iter(|| transpile(qc, &montreal, &TranspileOptions::sabre(1)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nassc", name), circuit, |b, qc| {
            b.iter(|| transpile(qc, &montreal, &TranspileOptions::nassc(1)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("transpile_linear25");
    group.sample_size(10);
    for (name, circuit) in cases.iter().take(2) {
        group.bench_with_input(BenchmarkId::new("sabre", name), circuit, |b, qc| {
            b.iter(|| transpile(qc, &line, &TranspileOptions::sabre(1)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nassc", name), circuit, |b, qc| {
            b.iter(|| transpile(qc, &line, &TranspileOptions::nassc(1)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, routing_benchmarks);
criterion_main!(benches);
