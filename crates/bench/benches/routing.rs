//! Criterion benches: transpilation time of Qiskit+SABRE vs Qiskit+NASSC
//! (the `transpile time` columns of Tables I/III/IV) on representative
//! benchmarks and topologies, plus the warm-session replay the
//! [`Transpiler`] caches buy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nassc::{RouterKind, TranspileOptions, Transpiler};
use nassc_benchmarks::circuits;
use nassc_topology::CouplingMap;

/// One cold transpile: a fresh session per iteration, so every cache misses
/// — the same work the pre-session free function did per call.
fn cold_transpile(
    circuit: &nassc::circuit::QuantumCircuit,
    device: &CouplingMap,
    router: RouterKind,
) -> nassc::TranspileResult {
    Transpiler::new(
        device.clone(),
        TranspileOptions::new().router(router).seed(1),
    )
    .transpile(circuit)
    .unwrap()
}

fn routing_benchmarks(c: &mut Criterion) {
    let montreal = CouplingMap::ibmq_montreal();
    let line = CouplingMap::linear(25);
    let cases = vec![
        ("grover_n4", circuits::grover(4)),
        ("vqe_n8", circuits::vqe(8, 3, 1)),
        ("qft_n15", circuits::qft(15)),
        ("adder_n10", circuits::adder(10)),
    ];

    let mut group = c.benchmark_group("transpile_montreal");
    group.sample_size(10);
    for (name, circuit) in &cases {
        group.bench_with_input(BenchmarkId::new("sabre", name), circuit, |b, qc| {
            b.iter(|| cold_transpile(qc, &montreal, RouterKind::Sabre))
        });
        group.bench_with_input(BenchmarkId::new("nassc", name), circuit, |b, qc| {
            b.iter(|| cold_transpile(qc, &montreal, RouterKind::Nassc))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("transpile_linear25");
    group.sample_size(10);
    for (name, circuit) in cases.iter().take(2) {
        group.bench_with_input(BenchmarkId::new("sabre", name), circuit, |b, qc| {
            b.iter(|| cold_transpile(qc, &line, RouterKind::Sabre))
        });
        group.bench_with_input(BenchmarkId::new("nassc", name), circuit, |b, qc| {
            b.iter(|| cold_transpile(qc, &line, RouterKind::Nassc))
        });
    }
    group.finish();

    // The session-reuse path: every iteration is served from warmed caches,
    // replaying a single routing pass instead of the full layout search.
    let mut group = c.benchmark_group("transpile_montreal_warm");
    group.sample_size(10);
    for (name, circuit) in cases.iter().take(2) {
        let session = Transpiler::new(montreal.clone(), TranspileOptions::new().seed(1));
        session.transpile(circuit).unwrap(); // warm the caches once
        group.bench_with_input(BenchmarkId::new("nassc", name), circuit, |b, qc| {
            b.iter(|| session.transpile(qc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, routing_benchmarks);
criterion_main!(benches);
