//! CI regression gate over `BENCH_*.json` reports.
//!
//! Validates that a report produced with `--json` parses, has rows, and that
//! named summary metrics stay within bounds:
//!
//! ```text
//! bench_gate BENCH_table1.json --min geomean_delta_cx_add 0.05
//! bench_gate BENCH_table2.json --min geomean_delta_depth_add 0.0 --max runs_regression 1.5
//! ```
//!
//! `--min NAME VALUE` fails when `summary[NAME] < VALUE` (or is missing or
//! NaN); `--max NAME VALUE` fails when `summary[NAME] > VALUE`. Both are
//! repeatable. Exit status is non-zero on any violation, which is what the
//! CI bench-smoke job keys off.
//!
//! `--emit-summary <path>` additionally writes a compact row-free summary
//! (artefact, suite, run parameters, the summary metrics) after the bounds
//! pass — the per-commit record the committed `bench_history/` directory
//! accumulates. Nothing is written when a bound fails: history entries are
//! passing runs only.

use std::path::PathBuf;
use std::process::ExitCode;

use nassc_bench::BenchReport;

/// One `--min`/`--max` constraint on a summary metric.
#[derive(Debug, Clone, PartialEq)]
struct Bound {
    metric: String,
    value: f64,
    is_min: bool,
}

/// Parsed command line: the report path plus the bounds to enforce.
#[derive(Debug, Clone, PartialEq)]
struct GateArgs {
    report: PathBuf,
    bounds: Vec<Bound>,
    emit_summary: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<GateArgs, String> {
    let mut report = None;
    let mut bounds = Vec::new();
    let mut emit_summary = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--emit-summary" => {
                let path = iter.next().ok_or("--emit-summary requires a path")?;
                emit_summary = Some(PathBuf::from(path));
            }
            "--min" | "--max" => {
                let metric = iter
                    .next()
                    .ok_or_else(|| format!("{arg} requires a metric name"))?
                    .clone();
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} {metric} requires a value"))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| format!("{arg} {metric}: invalid value {value:?}"))?;
                bounds.push(Bound {
                    metric,
                    value,
                    is_min: arg == "--min",
                });
            }
            other if report.is_none() && !other.starts_with("--") => {
                report = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(GateArgs {
        report: report.ok_or(
            "usage: bench_gate <report.json> [--min NAME VALUE] [--max NAME VALUE] \
             [--emit-summary <path>]",
        )?,
        bounds,
        emit_summary,
    })
}

/// The compact perf-history record for a passing report: everything except
/// the per-benchmark rows, as one JSON object. Metric names are crate-chosen
/// identifiers, but escape them anyway — the file is parsed by humans and
/// scripts alike.
fn summary_json(report: &BenchReport) -> String {
    let escape = |s: &str| {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect::<String>()
    };
    let metrics = report
        .summary
        .iter()
        .map(|(name, value)| {
            let rendered = if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            };
            format!("    \"{}\": {rendered}", escape(name))
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"artefact\": \"{}\",\n  \"suite\": \"{}\",\n  \"runs\": {},\n  \
         \"layout_trials\": {},\n  \"rows\": {},\n  \"summary\": {{\n{metrics}\n  }}\n}}\n",
        escape(&report.artefact),
        escape(&report.suite),
        report.runs,
        report.layout_trials,
        report.rows.len()
    )
}

/// Checks every bound, returning the list of violations.
fn check(report: &BenchReport, bounds: &[Bound]) -> Vec<String> {
    let mut violations = Vec::new();
    if report.rows.is_empty() {
        violations.push("report has no rows".to_string());
    }
    for bound in bounds {
        let Some(actual) = report.summary_value(&bound.metric) else {
            violations.push(format!("summary metric {:?} is missing", bound.metric));
            continue;
        };
        let ok = if bound.is_min {
            actual >= bound.value
        } else {
            actual <= bound.value
        };
        // NaN compares false either way, so a null/NaN metric always fails.
        if !ok {
            violations.push(format!(
                "summary metric {:?} = {actual} violates {} {}",
                bound.metric,
                if bound.is_min { "--min" } else { "--max" },
                bound.value
            ));
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            return ExitCode::FAILURE;
        }
    };
    let report = match BenchReport::read_from_file(&args.report) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_gate: {}: {e}", args.report.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: {} ({}, suite {}, {} runs, {} layout trials, {} rows)",
        args.report.display(),
        report.artefact,
        report.suite,
        report.runs,
        report.layout_trials,
        report.rows.len()
    );
    for (name, value) in &report.summary {
        println!("  {name} = {value}");
    }
    let violations = check(&report, &args.bounds);
    if violations.is_empty() {
        println!("bench_gate: OK ({} bounds checked)", args.bounds.len());
        if let Some(path) = &args.emit_summary {
            if let Err(e) = std::fs::write(path, summary_json(&report)) {
                eprintln!("bench_gate: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("bench_gate: wrote {}", path.display());
        }
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("bench_gate: FAIL: {violation}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_bench::ReportRow;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn report_with_summary(summary: &[(&str, f64)]) -> BenchReport {
        let mut report = BenchReport::new("t", "T", "quick", 1);
        report.rows.push(ReportRow {
            name: "bench".to_string(),
            qubits: 4,
            metrics: Vec::new(),
        });
        report.summary = summary.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        report
    }

    #[test]
    fn args_parse_path_and_repeated_bounds() {
        let args = parse_args(&strings(&[
            "r.json", "--min", "a", "0.5", "--max", "b", "2",
        ]))
        .unwrap();
        assert_eq!(args.report, PathBuf::from("r.json"));
        assert_eq!(args.bounds.len(), 2);
        assert!(args.bounds[0].is_min && !args.bounds[1].is_min);
        assert!(parse_args(&strings(&["--min", "a"])).is_err());
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["r.json", "--min", "a", "zzz"])).is_err());
    }

    #[test]
    fn emit_summary_flag_parses_and_renders_compact_json() {
        let args = parse_args(&strings(&["r.json", "--emit-summary", "out.json"])).unwrap();
        assert_eq!(args.emit_summary, Some(PathBuf::from("out.json")));
        assert!(parse_args(&strings(&["r.json", "--emit-summary"])).is_err());

        let report = report_with_summary(&[("trace_overhead_ratio", 1.02), ("bad", f64::NAN)]);
        let json = summary_json(&report);
        assert!(json.contains("\"artefact\": \"t\""));
        assert!(json.contains("\"suite\": \"quick\""));
        assert!(json.contains("\"rows\": 1"));
        assert!(json.contains("\"trace_overhead_ratio\": 1.02"));
        assert!(json.contains("\"bad\": null"), "non-finite renders as null");
        assert!(!json.contains("\"metrics\""), "rows are dropped");
    }

    #[test]
    fn bounds_pass_and_fail_as_expected() {
        let report = report_with_summary(&[("g", 0.18)]);
        let min_ok = Bound {
            metric: "g".to_string(),
            value: 0.05,
            is_min: true,
        };
        assert!(check(&report, std::slice::from_ref(&min_ok)).is_empty());
        let min_bad = Bound {
            value: 0.5,
            ..min_ok.clone()
        };
        assert_eq!(check(&report, &[min_bad]).len(), 1);
        let max_bad = Bound {
            value: 0.1,
            is_min: false,
            ..min_ok
        };
        assert_eq!(check(&report, &[max_bad]).len(), 1);
    }

    #[test]
    fn missing_or_nan_metrics_and_empty_reports_fail() {
        let report = report_with_summary(&[("nan", f64::NAN)]);
        let bound = |metric: &str| Bound {
            metric: metric.to_string(),
            value: 0.0,
            is_min: true,
        };
        assert_eq!(check(&report, &[bound("absent")]).len(), 1);
        assert_eq!(check(&report, &[bound("nan")]).len(), 1);
        let empty = BenchReport::new("t", "T", "quick", 1);
        assert_eq!(check(&empty, &[]).len(), 1);
    }
}
