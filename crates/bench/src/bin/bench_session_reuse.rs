//! What the [`Transpiler`] session's caches buy: drive the same comparison
//! grid through one session twice — a cold pass that fills the caches and a
//! warm pass served from them — and report both passes' transpile times, at
//! a 1-worker and an 8-worker budget.
//!
//! The warm pass must be **bit-identical** to the cold one (the session's
//! determinism contract); any divergence is counted in the
//! `warm_mismatches` summary metric so CI can gate it to zero. The headline
//! metrics are `warm_over_cold_w1` / `warm_over_cold_w8` — the warm pass
//! replays one routing pass per job instead of re-running the whole layout
//! search, so the ratio must stay ≤ 1:
//!
//! ```text
//! bench_session_reuse --qasm-dir benchmarks/qasm --json BENCH_session_reuse.json
//! bench_gate BENCH_session_reuse.json --max warm_mismatches 0 --max warm_over_cold_w1 1
//! ```
//!
//! Flags are the shared harness set (`--full`, `--runs N`,
//! `--layout-trials N`, `--qasm-dir <dir>`, `--json <path>`); the device is
//! `ibmq_montreal`, matching the Table I driver.

use std::time::Instant;

use nassc::{SessionJob, ThreadPool, TranspileOptions, TranspileResult, Transpiler};
use nassc_bench::{ensure_suite_fits, BenchReport, HarnessArgs, ReportRow, BASE_SEED};
use nassc_benchmarks::Benchmark;
use nassc_topology::CouplingMap;

/// The worker budgets the reuse experiment runs under: the serial baseline
/// and a parallel budget (`ThreadPool` clamps helpers to the machine).
const WORKER_COUNTS: [usize; 2] = [1, 8];

/// The standard comparison grid over raw circuits: for every benchmark,
/// `runs` seeds × {SABRE, NASSC}.
fn job_grid(suite: &[Benchmark], runs: usize, layout_trials: usize) -> Vec<SessionJob<'_>> {
    let mut jobs = Vec::with_capacity(suite.len() * runs * 2);
    for bench in suite {
        for run in 0..runs {
            let seed = BASE_SEED + run as u64;
            jobs.push(SessionJob::with_options(
                &bench.circuit,
                TranspileOptions::sabre(seed).with_layout_trials(layout_trials),
            ));
            jobs.push(SessionJob::with_options(
                &bench.circuit,
                TranspileOptions::nassc(seed).with_layout_trials(layout_trials),
            ));
        }
    }
    jobs
}

/// Sum of per-result transpile times — scheduling-noise-resistant, unlike
/// wall clock, because it never counts idle workers.
fn transpile_seconds(results: &[Result<TranspileResult, nassc::Error>]) -> f64 {
    results
        .iter()
        .map(|r| r.as_ref().expect("transpile").elapsed.as_secs_f64())
        .sum()
}

fn main() {
    let args = HarnessArgs::from_env();
    let suite = args.suite();
    let device = CouplingMap::ibmq_montreal();
    ensure_suite_fits(&suite, &device);

    let mut report = BenchReport::new(
        "session_reuse",
        "Transpiler session reuse — cold vs warm pass over the same grid",
        args.suite_label(),
        args.runs,
    );
    report.layout_trials = args.layout_trials;
    let mut total_mismatches = 0usize;

    println!(
        "== Session reuse — cold vs warm pass ({} jobs per pass) ==",
        { suite.len() * args.runs * 2 }
    );
    println!(
        "{:<8} {:>10} {:>10} {:>11} {:>11} {:>9} {:>11}",
        "workers", "cold(s)", "warm(s)", "cold wall", "warm wall", "warm/cold", "mismatches"
    );

    for workers in WORKER_COUNTS {
        let session = Transpiler::new(device.clone(), TranspileOptions::new())
            .with_pool(ThreadPool::new(workers));
        let jobs = job_grid(&suite, args.runs, args.layout_trials);

        let cold_start = Instant::now();
        let cold = session.transpile_jobs(&jobs);
        let cold_wall = cold_start.elapsed().as_secs_f64();
        let cold_s = transpile_seconds(&cold);
        let cold_stats = session.cache_stats();

        let warm_start = Instant::now();
        let warm = session.transpile_jobs(&jobs);
        let warm_wall = warm_start.elapsed().as_secs_f64();
        let warm_s = transpile_seconds(&warm);
        let warm_stats = session.cache_stats();

        // The determinism contract: the warm pass differs from the cold one
        // in `elapsed` and `cache` only.
        let mismatches = cold
            .iter()
            .zip(&warm)
            .filter(|(c, w)| {
                let (c, w) = (c.as_ref().expect("cold"), w.as_ref().expect("warm"));
                c.circuit != w.circuit
                    || c.initial_layout != w.initial_layout
                    || c.final_layout != w.final_layout
                    || c.swap_count != w.swap_count
                    || c.chosen_layout_trial != w.chosen_layout_trial
                    || c.layout_trial_costs != w.layout_trial_costs
            })
            .count();
        total_mismatches += mismatches;

        let ratio = if cold_s > 0.0 { warm_s / cold_s } else { 1.0 };
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>11.3} {:>11.3} {:>9.3} {:>11}",
            workers, cold_s, warm_s, cold_wall, warm_wall, ratio, mismatches
        );

        report.rows.push(ReportRow {
            name: format!("workers_{workers}"),
            qubits: device.num_qubits(),
            metrics: vec![
                ("cold_transpile_seconds".to_string(), cold_s),
                ("warm_transpile_seconds".to_string(), warm_s),
                ("cold_wall_seconds".to_string(), cold_wall),
                ("warm_wall_seconds".to_string(), warm_wall),
                ("warm_over_cold".to_string(), ratio),
                ("mismatches".to_string(), mismatches as f64),
                ("cold_cache_hits".to_string(), cold_stats.hits() as f64),
                ("cold_cache_misses".to_string(), cold_stats.misses() as f64),
                (
                    "warm_cache_hits".to_string(),
                    (warm_stats.hits() - cold_stats.hits()) as f64,
                ),
                (
                    "warm_cache_misses".to_string(),
                    (warm_stats.misses() - cold_stats.misses()) as f64,
                ),
            ],
        });
        report
            .summary
            .push((format!("warm_over_cold_w{workers}"), ratio));
        report
            .summary
            .push((format!("cold_transpile_seconds_w{workers}"), cold_s));
        report
            .summary
            .push((format!("warm_transpile_seconds_w{workers}"), warm_s));
    }

    report
        .summary
        .push(("warm_mismatches".to_string(), total_mismatches as f64));
    println!("warm-pass mismatches across all budgets: {total_mismatches}");
    args.emit_report(&report);
    if total_mismatches > 0 && args.json.is_none() {
        // Without a report for a CI gate to inspect, broken determinism must
        // fail here.
        std::process::exit(1);
    }
}
