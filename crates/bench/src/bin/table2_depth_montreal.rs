//! Table II: circuit depth of NASSC vs Qiskit+SABRE on `ibmq_montreal`.

use nassc_bench::{run_table_binary, TableKind};
use nassc_topology::CouplingMap;

fn main() {
    run_table_binary(
        "table2_depth_montreal",
        "Table II — circuit depth on ibmq_montreal",
        &CouplingMap::ibmq_montreal(),
        TableKind::Depth,
    );
}
