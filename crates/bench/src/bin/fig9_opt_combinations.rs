//! Figure 9: CNOT reduction of the best of the 8 optimization-flag
//! combinations versus enabling all three, on each coupling map.

use nassc::{OptimizationFlags, SessionJob, TranspileOptions, Transpiler};
use nassc_bench::{
    ensure_suite_fits, geometric_mean_reduction, relative_reduction, BenchReport, HarnessArgs,
    ReportRow,
};
use nassc_topology::CouplingMap;

/// Seed of run `r` (kept from the serial harness so outputs stay comparable).
fn seed(run: usize) -> u64 {
    2000 + run as u64
}

fn main() {
    let args = HarnessArgs::from_env();
    let suite = args.suite();
    let combinations = OptimizationFlags::all_combinations();
    let maps: Vec<(&str, CouplingMap)> = vec![
        ("ibmq_montreal", CouplingMap::ibmq_montreal()),
        ("linear-25", CouplingMap::linear(25)),
        ("grid-5x5", CouplingMap::grid(5, 5)),
    ];
    // A `--qasm-dir` corpus can be wider than the narrowest map; fail the
    // whole run up front instead of panicking mid-batch.
    for (_, device) in &maps {
        ensure_suite_fits(&suite, device);
    }
    let mut report = BenchReport::new(
        "fig9_opt_combinations",
        "Figure 9 — best-of-8 flag combinations vs all-enabled",
        args.suite_label(),
        args.runs,
    );
    report.layout_trials = args.layout_trials;
    let mut total_transpile_s = 0.0f64;

    for (map_name, device) in &maps {
        // One session per map, fed the raw circuits: the prepared cache runs
        // the device-independent pre-routing optimization once per benchmark
        // and shares it across all nine flag variants of the grid.
        let session = Transpiler::new(device.clone(), TranspileOptions::new());
        // For each benchmark, `runs` SABRE baselines followed by `runs` jobs
        // per flag combination.
        let variants_per_bench = args.runs * (1 + combinations.len());
        let mut jobs = Vec::with_capacity(suite.len() * variants_per_bench);
        for bench in &suite {
            for run in 0..args.runs {
                jobs.push(SessionJob::with_options(
                    &bench.circuit,
                    TranspileOptions::sabre(seed(run)).with_layout_trials(args.layout_trials),
                ));
            }
            for &flags in &combinations {
                for run in 0..args.runs {
                    jobs.push(SessionJob::with_options(
                        &bench.circuit,
                        TranspileOptions::nassc_with_flags(seed(run), flags)
                            .with_layout_trials(args.layout_trials),
                    ));
                }
            }
        }
        eprintln!("[{map_name}] transpiling {} jobs...", jobs.len());
        let results = session.transpile_jobs(&jobs);
        total_transpile_s += results
            .iter()
            .map(|r| r.as_ref().expect("transpile").elapsed.as_secs_f64())
            .sum::<f64>();
        let mean_cx = |slice: &[Result<nassc::TranspileResult, _>]| -> f64 {
            slice
                .iter()
                .map(|r| r.as_ref().expect("transpile").cx_count() as f64)
                .sum::<f64>()
                / args.runs as f64
        };

        println!("\n== Figure 9 — {map_name} ==");
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            "benchmark", "best-of-8", "all-enabled", "best flags"
        );
        let mut best_deltas = Vec::new();
        let mut all_enabled_deltas = Vec::new();
        for (index, bench) in suite.iter().enumerate() {
            let per_bench = &results[index * variants_per_bench..(index + 1) * variants_per_bench];
            let mean_ms = per_bench
                .iter()
                .map(|r| r.as_ref().expect("transpile").elapsed.as_secs_f64())
                .sum::<f64>()
                * 1000.0
                / per_bench.len() as f64;
            let sabre_cx = mean_cx(&per_bench[..args.runs]);
            let mut metrics = vec![
                ("sabre_cx".to_string(), sabre_cx),
                ("mean_transpile_ms".to_string(), mean_ms),
            ];
            let mut best = (f64::MAX, String::new());
            let mut all_enabled = 0.0;
            for (c, &flags) in combinations.iter().enumerate() {
                let offset = args.runs * (1 + c);
                let cx = mean_cx(&per_bench[offset..offset + args.runs]);
                metrics.push((format!("cx_{}", flags.label()), cx));
                if cx < best.0 {
                    best = (cx, flags.label());
                }
                if flags == OptimizationFlags::all() {
                    all_enabled = cx;
                }
            }
            let best_delta = relative_reduction(best.0, sabre_cx);
            let all_enabled_delta = relative_reduction(all_enabled, sabre_cx);
            best_deltas.push(best_delta);
            all_enabled_deltas.push(all_enabled_delta);
            metrics.push(("best_of_8_delta".to_string(), best_delta));
            metrics.push(("all_enabled_delta".to_string(), all_enabled_delta));
            println!(
                "{:<22} {:>11.2}% {:>11.2}% {:>14}",
                bench.name,
                100.0 * best_delta,
                100.0 * all_enabled_delta,
                best.1
            );
            report.rows.push(ReportRow {
                name: format!("{map_name}/{}", bench.name),
                qubits: bench.qubits,
                metrics,
            });
        }
        report.summary.push((
            format!("geomean_best_of_8_{map_name}"),
            geometric_mean_reduction(&best_deltas),
        ));
        report.summary.push((
            format!("geomean_all_enabled_{map_name}"),
            geometric_mean_reduction(&all_enabled_deltas),
        ));
        let stats = session.cache_stats();
        report.summary.push((
            format!("session_cache_hits_{map_name}"),
            stats.hits() as f64,
        ));
        report.summary.push((
            format!("session_cache_misses_{map_name}"),
            stats.misses() as f64,
        ));
    }

    report
        .summary
        .push(("total_transpile_seconds".to_string(), total_transpile_s));
    println!("total transpile time: {total_transpile_s:.3}s");
    args.emit_report(&report);
}
