//! Figure 9: CNOT reduction of the best of the 8 optimization-flag
//! combinations versus enabling all three, on each coupling map.

use nassc::{transpile, OptimizationFlags, TranspileOptions};
use nassc_bench::{relative_reduction, HarnessArgs};
use nassc_topology::CouplingMap;

fn main() {
    let args = HarnessArgs::from_env();
    let maps: Vec<(&str, CouplingMap)> = vec![
        ("ibmq_montreal", CouplingMap::ibmq_montreal()),
        ("linear-25", CouplingMap::linear(25)),
        ("grid-5x5", CouplingMap::grid(5, 5)),
    ];
    for (map_name, device) in maps {
        println!("\n== Figure 9 — {map_name} ==");
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            "benchmark", "best-of-8", "all-enabled", "best flags"
        );
        for bench in args.suite() {
            eprintln!("[{map_name}] sweeping {}...", bench.name);
            let sabre_cx: f64 = (0..args.runs)
                .map(|r| {
                    transpile(
                        &bench.circuit,
                        &device,
                        &TranspileOptions::sabre(2000 + r as u64),
                    )
                    .expect("sabre")
                    .cx_count() as f64
                })
                .sum::<f64>()
                / args.runs as f64;
            let mut best = (f64::MAX, String::new());
            let mut all_enabled = 0.0;
            for flags in OptimizationFlags::all_combinations() {
                let cx: f64 = (0..args.runs)
                    .map(|r| {
                        let options = TranspileOptions::nassc_with_flags(2000 + r as u64, flags);
                        transpile(&bench.circuit, &device, &options)
                            .expect("nassc")
                            .cx_count() as f64
                    })
                    .sum::<f64>()
                    / args.runs as f64;
                if cx < best.0 {
                    best = (cx, flags.label());
                }
                if flags == OptimizationFlags::all() {
                    all_enabled = cx;
                }
            }
            println!(
                "{:<22} {:>11.2}% {:>11.2}% {:>14}",
                bench.name,
                100.0 * relative_reduction(best.0, sabre_cx),
                100.0 * relative_reduction(all_enabled, sabre_cx),
                best.1
            );
        }
    }
}
