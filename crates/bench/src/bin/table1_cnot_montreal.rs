//! Table I: additional CNOT gates of NASSC vs Qiskit+SABRE on `ibmq_montreal`.

use nassc_bench::{run_table_binary, TableKind};
use nassc_topology::CouplingMap;

fn main() {
    run_table_binary(
        "table1_cnot_montreal",
        "Table I — additional CNOTs on ibmq_montreal",
        &CouplingMap::ibmq_montreal(),
        TableKind::Cnot,
    );
}
