//! Table I: additional CNOT gates of NASSC vs Qiskit+SABRE on `ibmq_montreal`.

use nassc_bench::{compare_benchmark, print_cnot_table, HarnessArgs};
use nassc_topology::CouplingMap;

fn main() {
    let args = HarnessArgs::from_env();
    let device = CouplingMap::ibmq_montreal();
    let rows: Vec<_> = args
        .suite()
        .iter()
        .map(|b| {
            eprintln!("transpiling {} ({} qubits)...", b.name, b.qubits);
            compare_benchmark(b, &device, args.runs)
        })
        .collect();
    print_cnot_table("Table I — additional CNOTs on ibmq_montreal", &rows);
}
