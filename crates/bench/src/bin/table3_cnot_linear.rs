//! Table III: additional CNOT gates on the 25-qubit linear topology.

use nassc_bench::{compare_benchmark, print_cnot_table, HarnessArgs};
use nassc_topology::CouplingMap;

fn main() {
    let args = HarnessArgs::from_env();
    let device = CouplingMap::linear(25);
    let rows: Vec<_> = args
        .suite()
        .iter()
        .map(|b| {
            eprintln!("transpiling {} ({} qubits)...", b.name, b.qubits);
            compare_benchmark(b, &device, args.runs)
        })
        .collect();
    print_cnot_table("Table III — additional CNOTs on the 25-qubit line", &rows);
}
