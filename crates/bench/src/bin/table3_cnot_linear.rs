//! Table III: additional CNOT gates on the 25-qubit linear topology.

use nassc_bench::{run_table_binary, TableKind};
use nassc_topology::CouplingMap;

fn main() {
    run_table_binary(
        "table3_cnot_linear",
        "Table III — additional CNOTs on the 25-qubit line",
        &CouplingMap::linear(25),
        TableKind::Cnot,
    );
}
