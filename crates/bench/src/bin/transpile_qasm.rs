//! Transpile external OpenQASM 2.0 workloads through the NASSC pipeline.
//!
//! Two modes:
//!
//! * **Single-circuit** (default): read one `.qasm` file (or stdin when the
//!   path is `-` or omitted), transpile it under the chosen router, and
//!   print the transpiled circuit back out as OpenQASM 2.0.
//!
//!   ```text
//!   transpile_qasm input.qasm --router nassc --seed 1000 --layout-trials 4
//!   cat input.qasm | transpile_qasm --device linear:16 --output out.qasm
//!   ```
//!
//! * **Corpus** (`--qasm-dir <dir>`): run every `.qasm` file of a directory
//!   through one [`Transpiler`] session under *both* routers (the standard
//!   SABRE-vs-NASSC comparison grid, fanned across all cores), print the
//!   comparison table, and — with `--json` — write a [`BenchReport`] whose
//!   summary carries `corpus_files`, `parse_failures`, `skipped_too_wide`
//!   (parsed fine but wider than the device — a capacity skip, not a
//!   frontend defect) and `total_transpile_seconds` for CI gating:
//!
//!   ```text
//!   transpile_qasm --qasm-dir benchmarks/qasm --runs 2 --json BENCH_qasm_corpus.json
//!   bench_gate BENCH_qasm_corpus.json --max parse_failures 0
//!   ```
//!
//! Parse failures in corpus mode are recorded in the report (and listed on
//! stderr) rather than aborting, so one bad file cannot hide the metrics of
//! the rest; without `--json` they make the exit status non-zero.
//!
//! Devices: `--device montreal` (default, 27 qubits), `eagle` (127),
//! `osprey` (433), `heavy-hex:<d>`, `linear:<n>`, `grid:<rows>x<cols>`.
//!
//! Either mode accepts `--profile <out.json>`: tracing is enabled around
//! the transpile and a Chrome `trace_event` profile (open it in
//! `chrome://tracing` or Perfetto) is written to the given path, with the
//! aggregated per-span table printed to stderr. Single-circuit mode also
//! reports what share of the transpile wall time the top-level spans
//! account for.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use nassc::qasm;
use nassc::{Device, RouterKind, TranspileOptions, Transpiler};
use nassc_bench::{
    alloc, cli_usize, cli_value, cnot_report, compare_suite_on, print_cnot_table,
    total_transpile_seconds, BenchReport, ReportRow, BASE_SEED,
};
use nassc_benchmarks::Benchmark;

// The counting allocator feeds the per-span allocation column of
// `--profile` span tables (registered as the trace probe in `main`).
#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Parses `--device` into a [`Device`] via its [`FromStr`](std::str::FromStr)
/// impl — the same parser (and the same error message) the `nassc-serve`
/// daemon uses for its device config.
fn device_from_args() -> Device {
    let spec = cli_value("--device").unwrap_or_else(|| "montreal".to_string());
    spec.parse().unwrap_or_else(|e| {
        eprintln!("error: --device: {e}");
        std::process::exit(1);
    })
}

/// Parses `--router` into a router kind (single-circuit mode only; corpus
/// mode always compares both).
fn router_from_args() -> RouterKind {
    match cli_value("--router").as_deref() {
        None | Some("nassc") => RouterKind::Nassc,
        Some("sabre") => RouterKind::Sabre,
        Some(other) => {
            eprintln!("error: --router expects sabre or nassc, got {other:?}");
            std::process::exit(1);
        }
    }
}

/// Every flag of this binary that consumes a value — the single source of
/// truth for [`input_path`]'s skipping, so a newly added flag cannot have
/// its value mistaken for the positional input file.
const VALUE_FLAGS: &[&str] = &[
    "--device",
    "--router",
    "--seed",
    "--layout-trials",
    "--runs",
    "--json",
    "--output",
    "--qasm-dir",
    "--profile",
];

/// The positional input path of single-circuit mode (`-`/absent = stdin).
fn input_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            flag if VALUE_FLAGS.contains(&flag) => {
                args.next();
            }
            "-" => return None,
            flag if flag.starts_with("--") => {}
            path => return Some(PathBuf::from(path)),
        }
    }
    None
}

/// Warns about flags that the selected mode ignores, so a mis-invocation
/// leaves a trace instead of silently reporting something else.
fn warn_ignored_flags(mode: &str, ignored: &[&str]) {
    for flag in ignored {
        if cli_value(flag).is_some() {
            eprintln!("warning: {flag} has no effect in {mode} mode");
        }
    }
}

fn alloc_probe() -> u64 {
    alloc::total_bytes() as u64
}

fn main() -> ExitCode {
    nassc::trace::set_alloc_probe(alloc_probe);
    let device = device_from_args();
    let layout_trials = cli_usize("--layout-trials").unwrap_or(1).max(1);
    let json = cli_value("--json").map(PathBuf::from);

    if let Some(dir) = cli_value("--qasm-dir").map(PathBuf::from) {
        // Corpus mode always compares both routers on the shared seed sweep
        // and emits no per-circuit QASM.
        warn_ignored_flags("corpus", &["--router", "--seed", "--output"]);
        let runs = cli_usize("--runs").unwrap_or(1).max(1);
        return corpus_mode(&dir, &device, runs, layout_trials, json);
    }
    warn_ignored_flags("single-circuit", &["--runs"]);
    single_mode(&device, router_from_args(), layout_trials, json)
}

/// Single-circuit mode: file/stdin in, transpiled QASM out.
fn single_mode(
    device: &Device,
    router: RouterKind,
    layout_trials: usize,
    json: Option<PathBuf>,
) -> ExitCode {
    let (source, name) = match input_path() {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(source) => (
                source,
                path.file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string()),
            ),
            Err(e) => {
                eprintln!("error: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut source = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut source) {
                eprintln!("error: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            (source, "stdin".to_string())
        }
    };
    let circuit = match qasm::parse(&source) {
        Ok(circuit) => circuit,
        Err(e) => {
            eprintln!("error: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if circuit.num_qubits() > device.num_qubits() {
        eprintln!(
            "error: {name} needs {} qubits but the device has {} (try --device linear:{})",
            circuit.num_qubits(),
            device.num_qubits(),
            circuit.num_qubits()
        );
        return ExitCode::FAILURE;
    }
    let seed = cli_usize("--seed").map_or(BASE_SEED, |s| s as u64);
    let options = TranspileOptions::new()
        .router(router)
        .seed(seed)
        .layout_trials(layout_trials);
    let session = Transpiler::new(device.clone(), options.clone());
    let profile = cli_value("--profile").map(PathBuf::from);
    if profile.is_some() {
        nassc::trace::enable();
    }
    let traced_start = Instant::now();
    let result = session.transpile(&circuit);
    let traced_wall = traced_start.elapsed();
    let trace = profile.as_ref().map(|_| {
        let report = nassc::trace::take_report();
        nassc::trace::disable();
        report
    });
    let result = match result {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: transpiling {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(path), Some(trace)) = (&profile, &trace) {
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let coverage = 100.0 * trace.top_level_span_ns() as f64 / traced_wall.as_nanos() as f64;
        eprint!("{}", trace.render_span_table());
        eprintln!(
            "trace: {} events, {:.1}% of {:.1} ms wall accounted by top-level spans, \
             {} dropped; wrote {}",
            trace.events.len(),
            coverage,
            1000.0 * traced_wall.as_secs_f64(),
            trace.events_dropped,
            path.display()
        );
    }
    let out_qasm = match qasm::export(&result.circuit) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: exporting {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{name}: {} qubits, {} -> {} CNOTs, depth {}, {} SWAPs inserted, {:.1} ms ({:?})",
        circuit.num_qubits(),
        circuit.cx_count(),
        result.cx_count(),
        result.depth(),
        result.swap_count,
        1000.0 * result.elapsed.as_secs_f64(),
        options.router,
    );
    if let Some(path) = &json {
        let mut report = BenchReport::new(
            "transpile_qasm",
            "Single-circuit OpenQASM transpile",
            format!("qasm:{name}"),
            1,
        );
        report.layout_trials = layout_trials;
        report.rows.push(ReportRow {
            name: name.clone(),
            qubits: circuit.num_qubits(),
            metrics: vec![
                ("original_cx".to_string(), circuit.cx_count() as f64),
                ("cx_total".to_string(), result.cx_count() as f64),
                ("depth_total".to_string(), result.depth() as f64),
                ("swap_count".to_string(), result.swap_count as f64),
                (
                    "transpile_ms".to_string(),
                    1000.0 * result.elapsed.as_secs_f64(),
                ),
            ],
        });
        report.summary = vec![
            ("parse_failures".to_string(), 0.0),
            (
                "total_transpile_seconds".to_string(),
                result.elapsed.as_secs_f64(),
            ),
        ];
        if let Err(e) = report.write_to_file(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    match cli_value("--output").map(PathBuf::from) {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, out_qasm) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{out_qasm}"),
    }
    ExitCode::SUCCESS
}

/// Corpus mode: the whole directory through the batch comparison grid.
fn corpus_mode(
    dir: &Path,
    device: &Device,
    runs: usize,
    layout_trials: usize,
    json: Option<PathBuf>,
) -> ExitCode {
    let corpus = match qasm::load_corpus(dir) {
        Ok(corpus) => corpus,
        Err(e) => {
            eprintln!("error: reading {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if corpus.is_empty() {
        eprintln!("error: no .qasm files in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let total_files = corpus.len();
    let mut suite = Vec::new();
    let mut parse_failures = 0usize;
    // A circuit wider than the device parsed fine — that is a capacity
    // skip, tracked separately so the `parse_failures` CI gate keeps
    // meaning "frontend regression".
    let mut skipped_too_wide = 0usize;
    for file in corpus {
        match file.circuit {
            Ok(circuit) if circuit.num_qubits() > device.num_qubits() => {
                eprintln!(
                    "skipped (too wide): {}: needs {} qubits but the device has {}",
                    file.path.display(),
                    circuit.num_qubits(),
                    device.num_qubits()
                );
                skipped_too_wide += 1;
            }
            Ok(circuit) => suite.push(Benchmark::new(file.name, circuit)),
            Err(e) => {
                eprintln!("parse failure: {}: {e}", file.path.display());
                parse_failures += 1;
            }
        }
    }
    eprintln!(
        "transpiling {} of {total_files} corpus files × {runs} seeds × 2 routers \
         ({layout_trials} layout trials each) on {} threads...",
        suite.len(),
        nassc_parallel::default_parallelism()
    );
    let session = Transpiler::new(device.clone(), TranspileOptions::new());
    let profile = cli_value("--profile").map(PathBuf::from);
    if profile.is_some() {
        nassc::trace::enable();
    }
    let rows = compare_suite_on(&session, &suite, runs, layout_trials);
    if let Some(path) = &profile {
        let trace = nassc::trace::take_report();
        nassc::trace::disable();
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprint!("{}", trace.render_span_table());
        eprintln!(
            "trace: {} events, {} dropped; wrote {}",
            trace.events.len(),
            trace.events_dropped,
            path.display()
        );
    }
    let title = format!(
        "OpenQASM corpus {} on {} qubits",
        dir.display(),
        device.num_qubits()
    );
    print_cnot_table(&title, &rows);
    println!(
        "total transpile time: {:.3}s across {} transpiles \
         ({parse_failures} parse failures, {skipped_too_wide} skipped too-wide)",
        total_transpile_seconds(&rows, runs),
        suite.len() * runs * 2
    );
    let mut report = cnot_report(
        "qasm_corpus",
        &title,
        &format!("qasm:{}", dir.display()),
        runs,
        &rows,
    );
    report.layout_trials = layout_trials;
    report
        .summary
        .push(("corpus_files".to_string(), total_files as f64));
    report
        .summary
        .push(("parse_failures".to_string(), parse_failures as f64));
    report
        .summary
        .push(("skipped_too_wide".to_string(), skipped_too_wide as f64));
    let stats = session.cache_stats();
    report
        .summary
        .push(("session_cache_hits".to_string(), stats.hits() as f64));
    report
        .summary
        .push(("session_cache_misses".to_string(), stats.misses() as f64));
    if let Some(path) = &json {
        if let Err(e) = report.write_to_file(path) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        // The report records the failures; let the CI gate decide.
        ExitCode::SUCCESS
    } else if parse_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
