//! Scale benchmark — heavy-hex devices × 10k/100k-gate circuits, with
//! self-reported allocation.
//!
//! Runs the {`montreal`, `eagle`, `osprey`} × {`qv`, `qft`} × {10k, 100k
//! gates} × {SABRE, NASSC} grid through the [`nassc::Transpiler`] session
//! API. Every circuit is generated (see [`nassc_bench::scale`]), exported to
//! OPENQASM and re-parsed — so the parser is exercised at 100k-gate scale —
//! and the parsed copy is what gets transpiled. Two mismatch checks feed the
//! `scale_mismatches` summary metric CI gates to zero:
//!
//! 1. **round-trip** — `parse(export(generated))` must equal the generated
//!    circuit exactly;
//! 2. **reference path** — the session's output must be bit-identical
//!    (circuit, initial layout, swap count) to the pre-session
//!    `nassc::transpile` free function on the generated circuit.
//!
//! Peak/total heap use per row comes from the crate's counting global
//! allocator ([`nassc_bench::alloc`]) — no external profiler. The summary
//! carries `peak_alloc_mb` (max over rows) and `total_transpile_seconds` so
//! CI can put hard bounds on both:
//!
//! ```text
//! bench_scale --max-qubits 127 --json BENCH_scale.json
//! bench_gate BENCH_scale.json --max scale_mismatches 0 \
//!     --max peak_alloc_mb 2048 --max total_transpile_seconds 900
//! ```
//!
//! Flags: `--devices a,b,c` (any `Device::from_str` spec; default
//! `montreal,eagle,osprey`), `--sizes n,m` (default `10000,100000`),
//! `--styles qv,qft`, `--max-qubits N` (skip devices wider than `N` — how CI
//! keeps the 433-qubit Osprey rows out of the smoke budget), `--no-reference`
//! (skip check 2, halving runtime for local profiling), `--json <path>`.

#![allow(deprecated)] // the pre-session `transpile` free function IS the reference

use std::time::Instant;

use nassc::circuit::QuantumCircuit;
use nassc::{transpile, Device, TranspileOptions, Transpiler};
use nassc_bench::scale::{qft_style, qv_style};
use nassc_bench::{alloc, cli_value, BenchReport, ReportRow, BASE_SEED};

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

const MB: f64 = 1024.0 * 1024.0;

fn csv_list(flag: &str, default: &str) -> Vec<String> {
    cli_value(flag)
        .unwrap_or_else(|| default.to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Generates one workload: the circuit, its QASM text, and the re-parsed
/// copy (what the timed transpile consumes).
fn workload(style: &str, width: usize, gates: usize) -> (QuantumCircuit, QuantumCircuit) {
    let generated = match style {
        "qv" => qv_style(width, gates, BASE_SEED),
        "qft" => qft_style(width, gates),
        other => {
            eprintln!("error: unknown style {other:?} (expected qv or qft)");
            std::process::exit(1);
        }
    };
    let qasm = generated
        .to_qasm()
        .expect("generated circuits are exportable");
    let parsed = nassc_qasm::parse(&qasm).expect("exported QASM must re-parse");
    (generated, parsed)
}

fn main() {
    let devices = csv_list("--devices", "montreal,eagle,osprey");
    let sizes: Vec<usize> = csv_list("--sizes", "10000,100000")
        .iter()
        .map(|s| s.parse().expect("--sizes takes integers"))
        .collect();
    let styles = csv_list("--styles", "qv,qft");
    let max_qubits = cli_value("--max-qubits").map(|v| v.parse::<usize>().expect("--max-qubits"));
    let check_reference = !std::env::args().any(|a| a == "--no-reference");
    let json_path = cli_value("--json");

    let mut report = BenchReport::new(
        "scale",
        "Heavy-hex scale sweep — transpile time and peak allocation",
        "scale",
        1,
    );
    let mut mismatches = 0usize;
    let mut peak_alloc_mb = 0f64;
    let mut total_seconds = 0f64;

    println!("== Scale sweep — devices {devices:?}, sizes {sizes:?}, styles {styles:?} ==");
    println!(
        "{:<26} {:>6} {:>8} {:>12} {:>8} {:>10} {:>10}",
        "row", "qubits", "gates", "transpile ms", "swaps", "peak MB", "total MB"
    );

    for spec in &devices {
        let device: Device = spec.parse().unwrap_or_else(|e| {
            eprintln!("error: --devices {spec}: {e}");
            std::process::exit(1);
        });
        let width = device.coupling().num_qubits();
        if max_qubits.is_some_and(|cap| width > cap) {
            println!(
                "{:<26} skipped (--max-qubits {})",
                spec,
                max_qubits.unwrap()
            );
            continue;
        }
        for style in &styles {
            for &gates in &sizes {
                let (generated, parsed) = workload(style, width, gates);
                if parsed != generated {
                    eprintln!("MISMATCH: {spec}/{style}{gates}: QASM round-trip diverged");
                    mismatches += 1;
                }
                for router in ["sabre", "nassc"] {
                    let options = match router {
                        "sabre" => TranspileOptions::sabre(BASE_SEED),
                        _ => TranspileOptions::nassc(BASE_SEED),
                    };
                    let session = Transpiler::new(device.clone(), options.clone());

                    alloc::reset();
                    let start = Instant::now();
                    let result = session.transpile(&parsed).expect("transpile");
                    let elapsed = start.elapsed().as_secs_f64();
                    let peak = alloc::peak_bytes();
                    let total = alloc::total_bytes();

                    if check_reference {
                        let reference = transpile(&generated, device.coupling(), &options)
                            .expect("reference transpile");
                        if result.circuit != reference.circuit
                            || result.initial_layout != reference.initial_layout
                            || result.swap_count != reference.swap_count
                        {
                            eprintln!(
                                "MISMATCH: {spec}/{style}{gates}/{router}: session output \
                                 diverged from the reference transpile path"
                            );
                            mismatches += 1;
                        }
                    }

                    let name = format!("{spec}/{style}{}k/{router}", gates / 1000);
                    println!(
                        "{:<26} {:>6} {:>8} {:>12.1} {:>8} {:>10.1} {:>10.1}",
                        name,
                        width,
                        gates,
                        elapsed * 1e3,
                        result.swap_count,
                        peak as f64 / MB,
                        total as f64 / MB
                    );
                    report.rows.push(ReportRow {
                        name,
                        qubits: width,
                        metrics: vec![
                            ("gates".into(), gates as f64),
                            ("transpile_ms".into(), elapsed * 1e3),
                            ("swaps".into(), result.swap_count as f64),
                            ("cx_total".into(), result.cx_count() as f64),
                            ("peak_bytes".into(), peak as f64),
                            ("total_bytes".into(), total as f64),
                        ],
                    });
                    peak_alloc_mb = peak_alloc_mb.max(peak as f64 / MB);
                    total_seconds += elapsed;
                }
            }
        }
    }

    report.summary = vec![
        ("rows".into(), report.rows.len() as f64),
        ("scale_mismatches".into(), mismatches as f64),
        ("peak_alloc_mb".into(), peak_alloc_mb),
        ("total_transpile_seconds".into(), total_seconds),
    ];
    println!(
        "\nsummary: rows {} | mismatches {} | peak alloc {:.1} MB | transpile {:.1} s",
        report.rows.len(),
        mismatches,
        peak_alloc_mb,
        total_seconds
    );

    if let Some(path) = json_path {
        report
            .write_to_file(std::path::Path::new(&path))
            .expect("write report");
        println!("report written to {path}");
    }
    if mismatches > 0 {
        std::process::exit(1);
    }
}
