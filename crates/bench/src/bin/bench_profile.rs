//! Per-stage pipeline profile and tracing-overhead measurement over the
//! benchmark corpus.
//!
//! Runs the suite through the standard SABRE-vs-NASSC comparison grid
//! twice per repetition — once with tracing disabled, once enabled — on
//! fresh (all-cold) sessions, takes the best wall time of each mode across
//! repetitions, and reports:
//!
//! * `trace_overhead_ratio` — traced / untraced corpus wall time. CI gates
//!   this at ≤ 1.10: the recorder must stay effectively free even when on.
//! * one row per span name with count, total/p50/p99 wall time and
//!   allocation bytes (this binary installs the counting allocator and
//!   registers it as the trace allocation probe).
//! * `trace_events` / `trace_events_dropped` — a non-zero dropped count
//!   means the per-thread buffers overflowed and the profile is truncated.
//!
//! ```text
//! bench_profile --qasm-dir benchmarks/qasm --runs 1 --json BENCH_profile.json
//! bench_gate BENCH_profile.json --max trace_overhead_ratio 1.1
//! ```

use std::time::Instant;

use nassc::{TranspileOptions, Transpiler};
use nassc_bench::{
    alloc, compare_suite_on, ensure_suite_fits, print_cnot_table, total_transpile_seconds,
    BenchReport, HarnessArgs, ReportRow,
};
use nassc_topology::CouplingMap;

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Interleaved (untraced, traced) repetitions; best-of-N per mode keeps the
/// overhead ratio robust to scheduling noise on shared CI runners.
const REPS: usize = 3;

fn alloc_probe() -> u64 {
    alloc::total_bytes() as u64
}

fn main() {
    let args = HarnessArgs::from_env();
    let suite = args.suite();
    let device = CouplingMap::ibmq_montreal();
    ensure_suite_fits(&suite, &device);
    nassc::trace::set_alloc_probe(alloc_probe);

    eprintln!(
        "profiling {} benchmarks × {} seeds × 2 routers ({} layout trials), \
         {REPS} reps per mode on {} threads...",
        suite.len(),
        args.runs,
        args.layout_trials,
        nassc_parallel::default_parallelism()
    );

    let run_suite = || {
        let session = Transpiler::new(device.clone(), TranspileOptions::new());
        let start = Instant::now();
        let rows = compare_suite_on(&session, &suite, args.runs, args.layout_trials);
        (start.elapsed().as_secs_f64(), rows)
    };

    let mut untraced_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut rows = Vec::new();
    let mut trace = None;
    for rep in 0..REPS {
        nassc::trace::disable();
        let (untraced, untraced_rows) = run_suite();
        untraced_best = untraced_best.min(untraced);
        rows = untraced_rows;

        nassc::trace::enable();
        let (traced, traced_rows) = run_suite();
        let report = nassc::trace::take_report();
        nassc::trace::disable();
        traced_best = traced_best.min(traced);
        trace = Some(report);
        eprintln!("rep {rep}: untraced {untraced:.3}s, traced {traced:.3}s");

        // Tracing must never change results; CNOT counts are the cheap
        // canary (timing metrics legitimately differ between the passes).
        let project = |rows: &[nassc_bench::ComparisonRow]| {
            rows.iter()
                .map(|row| {
                    (
                        row.name.clone(),
                        row.sabre.cx_total.to_bits(),
                        row.nassc.cx_total.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            project(&rows),
            project(&traced_rows),
            "traced and untraced corpus results diverged"
        );
    }
    let trace = trace.expect("at least one traced repetition");
    let ratio = if untraced_best > 0.0 {
        traced_best / untraced_best
    } else {
        1.0
    };

    let title = format!("Pipeline profile: {} suite", args.suite_label());
    print_cnot_table(&title, &rows);
    eprint!("{}", trace.render_span_table());
    println!(
        "trace overhead: untraced {untraced_best:.3}s, traced {traced_best:.3}s, \
         ratio {ratio:.3} ({} events, {} dropped)",
        trace.events.len(),
        trace.events_dropped
    );

    let mut report = BenchReport::new("profile", &title, args.suite_label(), args.runs);
    report.layout_trials = args.layout_trials;
    for stat in trace.span_table() {
        report.rows.push(ReportRow {
            name: format!("span:{}", stat.name),
            qubits: 0,
            metrics: vec![
                ("count".to_string(), stat.count as f64),
                ("total_ms".to_string(), stat.total_ns as f64 / 1e6),
                ("p50_ms".to_string(), stat.p50_ns as f64 / 1e6),
                ("p99_ms".to_string(), stat.p99_ns as f64 / 1e6),
                ("alloc_bytes".to_string(), stat.alloc_bytes as f64),
            ],
        });
    }
    for (name, total) in trace.counter_totals() {
        report.rows.push(ReportRow {
            name: format!("counter:{name}"),
            qubits: 0,
            metrics: vec![("total".to_string(), total as f64)],
        });
    }
    report.summary = vec![
        ("trace_overhead_ratio".to_string(), ratio),
        ("untraced_seconds".to_string(), untraced_best),
        ("traced_seconds".to_string(), traced_best),
        (
            "total_transpile_seconds".to_string(),
            total_transpile_seconds(&rows, args.runs),
        ),
        ("trace_events".to_string(), trace.events.len() as f64),
        (
            "trace_events_dropped".to_string(),
            trace.events_dropped as f64,
        ),
    ];
    args.emit_report(&report);
}
