//! Figure 11: additional CNOTs and success rates of SABRE, NASSC and their
//! noise-aware (+HA) variants under the `ibmq_montreal` noise model.
//!
//! Always runs the dedicated noise suite (`--full` does not apply and is
//! warned about); `--runs N` averages each variant over `N` routing seeds,
//! `--shots N` controls the per-circuit noisy simulation.

use nassc::{SessionJob, TranspileOptions, Transpiler};
use nassc_bench::{cli_usize, BenchReport, HarnessArgs, ReportRow};
use nassc_parallel::parallel_map;
use nassc_sim::{success_rate, NoiseModel};
use nassc_topology::{Calibration, CouplingMap};

const VARIANT_NAMES: [&str; 4] = ["sabre", "nassc", "sabre_ha", "nassc_ha"];

/// Routing seed of run `r` (run 0 matches the old single-seed harness).
fn seed(run: usize) -> u64 {
    11 + run as u64
}

fn main() {
    let args = HarnessArgs::from_env();
    if args.full {
        eprintln!("warning: --full has no effect; Figure 11 always uses the noise suite");
    }
    if args.qasm_dir.is_some() {
        // Success-rate simulation is tuned to the five small noise-suite
        // circuits; silently reporting built-in numbers for a user corpus
        // would be worse than refusing.
        eprintln!("error: --qasm-dir is not supported; Figure 11 always uses the noise suite");
        std::process::exit(1);
    }
    let shots: usize = cli_usize("--shots").unwrap_or(8192);
    let device = CouplingMap::ibmq_montreal();
    let calibration = Calibration::synthetic(&device, 2022);
    let noise = NoiseModel::from_calibration(&device, calibration.clone());
    let benchmarks = nassc_benchmarks::noise_benchmarks();

    let variant_option = |variant: usize, run: usize| {
        let base = match variant {
            0 => TranspileOptions::sabre(seed(run)),
            1 => TranspileOptions::nassc(seed(run)),
            2 => TranspileOptions::sabre(seed(run)).with_calibration(calibration.clone()),
            _ => TranspileOptions::nassc(seed(run)).with_calibration(calibration.clone()),
        };
        base.with_layout_trials(args.layout_trials)
    };

    // One session serves the whole grid: the prepared cache runs the
    // pre-routing optimization once per benchmark (the prepared circuit is
    // also the unrouted CNOT baseline, served back by `Transpiler::prepared`
    // below), and the distance cache holds one matrix per calibration — the
    // plain hop-count one and the noise-aware one of the `+HA` variants.
    let session = Transpiler::new(device.clone(), TranspileOptions::new());
    // The full (benchmark × variant × run) grid in one batch.
    let mut jobs: Vec<SessionJob<'_>> = Vec::with_capacity(benchmarks.len() * 4 * args.runs);
    for bench in &benchmarks {
        for variant in 0..4 {
            for run in 0..args.runs {
                jobs.push(SessionJob::with_options(
                    &bench.circuit,
                    variant_option(variant, run),
                ));
            }
        }
    }
    eprintln!(
        "routing {} jobs, then simulating with {} shots each...",
        jobs.len(),
        shots
    );
    let routed = session.transpile_jobs(&jobs);
    let total_transpile_s: f64 = routed
        .iter()
        .map(|r| r.as_ref().expect("transpile").elapsed.as_secs_f64())
        .sum();
    // The noisy shot simulations dominate wall-clock; fan them out too
    // (the per-call seed is fixed, so rates match the serial harness).
    let rates = parallel_map(routed.iter().collect(), |result| {
        success_rate(
            &result.as_ref().expect("transpile").circuit,
            &noise,
            shots,
            97,
        )
    });

    let mut report = BenchReport::new(
        "fig11_noise_aware",
        "Figure 11 — noise-aware routing and success rates on ibmq_montreal",
        "noise",
        args.runs,
    );
    report.layout_trials = args.layout_trials;
    println!(
        "== Figure 11 — noise-aware routing on ibmq_montreal (shots = {shots}, runs = {}) ==",
        args.runs
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8}",
        "benchmark",
        "SABRE+cx",
        "NASSC+cx",
        "S+HA+cx",
        "N+HA+cx",
        "S rate",
        "N rate",
        "S+HA",
        "N+HA"
    );
    let per_bench = 4 * args.runs;
    let mut rate_sums = [0.0f64; 4];
    for (index, bench) in benchmarks.iter().enumerate() {
        // A guaranteed cache hit: the batch above already prepared it.
        let baseline = session
            .prepared(&bench.circuit)
            .expect("baseline")
            .cx_count();
        let mean = |values: &mut dyn Iterator<Item = f64>| -> f64 {
            values.sum::<f64>() / args.runs.max(1) as f64
        };
        let mut added = [0.0f64; 4];
        let mut bench_rates = [0.0f64; 4];
        for variant in 0..4 {
            let start = index * per_bench + variant * args.runs;
            added[variant] = mean(&mut routed[start..start + args.runs].iter().map(|r| {
                r.as_ref()
                    .expect("transpile")
                    .cx_count()
                    .saturating_sub(baseline) as f64
            }));
            bench_rates[variant] = mean(&mut rates[start..start + args.runs].iter().copied());
        }
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>10.1} {:>10.1} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            bench.name,
            added[0],
            added[1],
            added[2],
            added[3],
            bench_rates[0],
            bench_rates[1],
            bench_rates[2],
            bench_rates[3]
        );
        let row_jobs = &routed[index * per_bench..(index + 1) * per_bench];
        let mean_ms = row_jobs
            .iter()
            .map(|r| r.as_ref().expect("transpile").elapsed.as_secs_f64())
            .sum::<f64>()
            * 1000.0
            / row_jobs.len() as f64;
        let mut metrics = vec![
            ("baseline_cx".to_string(), baseline as f64),
            ("mean_transpile_ms".to_string(), mean_ms),
        ];
        for (v, name) in VARIANT_NAMES.iter().enumerate() {
            metrics.push((format!("added_cx_{name}"), added[v]));
            metrics.push((format!("rate_{name}"), bench_rates[v]));
            rate_sums[v] += bench_rates[v];
        }
        report.rows.push(ReportRow {
            name: bench.name.to_string(),
            qubits: bench.qubits,
            metrics,
        });
    }
    for (v, name) in VARIANT_NAMES.iter().enumerate() {
        report.summary.push((
            format!("mean_rate_{name}"),
            rate_sums[v] / benchmarks.len().max(1) as f64,
        ));
    }
    report.summary.push(("shots".to_string(), shots as f64));
    report
        .summary
        .push(("total_transpile_seconds".to_string(), total_transpile_s));
    let stats = session.cache_stats();
    report
        .summary
        .push(("session_cache_hits".to_string(), stats.hits() as f64));
    report
        .summary
        .push(("session_cache_misses".to_string(), stats.misses() as f64));
    println!("total transpile time: {total_transpile_s:.3}s (simulation excluded)");
    args.emit_report(&report);
}
