//! Figure 11: additional CNOTs and success rates of SABRE, NASSC and their
//! noise-aware (+HA) variants under the `ibmq_montreal` noise model.

use nassc::{optimize_without_routing, transpile, TranspileOptions};
use nassc_sim::{success_rate, NoiseModel};
use nassc_topology::{Calibration, CouplingMap};

fn main() {
    let shots: usize = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--shots")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(8192);
    let device = CouplingMap::ibmq_montreal();
    let calibration = Calibration::synthetic(&device, 2022);
    let noise = NoiseModel::from_calibration(&device, calibration.clone());

    println!("== Figure 11 — noise-aware routing on ibmq_montreal (shots = {shots}) ==");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8}",
        "benchmark",
        "SABRE+cx",
        "NASSC+cx",
        "S+HA+cx",
        "N+HA+cx",
        "S rate",
        "N rate",
        "S+HA",
        "N+HA"
    );
    for bench in nassc_benchmarks::noise_benchmarks() {
        eprintln!("routing and simulating {}...", bench.name);
        let baseline = optimize_without_routing(&bench.circuit)
            .expect("baseline")
            .cx_count();
        let variants = [
            TranspileOptions::sabre(11),
            TranspileOptions::nassc(11),
            TranspileOptions::sabre(11).with_calibration(calibration.clone()),
            TranspileOptions::nassc(11).with_calibration(calibration.clone()),
        ];
        let mut added = Vec::new();
        let mut rates = Vec::new();
        for options in &variants {
            let result = transpile(&bench.circuit, &device, options).expect("transpile");
            added.push(result.cx_count().saturating_sub(baseline));
            rates.push(success_rate(&result.circuit, &noise, shots, 97));
        }
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            bench.name,
            added[0],
            added[1],
            added[2],
            added[3],
            rates[0],
            rates[1],
            rates[2],
            rates[3]
        );
    }
}
