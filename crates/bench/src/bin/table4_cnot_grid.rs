//! Table IV: additional CNOT gates on the 5×5 grid topology.

use nassc_bench::{compare_benchmark, print_cnot_table, HarnessArgs};
use nassc_topology::CouplingMap;

fn main() {
    let args = HarnessArgs::from_env();
    let device = CouplingMap::grid(5, 5);
    let rows: Vec<_> = args
        .suite()
        .iter()
        .map(|b| {
            eprintln!("transpiling {} ({} qubits)...", b.name, b.qubits);
            compare_benchmark(b, &device, args.runs)
        })
        .collect();
    print_cnot_table("Table IV — additional CNOTs on the 5x5 grid", &rows);
}
