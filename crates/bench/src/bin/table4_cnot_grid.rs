//! Table IV: additional CNOT gates on the 5×5 grid topology.

use nassc_bench::{run_table_binary, TableKind};
use nassc_topology::CouplingMap;

fn main() {
    run_table_binary(
        "table4_cnot_grid",
        "Table IV — additional CNOTs on the 5x5 grid",
        &CouplingMap::grid(5, 5),
        TableKind::Cnot,
    );
}
