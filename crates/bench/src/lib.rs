//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1_cnot_montreal` | Table I — additional CNOTs on `ibmq_montreal` |
//! | `table2_depth_montreal` | Table II — circuit depth on `ibmq_montreal` |
//! | `table3_cnot_linear` | Table III — additional CNOTs on the 25-qubit line |
//! | `table4_cnot_grid` | Table IV — additional CNOTs on the 5×5 grid |
//! | `fig9_opt_combinations` | Figure 9 — best-of-8 flag combinations vs all-enabled |
//! | `fig11_noise_aware` | Figure 11 — noise-aware routing and success rates |
//!
//! Binaries run the reduced `quick` suite by default; pass `--full` for the
//! complete 15-benchmark suite of the paper, `--runs N` to average over `N`
//! seeds (the paper uses 10), `--layout-trials N` to run `N` independent
//! layout trials per transpile (keeping the cheapest-to-route layout, as the
//! Qiskit+SABRE baseline stack does), and `--json <path>` to additionally
//! write a machine-readable [`BenchReport`] (see [`report`]).
//!
//! The whole (benchmark × seed × router) grid of each binary runs through
//! one [`nassc::Transpiler`] session per device
//! ([`Transpiler::transpile_jobs`]), fanning jobs across the persistent
//! worker pool while staying bit-identical to serial execution; set
//! `NASSC_THREADS=1` to force the serial baseline.

use std::path::PathBuf;

use nassc::{SessionJob, TranspileOptions, Transpiler};
use nassc_benchmarks::Benchmark;
use nassc_parallel::default_parallelism;
use nassc_topology::CouplingMap;

pub mod alloc;
pub mod report;
pub mod scale;

pub use report::{BenchReport, Metrics, ReportError, ReportRow};

/// Averaged metrics for one benchmark under one router.
#[derive(Debug, Clone, Default)]
pub struct RouterMetrics {
    /// Mean CNOT count of the final circuit.
    pub cx_total: f64,
    /// Mean circuit depth of the final circuit.
    pub depth_total: f64,
    /// Mean transpile wall-clock time in seconds.
    pub time_s: f64,
    /// Mean index of the winning layout trial (0.0 in single-trial mode).
    pub chosen_trial: f64,
    /// Mean scoring cost of each layout trial, in trial order (empty in
    /// single-trial mode, where no scoring pass runs). Router-specific
    /// units — SWAPs for SABRE, post-decomposition CNOTs for NASSC — so
    /// compare within a router's columns, not across routers.
    pub trial_costs: Vec<f64>,
}

impl RouterMetrics {
    /// Accumulates one transpile result (divide by the run count afterwards).
    fn accumulate(&mut self, result: &nassc::TranspileResult) {
        self.cx_total += result.cx_count() as f64;
        self.depth_total += result.depth() as f64;
        self.time_s += result.elapsed.as_secs_f64();
        self.chosen_trial += result.chosen_layout_trial as f64;
        if self.trial_costs.len() < result.layout_trial_costs.len() {
            self.trial_costs
                .resize(result.layout_trial_costs.len(), 0.0);
        }
        for (slot, cost) in self.trial_costs.iter_mut().zip(&result.layout_trial_costs) {
            *slot += cost;
        }
    }

    /// Divides every accumulated sum by `scale`.
    fn finish(&mut self, scale: f64) {
        self.cx_total /= scale;
        self.depth_total /= scale;
        self.time_s /= scale;
        self.chosen_trial /= scale;
        for cost in &mut self.trial_costs {
            *cost /= scale;
        }
    }

    /// The layout-trial metrics this router contributes to a report row:
    /// the mean winning-trial index plus one mean cost per trial. Empty in
    /// single-trial mode.
    fn trial_metrics(&self, prefix: &str) -> Metrics {
        if self.trial_costs.is_empty() {
            return Vec::new();
        }
        let mut metrics = vec![(format!("{prefix}_chosen_trial"), self.chosen_trial)];
        for (trial, cost) in self.trial_costs.iter().enumerate() {
            metrics.push((format!("{prefix}_layout_cost_t{trial}"), *cost));
        }
        metrics
    }
}

/// One row of a comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Qubit count of the benchmark.
    pub qubits: usize,
    /// CNOTs of the original circuit after optimization only.
    pub original_cx: usize,
    /// Depth of the original circuit after optimization only.
    pub original_depth: usize,
    /// Metrics for Qiskit+SABRE.
    pub sabre: RouterMetrics,
    /// Metrics for Qiskit+NASSC.
    pub nassc: RouterMetrics,
}

impl ComparisonRow {
    /// Additional CNOTs over the unrouted baseline, per router.
    pub fn additional_cx(&self) -> (f64, f64) {
        (
            (self.sabre.cx_total - self.original_cx as f64).max(0.0),
            (self.nassc.cx_total - self.original_cx as f64).max(0.0),
        )
    }

    /// Additional depth over the unrouted baseline, per router.
    pub fn additional_depth(&self) -> (f64, f64) {
        (
            (self.sabre.depth_total - self.original_depth as f64).max(0.0),
            (self.nassc.depth_total - self.original_depth as f64).max(0.0),
        )
    }

    /// `ΔCNOT_total`: relative reduction of total CNOTs (NASSC vs SABRE).
    pub fn delta_cx_total(&self) -> f64 {
        relative_reduction(self.nassc.cx_total, self.sabre.cx_total)
    }

    /// `ΔCNOT_add`: relative reduction of additional CNOTs.
    pub fn delta_cx_add(&self) -> f64 {
        let (sabre_add, nassc_add) = self.additional_cx();
        relative_reduction(nassc_add, sabre_add)
    }

    /// `Δdepth_total`: relative reduction of total depth.
    pub fn delta_depth_total(&self) -> f64 {
        relative_reduction(self.nassc.depth_total, self.sabre.depth_total)
    }

    /// `Δdepth_add`: relative reduction of additional depth.
    pub fn delta_depth_add(&self) -> f64 {
        let (sabre_add, nassc_add) = self.additional_depth();
        relative_reduction(nassc_add, sabre_add)
    }

    /// Transpile-time ratio `t_NASSC / t_SABRE`.
    pub fn time_ratio(&self) -> f64 {
        if self.sabre.time_s <= 0.0 {
            1.0
        } else {
            self.nassc.time_s / self.sabre.time_s
        }
    }
}

/// Total wall-clock seconds spent in transpiles across a table run: the
/// per-row mean times scaled back up by the seed count. This is the
/// `total_transpile_seconds` summary metric every report carries, so
/// `BENCH_*.json` tracks the speed trajectory alongside quality (and
/// `bench_gate --max total_transpile_seconds <bound>` can sanity-gate it).
pub fn total_transpile_seconds(rows: &[ComparisonRow], runs: usize) -> f64 {
    rows.iter()
        .map(|row| (row.sabre.time_s + row.nassc.time_s) * runs as f64)
        .sum()
}

/// `1 - new/old`, guarded against division by zero.
pub fn relative_reduction(new: f64, old: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        1.0 - new / old
    }
}

/// Geometric mean of reductions, matching the paper's averaging of Δ columns.
pub fn geometric_mean_reduction(reductions: &[f64]) -> f64 {
    if reductions.is_empty() {
        return 0.0;
    }
    let product: f64 = reductions.iter().map(|r| (1.0 - r).max(1e-9)).product();
    1.0 - product.powf(1.0 / reductions.len() as f64)
}

/// The base seed of every seed sweep (run `r` uses seed `BASE_SEED + r`),
/// matching the serial harness of earlier revisions.
pub const BASE_SEED: u64 = 1000;

/// Runs SABRE and NASSC over a whole suite, averaging over `runs` seeds per
/// benchmark.
///
/// The full (benchmark × seed × router) grid goes through one
/// [`Transpiler`] session as a single [`Transpiler::transpile_jobs`] batch,
/// so parallelism spans benchmarks, seeds and routers at once. The
/// seed-independent work is done exactly once per benchmark — pre-routing
/// optimization (whose output is also the unrouted baseline of each row,
/// served from the session's prepared cache) and the per-device distance
/// matrix — instead of once per job. CNOT and depth aggregates are
/// bit-identical to the serial per-benchmark loop this replaces; `time_s`
/// covers the seed-dependent pipeline tail only (layout, routing,
/// decomposition, post-optimization), so the shared preparation no longer
/// dilutes the `t_NASSC / t_SABRE` ratio.
pub fn compare_suite(
    suite: &[Benchmark],
    coupling: &CouplingMap,
    runs: usize,
) -> Vec<ComparisonRow> {
    compare_suite_with_trials(suite, coupling, runs, 1)
}

/// [`compare_suite`] with `layout_trials` independent layout trials per
/// transpile (`1` = the historical single-trial path). The session splits
/// the worker budget between jobs and trials, so the grid never
/// oversubscribes the cores.
pub fn compare_suite_with_trials(
    suite: &[Benchmark],
    coupling: &CouplingMap,
    runs: usize,
    layout_trials: usize,
) -> Vec<ComparisonRow> {
    let session = Transpiler::new(coupling.clone(), TranspileOptions::new());
    compare_suite_on(&session, suite, runs, layout_trials)
}

/// [`compare_suite_with_trials`] against a caller-owned [`Transpiler`]
/// session — the session-reuse benchmark drives a cold and a warm corpus
/// pass through the same session to measure what the caches buy.
pub fn compare_suite_on(
    session: &Transpiler,
    suite: &[Benchmark],
    runs: usize,
    layout_trials: usize,
) -> Vec<ComparisonRow> {
    // One flat job grid: for each benchmark, `runs` seeds × {SABRE, NASSC}.
    // Jobs carry the raw circuits; the session's prepared cache makes the
    // per-benchmark preparation happen exactly once.
    let mut jobs = Vec::with_capacity(suite.len() * runs * 2);
    for benchmark in suite {
        for run in 0..runs {
            let seed = BASE_SEED + run as u64;
            jobs.push(SessionJob::with_options(
                &benchmark.circuit,
                TranspileOptions::sabre(seed).with_layout_trials(layout_trials),
            ));
            jobs.push(SessionJob::with_options(
                &benchmark.circuit,
                TranspileOptions::nassc(seed).with_layout_trials(layout_trials),
            ));
        }
    }
    let results = session.transpile_jobs(&jobs);

    suite
        .iter()
        .enumerate()
        .map(|(index, benchmark)| {
            // The row's unrouted baseline is the prepared circuit the batch
            // just cached — a guaranteed cache hit, never a second run.
            let original = session
                .prepared(&benchmark.circuit)
                .expect("baseline optimization");
            let mut sabre = RouterMetrics::default();
            let mut nassc = RouterMetrics::default();
            let per_benchmark = &results[index * runs * 2..(index + 1) * runs * 2];
            for pair in per_benchmark.chunks_exact(2) {
                sabre.accumulate(pair[0].as_ref().expect("sabre transpile"));
                nassc.accumulate(pair[1].as_ref().expect("nassc transpile"));
            }
            let scale = runs.max(1) as f64;
            for m in [&mut sabre, &mut nassc] {
                m.finish(scale);
            }
            ComparisonRow {
                name: benchmark.name.to_string(),
                qubits: benchmark.qubits,
                original_cx: original.cx_count(),
                original_depth: original.depth(),
                sabre,
                nassc,
            }
        })
        .collect()
}

/// Runs SABRE and NASSC on one benchmark, averaging over `runs` seeds.
pub fn compare_benchmark(
    benchmark: &Benchmark,
    coupling: &CouplingMap,
    runs: usize,
) -> ComparisonRow {
    compare_suite(std::slice::from_ref(benchmark), coupling, runs)
        .pop()
        .expect("one row per benchmark")
}

/// Returns the value following `name` in the process arguments
/// (e.g. `cli_value("--shots")` for `--shots 4096`), or `None` when the flag
/// is absent.
///
/// A flag that is present but missing its operand (nothing follows, or the
/// next argument is itself a `--flag`) aborts the process: silently eating
/// the next flag — `--json --full` writing a file named `--full` — would let
/// CI runs pass while producing no artifact.
pub fn cli_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let index = args.iter().position(|a| a == name)?;
    match args.get(index + 1) {
        Some(value) if !value.starts_with("--") => Some(value.clone()),
        _ => {
            eprintln!("error: {name} requires a value");
            std::process::exit(1);
        }
    }
}

/// [`cli_value`] parsed as an integer; an unparsable value aborts instead of
/// silently falling back to a default.
pub fn cli_usize(name: &str) -> Option<usize> {
    cli_value(name).map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a non-negative integer, got {value:?}");
            std::process::exit(1);
        })
    })
}

/// Command-line options shared by the table/figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Run the complete 15-benchmark suite instead of the quick subset.
    pub full: bool,
    /// Number of seeds to average over.
    pub runs: usize,
    /// Independent layout trials per transpile (1 = single-trial mode).
    pub layout_trials: usize,
    /// When set, also write the run's [`BenchReport`] to this path.
    pub json: Option<PathBuf>,
    /// When set, replace the built-in suite with every `.qasm` file of this
    /// directory (external-workload corpus mode).
    pub qasm_dir: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parses `--full`, `--runs N`, `--layout-trials N`, `--json <path>` and
    /// `--qasm-dir <dir>` from the process arguments.
    pub fn from_env() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        let runs = cli_usize("--runs").unwrap_or(2);
        if runs == 0 {
            // NaN tables and all-null reports that still exit 0 would defeat
            // the CI gate; reject up front like every other bad flag value.
            eprintln!("error: --runs must be at least 1");
            std::process::exit(1);
        }
        let layout_trials = cli_usize("--layout-trials").unwrap_or(1);
        if layout_trials == 0 {
            eprintln!("error: --layout-trials must be at least 1");
            std::process::exit(1);
        }
        let json = cli_value("--json").map(PathBuf::from);
        let qasm_dir = cli_value("--qasm-dir").map(PathBuf::from);
        Self {
            full,
            runs,
            layout_trials,
            json,
            qasm_dir,
        }
    }

    /// The benchmark suite selected by the arguments: a `--qasm-dir` corpus
    /// when given (any unreadable or unparsable file aborts — a table run
    /// must cover the whole corpus), else the built-in quick/full suite.
    pub fn suite(&self) -> Vec<Benchmark> {
        if let Some(dir) = &self.qasm_dir {
            return qasm_corpus_suite(dir).unwrap_or_else(|message| {
                eprintln!("error: {message}");
                std::process::exit(1);
            });
        }
        if self.full {
            nassc_benchmarks::table_benchmarks()
        } else {
            nassc_benchmarks::quick_benchmarks()
        }
    }

    /// The suite name recorded in reports.
    pub fn suite_label(&self) -> String {
        if let Some(dir) = &self.qasm_dir {
            format!("qasm:{}", dir.display())
        } else if self.full {
            "full".to_string()
        } else {
            "quick".to_string()
        }
    }

    /// Writes `report` to the `--json` path, if one was given.
    ///
    /// Exits the process with an error message when the file cannot be
    /// written — a silently missing artifact must fail the CI job.
    pub fn emit_report(&self, report: &BenchReport) {
        let Some(path) = &self.json else { return };
        if let Err(e) = report.write_to_file(path) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

/// Loads every `.qasm` file of `dir` as a [`Benchmark`] suite (sorted by
/// filename, so job order — and therefore batch output order — is
/// deterministic).
///
/// # Errors
///
/// Returns a message naming the first unreadable or unparsable file; callers
/// that tolerate partial corpora (the `transpile_qasm` corpus mode) use
/// [`nassc_qasm::load_corpus`] directly instead.
pub fn qasm_corpus_suite(dir: &std::path::Path) -> Result<Vec<Benchmark>, String> {
    let corpus =
        nassc_qasm::load_corpus(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    if corpus.is_empty() {
        return Err(format!("no .qasm files in {}", dir.display()));
    }
    corpus
        .into_iter()
        .map(|file| match file.circuit {
            Ok(circuit) => Ok(Benchmark::new(file.name, circuit)),
            Err(e) => Err(format!("{}: {e}", file.path.display())),
        })
        .collect()
}

/// Exits with a clean error when any benchmark is wider than the device —
/// otherwise the batch engine would panic mid-run deep inside routing.
/// Relevant for `--qasm-dir` corpora, whose widths are user-controlled.
pub fn ensure_suite_fits(suite: &[Benchmark], device: &CouplingMap) {
    for bench in suite {
        if bench.qubits > device.num_qubits() {
            eprintln!(
                "error: benchmark {} needs {} qubits but the target device has {}",
                bench.name,
                bench.qubits,
                device.num_qubits()
            );
            std::process::exit(1);
        }
    }
}

/// Prints a CNOT-comparison table (Tables I / III / IV).
pub fn print_cnot_table(title: &str, rows: &[ComparisonRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>3}  {:>9} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>8} {:>8} {:>6}",
        "benchmark",
        "n",
        "CX_orig",
        "SABRE_tot",
        "SABRE_add",
        "t_S(s)",
        "NASSC_tot",
        "NASSC_add",
        "t_N(s)",
        "dCX_tot",
        "dCX_add",
        "t_N/t_S"
    );
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_cx();
        println!(
            "{:<22} {:>3}  {:>9} | {:>10.1} {:>10.1} {:>8.2} | {:>10.1} {:>10.1} {:>8.2} | {:>7.2}% {:>7.2}% {:>6.2}",
            row.name,
            row.qubits,
            row.original_cx,
            row.sabre.cx_total,
            sabre_add,
            row.sabre.time_s,
            row.nassc.cx_total,
            nassc_add,
            row.nassc.time_s,
            100.0 * row.delta_cx_total(),
            100.0 * row.delta_cx_add(),
            row.time_ratio(),
        );
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_cx_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_cx_add()).collect();
    println!(
        "geometric mean: dCX_total {:.2}%  dCX_add {:.2}%",
        100.0 * geometric_mean_reduction(&d_tot),
        100.0 * geometric_mean_reduction(&d_add)
    );
}

/// Prints a depth-comparison table (Table II).
pub fn print_depth_table(title: &str, rows: &[ComparisonRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>3}  {:>10} | {:>11} {:>11} | {:>11} {:>11} | {:>9} {:>9}",
        "benchmark",
        "n",
        "depth_orig",
        "SABRE_tot",
        "SABRE_add",
        "NASSC_tot",
        "NASSC_add",
        "dD_tot",
        "dD_add"
    );
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_depth();
        println!(
            "{:<22} {:>3}  {:>10} | {:>11.1} {:>11.1} | {:>11.1} {:>11.1} | {:>8.2}% {:>8.2}%",
            row.name,
            row.qubits,
            row.original_depth,
            row.sabre.depth_total,
            sabre_add,
            row.nassc.depth_total,
            nassc_add,
            100.0 * row.delta_depth_total(),
            100.0 * row.delta_depth_add(),
        );
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_depth_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_depth_add()).collect();
    println!(
        "geometric mean: ddepth_total {:.2}%  ddepth_add {:.2}%",
        100.0 * geometric_mean_reduction(&d_tot),
        100.0 * geometric_mean_reduction(&d_add)
    );
}

/// Which metric family a table binary reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// CNOT counts (Tables I / III / IV).
    Cnot,
    /// Circuit depth (Table II).
    Depth,
}

/// Builds the [`BenchReport`] for a CNOT table run.
pub fn cnot_report(
    artefact: &str,
    title: &str,
    suite: &str,
    runs: usize,
    rows: &[ComparisonRow],
) -> BenchReport {
    let mut report = BenchReport::new(artefact, title, suite, runs);
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_cx();
        let mut metrics = vec![
            ("original_cx".to_string(), row.original_cx as f64),
            ("sabre_cx_total".to_string(), row.sabre.cx_total),
            ("sabre_cx_add".to_string(), sabre_add),
            ("sabre_time_s".to_string(), row.sabre.time_s),
            ("nassc_cx_total".to_string(), row.nassc.cx_total),
            ("nassc_cx_add".to_string(), nassc_add),
            ("nassc_time_s".to_string(), row.nassc.time_s),
            ("delta_cx_total".to_string(), row.delta_cx_total()),
            ("delta_cx_add".to_string(), row.delta_cx_add()),
            ("time_ratio".to_string(), row.time_ratio()),
            ("sabre_transpile_ms".to_string(), 1000.0 * row.sabre.time_s),
            ("nassc_transpile_ms".to_string(), 1000.0 * row.nassc.time_s),
        ];
        metrics.extend(row.sabre.trial_metrics("sabre"));
        metrics.extend(row.nassc.trial_metrics("nassc"));
        report.rows.push(ReportRow {
            name: row.name.clone(),
            qubits: row.qubits,
            metrics,
        });
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_cx_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_cx_add()).collect();
    report.summary = vec![
        (
            "geomean_delta_cx_total".to_string(),
            geometric_mean_reduction(&d_tot),
        ),
        (
            "geomean_delta_cx_add".to_string(),
            geometric_mean_reduction(&d_add),
        ),
        (
            "total_transpile_seconds".to_string(),
            total_transpile_seconds(rows, runs),
        ),
    ];
    report
}

/// Builds the [`BenchReport`] for a depth table run.
pub fn depth_report(
    artefact: &str,
    title: &str,
    suite: &str,
    runs: usize,
    rows: &[ComparisonRow],
) -> BenchReport {
    let mut report = BenchReport::new(artefact, title, suite, runs);
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_depth();
        let mut metrics = vec![
            ("original_depth".to_string(), row.original_depth as f64),
            ("sabre_depth_total".to_string(), row.sabre.depth_total),
            ("sabre_depth_add".to_string(), sabre_add),
            ("nassc_depth_total".to_string(), row.nassc.depth_total),
            ("nassc_depth_add".to_string(), nassc_add),
            ("delta_depth_total".to_string(), row.delta_depth_total()),
            ("delta_depth_add".to_string(), row.delta_depth_add()),
            ("sabre_transpile_ms".to_string(), 1000.0 * row.sabre.time_s),
            ("nassc_transpile_ms".to_string(), 1000.0 * row.nassc.time_s),
        ];
        metrics.extend(row.sabre.trial_metrics("sabre"));
        metrics.extend(row.nassc.trial_metrics("nassc"));
        report.rows.push(ReportRow {
            name: row.name.clone(),
            qubits: row.qubits,
            metrics,
        });
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_depth_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_depth_add()).collect();
    report.summary = vec![
        (
            "geomean_delta_depth_total".to_string(),
            geometric_mean_reduction(&d_tot),
        ),
        (
            "geomean_delta_depth_add".to_string(),
            geometric_mean_reduction(&d_add),
        ),
        (
            "total_transpile_seconds".to_string(),
            total_transpile_seconds(rows, runs),
        ),
    ];
    report
}

/// The whole body of a table binary: parse args, run the grid through one
/// [`Transpiler`] session, print the table, emit the optional JSON report
/// (with the session's cache counters in the summary).
pub fn run_table_binary(artefact: &str, title: &str, device: &CouplingMap, kind: TableKind) {
    let args = HarnessArgs::from_env();
    let suite = args.suite();
    ensure_suite_fits(&suite, device);
    eprintln!(
        "transpiling {} benchmarks × {} seeds × 2 routers = {} jobs \
         ({} layout trials each) on {} threads...",
        suite.len(),
        args.runs,
        suite.len() * args.runs * 2,
        args.layout_trials,
        default_parallelism()
    );
    let session = Transpiler::new(device.clone(), TranspileOptions::new());
    let rows = compare_suite_on(&session, &suite, args.runs, args.layout_trials);
    let suite_label = args.suite_label();
    let mut report = match kind {
        TableKind::Cnot => {
            print_cnot_table(title, &rows);
            cnot_report(artefact, title, &suite_label, args.runs, &rows)
        }
        TableKind::Depth => {
            print_depth_table(title, &rows);
            depth_report(artefact, title, &suite_label, args.runs, &rows)
        }
    };
    report.layout_trials = args.layout_trials;
    let stats = session.cache_stats();
    report
        .summary
        .push(("session_cache_hits".to_string(), stats.hits() as f64));
    report
        .summary
        .push(("session_cache_misses".to_string(), stats.misses() as f64));
    println!(
        "total transpile time: {:.3}s across {} transpiles \
         (session caches: {} hits / {} misses)",
        total_transpile_seconds(&rows, args.runs),
        suite.len() * args.runs * 2,
        stats.hits(),
        stats.misses(),
    );
    args.emit_report(&report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_benchmarks::quick_benchmarks;

    #[test]
    fn relative_reduction_basic_cases() {
        assert!((relative_reduction(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(relative_reduction(5.0, 0.0), 0.0);
    }

    #[test]
    fn geometric_mean_of_equal_reductions_is_that_reduction() {
        let g = geometric_mean_reduction(&[0.25, 0.25, 0.25]);
        assert!((g - 0.25).abs() < 1e-9);
        assert_eq!(geometric_mean_reduction(&[]), 0.0);
    }

    #[test]
    fn comparison_row_on_small_benchmark() {
        let device = CouplingMap::linear(25);
        let bench = &quick_benchmarks()[0]; // Grover_4-qubits
        let row = compare_benchmark(bench, &device, 1);
        assert!(row.original_cx > 0);
        assert!(row.sabre.cx_total >= row.original_cx as f64);
    }

    #[test]
    // Deliberately drives the deprecated free function: the session-run
    // suite must keep matching the legacy serial path bit for bit.
    #[allow(deprecated)]
    fn compare_suite_matches_the_serial_transpile_loop() {
        use nassc::transpile;
        let device = CouplingMap::linear(25);
        let suite = &quick_benchmarks()[..2];
        let runs = 2;
        let rows = compare_suite(suite, &device, runs);
        assert_eq!(rows.len(), suite.len());
        for (bench, row) in suite.iter().zip(&rows) {
            let mut sabre_cx = 0.0;
            let mut nassc_cx = 0.0;
            for run in 0..runs {
                let seed = BASE_SEED + run as u64;
                sabre_cx += transpile(&bench.circuit, &device, &TranspileOptions::sabre(seed))
                    .unwrap()
                    .cx_count() as f64;
                nassc_cx += transpile(&bench.circuit, &device, &TranspileOptions::nassc(seed))
                    .unwrap()
                    .cx_count() as f64;
            }
            assert_eq!(row.sabre.cx_total, sabre_cx / runs as f64, "{}", bench.name);
            assert_eq!(row.nassc.cx_total, nassc_cx / runs as f64, "{}", bench.name);
        }
    }

    #[test]
    fn report_builders_record_rows_and_geomeans() {
        let device = CouplingMap::linear(25);
        let rows = compare_suite(&quick_benchmarks()[..1], &device, 1);
        let cnot = cnot_report("table1_cnot_montreal", "Table I", "quick", 1, &rows);
        assert_eq!(cnot.rows.len(), 1);
        assert_eq!(
            cnot.rows[0].metric("original_cx"),
            Some(rows[0].original_cx as f64)
        );
        assert_eq!(
            cnot.summary_value("geomean_delta_cx_add"),
            Some(geometric_mean_reduction(&[rows[0].delta_cx_add()]))
        );
        let depth = depth_report("table2_depth_montreal", "Table II", "quick", 1, &rows);
        assert_eq!(
            depth.rows[0].metric("sabre_depth_total"),
            Some(rows[0].sabre.depth_total)
        );
        assert!(depth.summary_value("geomean_delta_depth_total").is_some());
        // Reports must survive the JSON round trip.
        assert_eq!(BenchReport::from_json(&cnot.to_json()).unwrap(), cnot);
    }
}
