//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1_cnot_montreal` | Table I — additional CNOTs on `ibmq_montreal` |
//! | `table2_depth_montreal` | Table II — circuit depth on `ibmq_montreal` |
//! | `table3_cnot_linear` | Table III — additional CNOTs on the 25-qubit line |
//! | `table4_cnot_grid` | Table IV — additional CNOTs on the 5×5 grid |
//! | `fig9_opt_combinations` | Figure 9 — best-of-8 flag combinations vs all-enabled |
//! | `fig11_noise_aware` | Figure 11 — noise-aware routing and success rates |
//!
//! Binaries run the reduced `quick` suite by default; pass `--full` for the
//! complete 15-benchmark suite of the paper and `--runs N` to average over
//! `N` seeds (the paper uses 10).

use nassc::{optimize_without_routing, transpile, TranspileOptions};
use nassc_benchmarks::Benchmark;
use nassc_topology::CouplingMap;

/// Averaged metrics for one benchmark under one router.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterMetrics {
    /// Mean CNOT count of the final circuit.
    pub cx_total: f64,
    /// Mean circuit depth of the final circuit.
    pub depth_total: f64,
    /// Mean transpile wall-clock time in seconds.
    pub time_s: f64,
}

/// One row of a comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Qubit count of the benchmark.
    pub qubits: usize,
    /// CNOTs of the original circuit after optimization only.
    pub original_cx: usize,
    /// Depth of the original circuit after optimization only.
    pub original_depth: usize,
    /// Metrics for Qiskit+SABRE.
    pub sabre: RouterMetrics,
    /// Metrics for Qiskit+NASSC.
    pub nassc: RouterMetrics,
}

impl ComparisonRow {
    /// Additional CNOTs over the unrouted baseline, per router.
    pub fn additional_cx(&self) -> (f64, f64) {
        (
            (self.sabre.cx_total - self.original_cx as f64).max(0.0),
            (self.nassc.cx_total - self.original_cx as f64).max(0.0),
        )
    }

    /// Additional depth over the unrouted baseline, per router.
    pub fn additional_depth(&self) -> (f64, f64) {
        (
            (self.sabre.depth_total - self.original_depth as f64).max(0.0),
            (self.nassc.depth_total - self.original_depth as f64).max(0.0),
        )
    }

    /// `ΔCNOT_total`: relative reduction of total CNOTs (NASSC vs SABRE).
    pub fn delta_cx_total(&self) -> f64 {
        relative_reduction(self.nassc.cx_total, self.sabre.cx_total)
    }

    /// `ΔCNOT_add`: relative reduction of additional CNOTs.
    pub fn delta_cx_add(&self) -> f64 {
        let (sabre_add, nassc_add) = self.additional_cx();
        relative_reduction(nassc_add, sabre_add)
    }

    /// `Δdepth_total`: relative reduction of total depth.
    pub fn delta_depth_total(&self) -> f64 {
        relative_reduction(self.nassc.depth_total, self.sabre.depth_total)
    }

    /// `Δdepth_add`: relative reduction of additional depth.
    pub fn delta_depth_add(&self) -> f64 {
        let (sabre_add, nassc_add) = self.additional_depth();
        relative_reduction(nassc_add, sabre_add)
    }

    /// Transpile-time ratio `t_NASSC / t_SABRE`.
    pub fn time_ratio(&self) -> f64 {
        if self.sabre.time_s <= 0.0 {
            1.0
        } else {
            self.nassc.time_s / self.sabre.time_s
        }
    }
}

/// `1 - new/old`, guarded against division by zero.
pub fn relative_reduction(new: f64, old: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        1.0 - new / old
    }
}

/// Geometric mean of reductions, matching the paper's averaging of Δ columns.
pub fn geometric_mean_reduction(reductions: &[f64]) -> f64 {
    if reductions.is_empty() {
        return 0.0;
    }
    let product: f64 = reductions.iter().map(|r| (1.0 - r).max(1e-9)).product();
    1.0 - product.powf(1.0 / reductions.len() as f64)
}

/// Runs SABRE and NASSC on one benchmark, averaging over `runs` seeds.
pub fn compare_benchmark(
    benchmark: &Benchmark,
    coupling: &CouplingMap,
    runs: usize,
) -> ComparisonRow {
    let original = optimize_without_routing(&benchmark.circuit).expect("baseline optimization");
    let mut sabre = RouterMetrics::default();
    let mut nassc = RouterMetrics::default();
    for run in 0..runs {
        let seed = 1000 + run as u64;
        let s = transpile(&benchmark.circuit, coupling, &TranspileOptions::sabre(seed))
            .expect("sabre transpile");
        let n = transpile(&benchmark.circuit, coupling, &TranspileOptions::nassc(seed))
            .expect("nassc transpile");
        sabre.cx_total += s.cx_count() as f64;
        sabre.depth_total += s.depth() as f64;
        sabre.time_s += s.elapsed.as_secs_f64();
        nassc.cx_total += n.cx_count() as f64;
        nassc.depth_total += n.depth() as f64;
        nassc.time_s += n.elapsed.as_secs_f64();
    }
    let scale = runs.max(1) as f64;
    for m in [&mut sabre, &mut nassc] {
        m.cx_total /= scale;
        m.depth_total /= scale;
        m.time_s /= scale;
    }
    ComparisonRow {
        name: benchmark.name.to_string(),
        qubits: benchmark.qubits,
        original_cx: original.cx_count(),
        original_depth: original.depth(),
        sabre,
        nassc,
    }
}

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Run the complete 15-benchmark suite instead of the quick subset.
    pub full: bool,
    /// Number of seeds to average over.
    pub runs: usize,
}

impl HarnessArgs {
    /// Parses `--full` and `--runs N` from the process arguments.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let runs = args
            .iter()
            .position(|a| a == "--runs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Self { full, runs }
    }

    /// The benchmark suite selected by the arguments.
    pub fn suite(&self) -> Vec<Benchmark> {
        if self.full {
            nassc_benchmarks::table_benchmarks()
        } else {
            nassc_benchmarks::quick_benchmarks()
        }
    }
}

/// Prints a CNOT-comparison table (Tables I / III / IV).
pub fn print_cnot_table(title: &str, rows: &[ComparisonRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>3}  {:>9} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>8} {:>8} {:>6}",
        "benchmark",
        "n",
        "CX_orig",
        "SABRE_tot",
        "SABRE_add",
        "t_S(s)",
        "NASSC_tot",
        "NASSC_add",
        "t_N(s)",
        "dCX_tot",
        "dCX_add",
        "t_N/t_S"
    );
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_cx();
        println!(
            "{:<22} {:>3}  {:>9} | {:>10.1} {:>10.1} {:>8.2} | {:>10.1} {:>10.1} {:>8.2} | {:>7.2}% {:>7.2}% {:>6.2}",
            row.name,
            row.qubits,
            row.original_cx,
            row.sabre.cx_total,
            sabre_add,
            row.sabre.time_s,
            row.nassc.cx_total,
            nassc_add,
            row.nassc.time_s,
            100.0 * row.delta_cx_total(),
            100.0 * row.delta_cx_add(),
            row.time_ratio(),
        );
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_cx_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_cx_add()).collect();
    println!(
        "geometric mean: dCX_total {:.2}%  dCX_add {:.2}%",
        100.0 * geometric_mean_reduction(&d_tot),
        100.0 * geometric_mean_reduction(&d_add)
    );
}

/// Prints a depth-comparison table (Table II).
pub fn print_depth_table(title: &str, rows: &[ComparisonRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>3}  {:>10} | {:>11} {:>11} | {:>11} {:>11} | {:>9} {:>9}",
        "benchmark",
        "n",
        "depth_orig",
        "SABRE_tot",
        "SABRE_add",
        "NASSC_tot",
        "NASSC_add",
        "dD_tot",
        "dD_add"
    );
    for row in rows {
        let (sabre_add, nassc_add) = row.additional_depth();
        println!(
            "{:<22} {:>3}  {:>10} | {:>11.1} {:>11.1} | {:>11.1} {:>11.1} | {:>8.2}% {:>8.2}%",
            row.name,
            row.qubits,
            row.original_depth,
            row.sabre.depth_total,
            sabre_add,
            row.nassc.depth_total,
            nassc_add,
            100.0 * row.delta_depth_total(),
            100.0 * row.delta_depth_add(),
        );
    }
    let d_tot: Vec<f64> = rows.iter().map(|r| r.delta_depth_total()).collect();
    let d_add: Vec<f64> = rows.iter().map(|r| r.delta_depth_add()).collect();
    println!(
        "geometric mean: ddepth_total {:.2}%  ddepth_add {:.2}%",
        100.0 * geometric_mean_reduction(&d_tot),
        100.0 * geometric_mean_reduction(&d_add)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_benchmarks::quick_benchmarks;

    #[test]
    fn relative_reduction_basic_cases() {
        assert!((relative_reduction(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(relative_reduction(5.0, 0.0), 0.0);
    }

    #[test]
    fn geometric_mean_of_equal_reductions_is_that_reduction() {
        let g = geometric_mean_reduction(&[0.25, 0.25, 0.25]);
        assert!((g - 0.25).abs() < 1e-9);
        assert_eq!(geometric_mean_reduction(&[]), 0.0);
    }

    #[test]
    fn comparison_row_on_small_benchmark() {
        let device = CouplingMap::linear(25);
        let bench = &quick_benchmarks()[0]; // Grover_4-qubits
        let row = compare_benchmark(bench, &device, 1);
        assert!(row.original_cx > 0);
        assert!(row.sabre.cx_total >= row.original_cx as f64);
    }
}
