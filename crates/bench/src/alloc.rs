//! A counting global allocator for the scale benchmarks.
//!
//! [`CountingAlloc`] forwards every request to [`std::alloc::System`] and
//! keeps three atomic counters: live bytes, peak live bytes, and cumulative
//! allocated bytes. `bench_scale` installs it with `#[global_allocator]` and
//! calls [`reset`] before each timed row, so every row self-reports its peak
//! and total allocation without any external profiler — the same
//! dependency-free spirit as the compat shims.
//!
//! The counters use `Relaxed` ordering: they are statistics, not
//! synchronisation. Under the worker pool the peak is a true global peak
//! across threads (every thread's allocations feed the same counter), but
//! the exact value can vary run to run with scheduling; only the routed
//! circuits themselves are bit-deterministic, not the allocator high-water
//! mark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently allocated and not yet freed.
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE`] since the last [`reset`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Cumulative bytes handed out since the last [`reset`].
static TOTAL: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator (see module docs).
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    TOTAL.fetch_add(size, Ordering::Relaxed);
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates never touch the returned
// memory. Counters are only bumped when `System` reports success, so failed
// allocations leave the statistics untouched.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Restarts the measurement window: zeroes the cumulative total and resets
/// the peak to the bytes currently live, so the next [`peak_bytes`] reading
/// reflects only growth beyond the present footprint.
pub fn reset() {
    TOTAL.store(0, Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since the last [`reset`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes allocated since the last [`reset`].
pub fn total_bytes() -> usize {
    TOTAL.load(Ordering::Relaxed)
}
