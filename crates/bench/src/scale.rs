//! Synthetic large-circuit generators for the scale benchmarks.
//!
//! The paper's benchmark suite tops out at a few thousand gates on 27
//! qubits; heavy-hex devices (Eagle at 127 qubits, Osprey at 433) need
//! workloads an order of magnitude larger to stress the pipeline's memory
//! behaviour. Two deterministic generators cover the interesting extremes:
//!
//! * [`qv_style`] — quantum-volume-style layers: a seeded random pairing of
//!   all qubits per layer, each pair getting a small SU(4)-flavoured block
//!   (single-qubit rotations around two CNOTs). Dense parallelism, random
//!   structure — the router's worst case for lookahead.
//! * [`qft_style`] — repeated QFT rounds (Hadamard plus controlled-phase
//!   cascade). Long-range, highly serial interactions — the distance
//!   matrix's worst case.
//!
//! Both generators hit the requested gate count **exactly** (truncating
//! mid-layer or mid-round) so `10_000` means 10k instructions, and both
//! pre-size the circuit buffer via [`QuantumCircuit::with_capacity`] so
//! generation itself is a single allocation of the instruction vector.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use nassc::circuit::QuantumCircuit;

/// Quantum-volume-style random circuit: seeded layers of disjoint two-qubit
/// blocks (`ry`/`rz` on each qubit, `cx`, `ry` pair, `cx`) over a fresh
/// random pairing per layer, truncated at exactly `gates` instructions.
pub fn qv_style(num_qubits: usize, gates: usize, seed: u64) -> QuantumCircuit {
    assert!(num_qubits >= 2, "qv_style needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::with_capacity(num_qubits, gates);
    let mut order: Vec<usize> = (0..num_qubits).collect();
    while qc.num_gates() < gates {
        order.shuffle(&mut rng);
        for pair in order.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            for step in 0..8 {
                if qc.num_gates() == gates {
                    return qc;
                }
                match step {
                    0 => qc.ry(rng.gen_range(-PI..PI), a),
                    1 => qc.rz(rng.gen_range(-PI..PI), a),
                    2 => qc.ry(rng.gen_range(-PI..PI), b),
                    3 => qc.rz(rng.gen_range(-PI..PI), b),
                    4 => qc.cx(a, b),
                    5 => qc.ry(rng.gen_range(-PI..PI), a),
                    6 => qc.ry(rng.gen_range(-PI..PI), b),
                    _ => qc.cx(b, a),
                };
            }
        }
    }
    qc
}

/// Repeated-QFT workload: full QFT rounds (Hadamard plus the
/// controlled-phase cascade) back to back, truncated at exactly `gates`
/// instructions.
pub fn qft_style(num_qubits: usize, gates: usize) -> QuantumCircuit {
    assert!(num_qubits >= 2, "qft_style needs at least 2 qubits");
    let mut qc = QuantumCircuit::with_capacity(num_qubits, gates);
    while qc.num_gates() < gates {
        for target in 0..num_qubits {
            if qc.num_gates() == gates {
                return qc;
            }
            qc.h(target);
            for control in (target + 1)..num_qubits {
                if qc.num_gates() == gates {
                    return qc;
                }
                qc.cp(PI / 2f64.powi((control - target) as i32), control, target);
            }
        }
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_hit_the_gate_count_exactly() {
        for gates in [1, 7, 100, 1003] {
            assert_eq!(qv_style(27, gates, 7).num_gates(), gates);
            assert_eq!(qft_style(27, gates).num_gates(), gates);
        }
    }

    #[test]
    fn qv_style_is_seed_deterministic() {
        let a = qv_style(127, 2000, 42);
        let b = qv_style(127, 2000, 42);
        assert_eq!(a, b);
        assert_ne!(a, qv_style(127, 2000, 43));
    }

    #[test]
    fn generated_circuits_round_trip_through_qasm() {
        for qc in [qv_style(27, 500, 11), qft_style(27, 500)] {
            let qasm = qc.to_qasm().expect("exportable");
            let parsed = nassc_qasm::parse(&qasm).expect("parseable");
            assert_eq!(parsed, qc);
        }
    }
}
