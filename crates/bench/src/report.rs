//! Machine-readable bench reports (`BENCH_*.json`).
//!
//! Every table/figure binary can serialize its results as a [`BenchReport`]
//! via `--json <path>`, so CI can archive the perf trajectory and gate on
//! regressions (see the `bench_gate` binary). The JSON is hand-rolled — the
//! build environment has no registry access, so no `serde` — but the format
//! is plain JSON any consumer can read:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "artefact": "table1_cnot_montreal",
//!   "title": "Table I — additional CNOTs on ibmq_montreal",
//!   "suite": "quick",
//!   "runs": 1,
//!   "layout_trials": 1,
//!   "rows": [
//!     {
//!       "name": "Grover_4-qubits",
//!       "qubits": 4,
//!       "metrics": { "original_cx": 30, "delta_cx_add": 0.25 }
//!     }
//!   ],
//!   "summary": { "geomean_delta_cx_add": 0.18 }
//! }
//! ```
//!
//! `metrics`/`summary` are ordered name → value maps (insertion order is
//! preserved on both write and parse, so write→parse round-trips exactly).
//! Values are finite `f64`s; non-finite values serialize as `null` and parse
//! back as `NaN`.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Version stamp written into every report, bumped on schema changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A named scalar map preserving insertion order (JSON object of numbers).
pub type Metrics = Vec<(String, f64)>;

/// One benchmark's row in a report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportRow {
    /// Benchmark name (prefixed with the coupling map for multi-map runs).
    pub name: String,
    /// Qubit count of the benchmark.
    pub qubits: usize,
    /// Named metric values for this row.
    pub metrics: Metrics,
}

impl ReportRow {
    /// Looks up a row metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The machine-readable result of one table/figure reproduction run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] for reports written by this crate).
    pub schema_version: u64,
    /// Stable artefact id, e.g. `"table1_cnot_montreal"`.
    pub artefact: String,
    /// Human-readable title, e.g. `"Table I — additional CNOTs on ibmq_montreal"`.
    pub title: String,
    /// Which benchmark suite ran (`"quick"` or `"full"`).
    pub suite: String,
    /// Seeds averaged over per benchmark.
    pub runs: usize,
    /// Layout trials per transpile (`1` = single-trial compatibility mode).
    /// Written by every current report; reports predating the field parse
    /// back as `1`.
    pub layout_trials: usize,
    /// Per-benchmark rows.
    pub rows: Vec<ReportRow>,
    /// Aggregates over the rows (geomeans etc.) — what CI gates on.
    pub summary: Metrics,
}

impl BenchReport {
    /// An empty report skeleton for the given artefact.
    pub fn new(
        artefact: impl Into<String>,
        title: impl Into<String>,
        suite: impl Into<String>,
        runs: usize,
    ) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            artefact: artefact.into(),
            title: title.into(),
            suite: suite.into(),
            runs,
            layout_trials: 1,
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Looks up a summary metric by name.
    pub fn summary_value(&self, name: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!(
            "  \"artefact\": {},\n",
            json_string(&self.artefact)
        ));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.suite)));
        out.push_str(&format!("  \"runs\": {},\n", self.runs));
        out.push_str(&format!("  \"layout_trials\": {},\n", self.layout_trials));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&row.name)));
            out.push_str(&format!("      \"qubits\": {},\n", row.qubits));
            out.push_str("      \"metrics\": ");
            out.push_str(&json_metrics(&row.metrics, "      "));
            out.push_str("\n    }");
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"summary\": ");
        out.push_str(&json_metrics(&self.summary, "  "));
        out.push_str("\n}\n");
        out
    }

    /// Parses a report previously produced by [`Self::to_json`] (or any JSON
    /// matching the documented schema).
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] describing the first syntax or schema
    /// violation encountered.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let value = Parser::new(text).parse_document()?;
        let object = value.as_object("report")?;
        let schema_version = get(object, "schema_version")?.as_u64("schema_version")?;
        let artefact = get(object, "artefact")?.as_string("artefact")?;
        let title = get(object, "title")?.as_string("title")?;
        let suite = get(object, "suite")?.as_string("suite")?;
        let runs = get(object, "runs")?.as_u64("runs")? as usize;
        // Optional for backward compatibility: schema-1 reports written
        // before the field existed are single-trial runs.
        let layout_trials = match object.iter().find(|(key, _)| key == "layout_trials") {
            Some((_, value)) => value.as_u64("layout_trials")? as usize,
            None => 1,
        };
        let rows = get(object, "rows")?
            .as_array("rows")?
            .iter()
            .map(|row| {
                let row = row.as_object("rows[]")?;
                Ok(ReportRow {
                    name: get(row, "name")?.as_string("name")?,
                    qubits: get(row, "qubits")?.as_u64("qubits")? as usize,
                    metrics: get(row, "metrics")?.as_metrics("metrics")?,
                })
            })
            .collect::<Result<Vec<_>, ReportError>>()?;
        let summary = get(object, "summary")?.as_metrics("summary")?;
        Ok(Self {
            schema_version,
            artefact,
            title,
            suite,
            runs,
            layout_trials,
            rows,
            summary,
        })
    }

    /// Writes the JSON serialization to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to_file(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads and parses a report from `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] for both I/O and parse failures.
    pub fn read_from_file(path: &Path) -> Result<Self, ReportError> {
        let text = fs::read_to_string(path)
            .map_err(|e| ReportError(format!("reading {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

/// Error parsing or validating a [`BenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportError(String);

impl ReportError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bench report: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

/// Escapes and quotes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value that parses back to the same bits
/// (Rust's shortest-round-trip `Display`); non-finite values become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes a metrics map as a JSON object, one entry per line.
fn json_metrics(metrics: &Metrics, indent: &str) -> String {
    if metrics.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{");
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{indent}  {}: {}",
            json_string(name),
            json_number(*value)
        ));
    }
    out.push_str(&format!("\n{indent}}}"));
    out
}

/// Parsed JSON value — just enough of the grammar for the report schema.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    fn as_object(&self, field: &str) -> Result<&[(String, Json)], ReportError> {
        match self {
            Json::Object(entries) => Ok(entries),
            other => Err(ReportError::new(format!(
                "expected {field} to be an object, found {}",
                other.type_name()
            ))),
        }
    }

    fn as_array(&self, field: &str) -> Result<&[Json], ReportError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(ReportError::new(format!(
                "expected {field} to be an array, found {}",
                other.type_name()
            ))),
        }
    }

    fn as_string(&self, field: &str) -> Result<String, ReportError> {
        match self {
            Json::String(s) => Ok(s.clone()),
            other => Err(ReportError::new(format!(
                "expected {field} to be a string, found {}",
                other.type_name()
            ))),
        }
    }

    fn as_u64(&self, field: &str) -> Result<u64, ReportError> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            other => Err(ReportError::new(format!(
                "expected {field} to be a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn as_f64(&self, field: &str) -> Result<f64, ReportError> {
        match self {
            Json::Number(n) => Ok(*n),
            Json::Null => Ok(f64::NAN),
            other => Err(ReportError::new(format!(
                "expected {field} to be a number or null, found {}",
                other.type_name()
            ))),
        }
    }

    fn as_metrics(&self, field: &str) -> Result<Metrics, ReportError> {
        self.as_object(field)?
            .iter()
            .map(|(name, value)| Ok((name.clone(), value.as_f64(name)?)))
            .collect()
    }
}

fn get<'a>(object: &'a [(String, Json)], key: &str) -> Result<&'a Json, ReportError> {
    object
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ReportError::new(format!("missing field \"{key}\"")))
}

/// A minimal recursive-descent JSON parser over the report grammar.
struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    offset: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            chars: text.chars().peekable(),
            offset: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ReportError {
        ReportError::new(format!("{} at offset {}", message.into(), self.offset))
    }

    fn next(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            self.offset += c.len_utf8();
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), ReportError> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.err(format!("expected '{want}', found '{c}'"))),
            None => Err(self.err(format!("expected '{want}', found end of input"))),
        }
    }

    fn parse_document(&mut self) -> Result<Json, ReportError> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.peek().is_some() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Json, ReportError> {
        self.skip_whitespace();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Json::String(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Json::Bool(true)),
            Some('f') => self.parse_keyword("false", Json::Bool(false)),
            Some('n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{c}'"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Json) -> Result<Json, ReportError> {
        for want in keyword.chars() {
            match self.next() {
                Some(c) if c == want => {}
                _ => return Err(self.err(format!("invalid literal, expected \"{keyword}\""))),
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, ReportError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.next();
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(format!("invalid number \"{text}\"")))
    }

    fn parse_string(&mut self) -> Result<String, ReportError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let unit = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: must pair with \uDC00..=\uDFFF.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(unit)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                    }
                    Some(c) => return Err(self.err(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ReportError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .next()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Json, ReportError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.next();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.next() {
                Some(',') => {}
                Some(']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ReportError> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.next();
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.next() {
                Some(',') => {}
                Some('}') => return Ok(Json::Object(entries)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut report = BenchReport::new("table1_cnot_montreal", "Table I — test", "quick", 2);
        report.rows.push(ReportRow {
            name: "Grover_4-qubits".to_string(),
            qubits: 4,
            metrics: vec![
                ("original_cx".to_string(), 30.0),
                ("delta_cx_add".to_string(), 0.25),
            ],
        });
        report.rows.push(ReportRow {
            name: "weird \"name\"\\with\nescapes\t«π»".to_string(),
            qubits: 25,
            metrics: vec![("tiny".to_string(), 1.25e-17)],
        });
        report.summary = vec![("geomean_delta_cx_add".to_string(), 0.18)];
        report.layout_trials = 4;
        report
    }

    #[test]
    fn reports_without_layout_trials_parse_as_single_trial() {
        let json = "{\"schema_version\": 1, \"artefact\": \"a\", \"title\": \"t\", \
                    \"suite\": \"s\", \"runs\": 1, \"rows\": [], \"summary\": {}}";
        let parsed = BenchReport::from_json(json).unwrap();
        assert_eq!(parsed.layout_trials, 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn empty_rows_and_summary_round_trip() {
        let report = BenchReport::new("x", "y", "full", 0);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn summary_and_row_lookups_work() {
        let report = sample_report();
        assert_eq!(report.summary_value("geomean_delta_cx_add"), Some(0.18));
        assert_eq!(report.summary_value("missing"), None);
        assert_eq!(report.rows[0].metric("original_cx"), Some(30.0));
        assert_eq!(report.rows[0].metric("missing"), None);
    }

    #[test]
    fn non_finite_metrics_become_null_and_parse_as_nan() {
        let mut report = BenchReport::new("a", "b", "quick", 1);
        report.summary = vec![("bad".to_string(), f64::INFINITY)];
        let json = report.to_json();
        assert!(json.contains("\"bad\": null"));
        let parsed = BenchReport::from_json(&json).unwrap();
        assert!(parsed.summary[0].1.is_nan());
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        for (text, fragment) in [
            ("", "unexpected end of input"),
            ("{\"schema_version\": 1", "expected"),
            ("{} trailing", "trailing characters"),
            ("{}", "missing field"),
            ("[1, 2]", "expected report to be an object"),
            ("{\"schema_version\": \"x\"}", "non-negative integer"),
            ("{\"a\": \"\\q\"}", "invalid escape"),
            ("{\"a\": \"\\ud800x\"}", "expected"),
            ("nul", "invalid literal"),
        ] {
            let err = BenchReport::from_json(text).unwrap_err();
            assert!(
                err.to_string().contains(fragment),
                "{text:?}: {err} does not mention {fragment:?}"
            );
        }
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        let json = "{\"schema_version\": 1, \"artefact\": \"\\u0041\\ud83d\\ude00\", \
                    \"title\": \"t\", \"suite\": \"s\", \"runs\": 1, \"rows\": [], \
                    \"summary\": {}}";
        let parsed = BenchReport::from_json(json).unwrap();
        assert_eq!(parsed.artefact, "A😀");
    }

    #[test]
    fn file_round_trip_works() {
        let dir = std::env::temp_dir().join("nassc_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_roundtrip.json");
        let report = sample_report();
        report.write_to_file(&path).unwrap();
        assert_eq!(BenchReport::read_from_file(&path).unwrap(), report);
        std::fs::remove_file(&path).ok();
    }
}
