//! Multi-controlled X (Toffoli generalisation) construction.
//!
//! The Grover and reversible-logic benchmarks are built from
//! multi-controlled Toffoli gates. The decomposition here follows the
//! classic Barenco et al. split using one *dirty* borrowed qubit, which
//! keeps the CNOT count roughly linear in the number of controls.

use nassc_circuit::QuantumCircuit;

/// Appends a multi-controlled X with the given control qubits onto `target`.
///
/// `borrows` are qubits that may be used as *dirty* ancillas (their state is
/// restored); at least one borrow is required once there are three or more
/// controls.
///
/// # Panics
///
/// Panics when `controls`, `target` and `borrows` overlap, or when three or
/// more controls are requested without any borrowable qubit.
pub fn mcx(circuit: &mut QuantumCircuit, controls: &[usize], target: usize, borrows: &[usize]) {
    for &c in controls {
        assert_ne!(c, target, "control {c} equals the target");
        assert!(
            !borrows.contains(&c),
            "qubit {c} is both a control and a borrow"
        );
    }
    assert!(!borrows.contains(&target), "the target cannot be a borrow");

    match controls.len() {
        0 => {
            circuit.x(target);
        }
        1 => {
            circuit.cx(controls[0], target);
        }
        2 => {
            circuit.ccx(controls[0], controls[1], target);
        }
        _ => {
            let borrow = *borrows
                .first()
                .expect("an MCX with three or more controls needs a borrowable qubit");
            // Barenco split: C^k X = A · B · A · B with
            //   A = C^m X(first half -> borrow), using the second half + target as borrows,
            //   B = C^{k-m+1} X(second half + borrow -> target), using the first half as borrows.
            let m = controls.len().div_ceil(2);
            let (first, second) = controls.split_at(m);
            let mut second_plus_borrow: Vec<usize> = second.to_vec();
            second_plus_borrow.push(borrow);
            let borrows_for_a: Vec<usize> = second.iter().copied().chain([target]).collect();
            let borrows_for_b: Vec<usize> = first.to_vec();

            mcx(circuit, first, borrow, &borrows_for_a);
            mcx(circuit, &second_plus_borrow, target, &borrows_for_b);
            mcx(circuit, first, borrow, &borrows_for_a);
            mcx(circuit, &second_plus_borrow, target, &borrows_for_b);
        }
    }
}

/// Appends a multi-controlled Z on the given qubits (symmetric in all of
/// them), using `borrows` as dirty ancillas for large gates.
pub fn mcz(circuit: &mut QuantumCircuit, qubits: &[usize], borrows: &[usize]) {
    assert!(!qubits.is_empty(), "mcz needs at least one qubit");
    if qubits.len() == 1 {
        circuit.z(qubits[0]);
        return;
    }
    if qubits.len() == 2 {
        circuit.cz(qubits[0], qubits[1]);
        return;
    }
    let (&target, controls) = qubits.split_last().expect("non-empty");
    circuit.h(target);
    mcx(circuit, controls, target, borrows);
    circuit.h(target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::{circuit_unitary, QuantumCircuit};
    use nassc_math::C64;

    /// Brute-force check: the circuit permutes basis states like an MCX.
    fn assert_is_mcx(circuit: &QuantumCircuit, controls: &[usize], target: usize) {
        let u = circuit_unitary(circuit);
        let dim = u.dim();
        for col in 0..dim {
            let all_controls_set = controls.iter().all(|&c| (col >> c) & 1 == 1);
            let expected_row = if all_controls_set {
                col ^ (1 << target)
            } else {
                col
            };
            assert!(
                u.get(expected_row, col).abs() > 0.999,
                "column {col} does not map to {expected_row}"
            );
            // Phase must be +1 (an MCX is a plain permutation).
            assert!(u.get(expected_row, col).approx_eq(C64::one(), 1e-6));
        }
    }

    #[test]
    fn mcx_with_three_controls_and_dirty_borrow() {
        let mut qc = QuantumCircuit::new(5);
        mcx(&mut qc, &[0, 1, 2], 3, &[4]);
        assert_is_mcx(&qc, &[0, 1, 2], 3);
    }

    #[test]
    fn mcx_with_four_controls() {
        let mut qc = QuantumCircuit::new(6);
        mcx(&mut qc, &[0, 1, 2, 3], 4, &[5]);
        assert_is_mcx(&qc, &[0, 1, 2, 3], 4);
    }

    #[test]
    fn mcx_with_five_controls() {
        let mut qc = QuantumCircuit::new(7);
        mcx(&mut qc, &[0, 1, 2, 3, 4], 5, &[6]);
        assert_is_mcx(&qc, &[0, 1, 2, 3, 4], 5);
    }

    #[test]
    fn small_cases_use_direct_gates() {
        let mut qc = QuantumCircuit::new(3);
        mcx(&mut qc, &[0, 1], 2, &[]);
        assert_eq!(qc.count_ops()["ccx"], 1);
        let mut qc1 = QuantumCircuit::new(2);
        mcx(&mut qc1, &[0], 1, &[]);
        assert_eq!(qc1.cx_count(), 1);
    }

    #[test]
    fn mcz_is_symmetric_phase_flip() {
        let mut qc = QuantumCircuit::new(4);
        mcz(&mut qc, &[0, 1, 2], &[3]);
        let u = circuit_unitary(&qc);
        for col in 0..u.dim() {
            let all_ones = (col & 0b111) == 0b111;
            let expected = if all_ones {
                C64::real(-1.0)
            } else {
                C64::one()
            };
            assert!(u.get(col, col).approx_eq(expected, 1e-6), "diag at {col}");
        }
    }

    #[test]
    #[should_panic(expected = "needs a borrowable qubit")]
    fn large_mcx_without_borrow_panics() {
        let mut qc = QuantumCircuit::new(4);
        mcx(&mut qc, &[0, 1, 2], 3, &[]);
    }
}
