//! Benchmark circuit generators for the NASSC evaluation.
//!
//! Provides the fifteen workloads of Tables I–IV (Grover, VQE, BV, QFT, QPE,
//! adder, multiplier and RevLib-style reversible netlists) plus the five
//! small circuits of the Figure 11 noise experiment, exposed both as plain
//! generator functions ([`circuits`]) and as named suites ([`suite`]).
//!
//! # Example
//!
//! ```
//! use nassc_benchmarks::circuits::vqe;
//!
//! // The 8-qubit full-entanglement VQE ansatz has exactly the 84 CNOTs the
//! // paper reports for its original circuit.
//! assert_eq!(vqe(8, 3, 1).cx_count(), 84);
//! ```

pub mod circuits;
pub mod mcx;
pub mod suite;

pub use circuits::{
    adder, bernstein_vazirani, decoder_2to4, grover, mod5_circuit, multiplier, qft, qpe,
    reversible_netlist, vqe,
};
pub use mcx::{mcx, mcz};
pub use suite::{noise_benchmarks, quick_benchmarks, table_benchmarks, Benchmark};
