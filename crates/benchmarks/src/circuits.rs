//! Generators for the benchmark circuits of the paper's evaluation (§V).
//!
//! Algorithmic benchmarks (Grover, VQE, BV, QFT, QPE, adder, multiplier) are
//! built from their textbook constructions. The RevLib workloads
//! (`sqn_258`, `rd84_253`, `co14_215`, `sym9_193`) and the small QASMBench
//! circuits of Figure 11 are not redistributable as files, so seeded
//! synthetic reversible netlists with matching qubit counts and comparable
//! CNOT totals stand in for them (see DESIGN.md §2).

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nassc_circuit::QuantumCircuit;

use crate::mcx::{mcx, mcz};

/// Grover search over `n - 1` data qubits (one extra qubit serves as a dirty
/// ancilla for the multi-controlled gates), marking the all-ones state.
///
/// The iteration count is the usual `⌊π/4·√N⌋` capped at 2 to keep the
/// circuit sizes in line with the paper's benchmark set.
pub fn grover(n: usize) -> QuantumCircuit {
    assert!(n >= 3, "grover needs at least 3 qubits");
    let data: Vec<usize> = (0..n - 1).collect();
    let ancilla = n - 1;
    let mut qc = QuantumCircuit::new(n);

    for &q in &data {
        qc.h(q);
    }
    let iterations =
        (((2f64.powi(data.len() as i32)).sqrt() * PI / 4.0).floor() as usize).clamp(1, 2);
    for _ in 0..iterations {
        // Oracle: phase flip on the all-ones data state.
        mcz(&mut qc, &data, &[ancilla]);
        // Diffusion operator.
        for &q in &data {
            qc.h(q);
            qc.x(q);
        }
        mcz(&mut qc, &data, &[ancilla]);
        for &q in &data {
            qc.x(q);
            qc.h(q);
        }
    }
    for &q in &data {
        qc.measure(q);
    }
    qc
}

/// A hardware-efficient VQE ansatz with full (all-to-all) CNOT entanglement,
/// `layers` repetitions, and seeded rotation angles.
pub fn vqe(n: usize, layers: usize, seed: u64) -> QuantumCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            qc.ry(rng.gen_range(-PI..PI), q);
            qc.rz(rng.gen_range(-PI..PI), q);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                qc.cx(a, b);
            }
        }
    }
    for q in 0..n {
        qc.ry(rng.gen_range(-PI..PI), q);
    }
    qc
}

/// Bernstein–Vazirani over `n - 1` data qubits with the all-ones hidden
/// string (the configuration matching the paper's CNOT count).
pub fn bernstein_vazirani(n: usize) -> QuantumCircuit {
    assert!(n >= 2, "bv needs at least 2 qubits");
    let ancilla = n - 1;
    let mut qc = QuantumCircuit::new(n);
    qc.x(ancilla).h(ancilla);
    for q in 0..n - 1 {
        qc.h(q);
    }
    for q in 0..n - 1 {
        qc.cx(q, ancilla);
    }
    for q in 0..n - 1 {
        qc.h(q);
        qc.measure(q);
    }
    qc
}

/// The quantum Fourier transform on `n` qubits (without the final reversal
/// SWAP network, matching the common benchmark form).
pub fn qft(n: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(n);
    for target in 0..n {
        qc.h(target);
        for control in (target + 1)..n {
            let angle = PI / 2f64.powi((control - target) as i32);
            qc.cp(angle, control, target);
        }
    }
    qc
}

/// Quantum phase estimation with `n - 1` counting qubits reading out the
/// phase of a `p(θ)` eigenstate on the last qubit.
pub fn qpe(n: usize) -> QuantumCircuit {
    assert!(n >= 2, "qpe needs at least 2 qubits");
    let counting = n - 1;
    let eigen = n - 1;
    let theta = 2.0 * PI * (5.0 / 16.0);
    let mut qc = QuantumCircuit::new(n);
    qc.x(eigen);
    for q in 0..counting {
        qc.h(q);
    }
    for (k, q) in (0..counting).enumerate() {
        let angle = theta * 2f64.powi(k as i32);
        qc.cp(angle, q, eigen);
    }
    // Inverse QFT on the counting register.
    for target in (0..counting).rev() {
        for control in (target + 1)..counting {
            let angle = -PI / 2f64.powi((control - target) as i32);
            qc.cp(angle, control, target);
        }
        qc.h(target);
    }
    for q in 0..counting {
        qc.measure(q);
    }
    qc
}

/// A Cuccaro ripple-carry adder computing `b += a` with `(n - 2) / 2`-bit
/// operands, one carry-in and one carry-out qubit (`n` qubits total).
pub fn adder(n: usize) -> QuantumCircuit {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "adder needs an even number of qubits >= 4"
    );
    let bits = (n - 2) / 2;
    let mut qc = QuantumCircuit::new(n);
    // Register layout: carry-in = 0, a_i = 1 + 2i, b_i = 2 + 2i, carry-out = n-1.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = n - 1;

    // Put the inputs into a non-trivial state so simulation is interesting.
    for i in 0..bits {
        if i % 2 == 0 {
            qc.x(a(i));
        }
        if i % 3 == 0 {
            qc.x(b(i));
        }
    }

    let maj = |qc: &mut QuantumCircuit, c: usize, bq: usize, aq: usize| {
        qc.cx(aq, bq);
        qc.cx(aq, c);
        qc.ccx(c, bq, aq);
    };
    let uma = |qc: &mut QuantumCircuit, c: usize, bq: usize, aq: usize| {
        qc.ccx(c, bq, aq);
        qc.cx(aq, c);
        qc.cx(c, bq);
    };

    maj(&mut qc, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut qc, a(i - 1), b(i), a(i));
    }
    qc.cx(a(bits - 1), cout);
    for i in (1..bits).rev() {
        uma(&mut qc, a(i - 1), b(i), a(i));
    }
    uma(&mut qc, cin, b(0), a(0));

    for i in 0..bits {
        qc.measure(b(i));
    }
    qc.measure(cout);
    qc
}

/// A shift-and-add multiplier on `n` qubits: two ⌊(n-1)/3⌋-bit operands and a
/// product register, built from Toffoli partial products and ripple carries.
pub fn multiplier(n: usize) -> QuantumCircuit {
    assert!(n >= 7, "multiplier needs at least 7 qubits");
    let bits = (n - 1) / 3;
    let a0 = 0;
    let b0 = bits;
    let p0 = 2 * bits;
    let carry = 3 * bits;
    let mut qc = QuantumCircuit::new(n);

    for i in 0..bits {
        if i % 2 == 0 {
            qc.x(a0 + i);
        }
        if i != 1 {
            qc.x(b0 + i);
        }
    }

    // For every partial product a_i * b_j, add it into the product register
    // with a small ripple of Toffolis through the carry qubit.
    for i in 0..bits {
        for j in 0..bits {
            let out = p0 + ((i + j) % bits.max(1));
            qc.ccx(a0 + i, b0 + j, out);
            // Propagate a carry one position (truncated arithmetic).
            let next = p0 + ((i + j + 1) % bits.max(1));
            qc.ccx(a0 + i, out, carry);
            qc.cx(carry, next);
            qc.ccx(a0 + i, out, carry);
        }
    }
    for k in 0..bits {
        qc.measure(p0 + k);
    }
    qc
}

/// A seeded reversible netlist of multi-controlled Toffoli gates, generated
/// until its decomposition reaches roughly `target_cx` CNOTs. Used as the
/// stand-in for the RevLib benchmarks (see DESIGN.md §2).
pub fn reversible_netlist(n: usize, target_cx: usize, seed: u64) -> QuantumCircuit {
    assert!(n >= 4, "reversible netlists need at least 4 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::new(n);
    while qc.cx_count() + 6 * qc.count_ops().get("ccx").copied().unwrap_or(0) < target_cx {
        let num_controls = rng.gen_range(1..=3.min(n - 2));
        let mut qubits: Vec<usize> = (0..n).collect();
        // Choose distinct target + controls.
        for k in 0..=num_controls {
            let pick = rng.gen_range(k..n);
            qubits.swap(k, pick);
        }
        let target = qubits[0];
        let controls = &qubits[1..=num_controls];
        let borrows: Vec<usize> = qubits[num_controls + 1..].to_vec();
        if rng.gen_bool(0.15) {
            qc.x(target);
        }
        mcx(&mut qc, controls, target, &borrows);
    }
    qc
}

/// A 2-to-4 decoder on 4 qubits: stands in for QASMBench's `decod24-v2_43`.
pub fn decoder_2to4() -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(4);
    qc.x(0);
    qc.ccx(0, 1, 3);
    qc.cx(0, 2);
    qc.ccx(1, 2, 3);
    qc.cx(1, 2);
    qc.cx(0, 1);
    qc.ccx(0, 1, 2);
    qc.cx(3, 0);
    for q in 0..4 {
        qc.measure(q);
    }
    qc
}

/// A small mod-5 style reversible arithmetic circuit on 5 qubits: stands in
/// for QASMBench's `mod5mils_65` / `mod5d2_64`.
pub fn mod5_circuit(variant: u64) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(5);
    qc.x(0).x(2);
    let mut rng = StdRng::seed_from_u64(variant);
    for _ in 0..8 {
        let t = rng.gen_range(0..5);
        let c1 = (t + rng.gen_range(1..5)) % 5;
        let c2 = (t + rng.gen_range(1..5)) % 5;
        if c1 != c2 && c1 != t && c2 != t {
            qc.ccx(c1, c2, t);
        } else {
            qc.cx(c1.max(1) % 5, t);
        }
        if rng.gen_bool(0.3) {
            qc.cx((t + 1) % 5, t);
        }
    }
    for q in 0..5 {
        qc.measure(q);
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_sizes_scale_like_the_paper() {
        let g4 = grover(4);
        let g6 = grover(6);
        let g8 = grover(8);
        assert_eq!(g4.num_qubits(), 4);
        assert!(g4.two_qubit_gate_count() + 6 * g4.count_ops().get("ccx").unwrap_or(&0) >= 20);
        assert!(g6.num_gates() > g4.num_gates());
        assert!(g8.num_gates() > g6.num_gates());
    }

    #[test]
    fn vqe_cnot_counts_match_the_paper_exactly() {
        // Table I: VQE_n8 has 84 original CNOTs, VQE_n12 has 198.
        assert_eq!(vqe(8, 3, 1).cx_count(), 84);
        assert_eq!(vqe(12, 3, 1).cx_count(), 198);
    }

    #[test]
    fn bv_cnot_count_matches_the_paper() {
        // Table I: BV_n19 has 18 CNOTs.
        assert_eq!(bernstein_vazirani(19).cx_count(), 18);
        assert_eq!(bernstein_vazirani(19).num_qubits(), 19);
    }

    #[test]
    fn qft_gate_counts() {
        // QFT_n15: 15·14/2 = 105 controlled-phase gates (210 CNOTs once lowered).
        let q = qft(15);
        assert_eq!(q.count_ops()["cp"], 105);
        assert_eq!(q.count_ops()["h"], 15);
    }

    #[test]
    fn qpe_structure() {
        let q = qpe(9);
        assert_eq!(q.num_qubits(), 9);
        assert!(q.count_ops()["cp"] > 8);
        assert_eq!(q.count_ops()["measure"], 8);
    }

    #[test]
    fn adder_and_multiplier_have_expected_widths() {
        assert_eq!(adder(10).num_qubits(), 10);
        assert!(adder(10).count_ops()["ccx"] >= 8);
        assert_eq!(multiplier(25).num_qubits(), 25);
        assert!(multiplier(25).count_ops()["ccx"] > 50);
    }

    #[test]
    fn reversible_netlist_hits_target_size_and_is_deterministic() {
        let a = reversible_netlist(10, 500, 7);
        let b = reversible_netlist(10, 500, 7);
        assert_eq!(a, b);
        let cx_equiv = a.cx_count() + 6 * a.count_ops().get("ccx").copied().unwrap_or(0);
        assert!(cx_equiv >= 500);
        assert!(cx_equiv < 800, "netlist overshoots: {cx_equiv}");
    }

    #[test]
    fn small_fig11_circuits_are_well_formed() {
        assert_eq!(decoder_2to4().num_qubits(), 4);
        assert_eq!(mod5_circuit(1).num_qubits(), 5);
        assert!(decoder_2to4().count_ops()["measure"] == 4);
    }
}
