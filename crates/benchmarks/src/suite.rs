//! The named benchmark suites used by the evaluation harness.

use nassc_circuit::QuantumCircuit;

use crate::circuits;

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The name as it appears in the paper's tables (or, for external
    /// OpenQASM workloads, the source file stem).
    pub name: String,
    /// Number of qubits.
    pub qubits: usize,
    /// The generated logical circuit.
    pub circuit: QuantumCircuit,
}

impl Benchmark {
    /// Wraps a circuit as a named benchmark (the qubit count is derived).
    ///
    /// Public so external-workload drivers (the `--qasm-dir` corpus mode of
    /// the bench harness) can feed parsed circuits through the same
    /// comparison machinery as the built-in suites.
    pub fn new(name: impl Into<String>, circuit: QuantumCircuit) -> Self {
        Self {
            name: name.into(),
            qubits: circuit.num_qubits(),
            circuit,
        }
    }
}

/// The fifteen benchmarks of Tables I–IV.
///
/// The last four are seeded synthetic stand-ins for the RevLib circuits (see
/// DESIGN.md §2); their target CNOT totals match the paper's "original
/// circuit" column to within the granularity of whole Toffoli gates.
pub fn table_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::new("Grover_4-qubits", circuits::grover(4)),
        Benchmark::new("Grover_6-qubits", circuits::grover(6)),
        Benchmark::new("Grover_8-qubits", circuits::grover(8)),
        Benchmark::new("VQE_8-qubits", circuits::vqe(8, 3, 1)),
        Benchmark::new("VQE_12-qubits", circuits::vqe(12, 3, 1)),
        Benchmark::new("BV_19-qubits", circuits::bernstein_vazirani(19)),
        Benchmark::new("QFT_15-qubits", circuits::qft(15)),
        Benchmark::new("QFT_20-qubits", circuits::qft(20)),
        Benchmark::new("QPE_9-qubits", circuits::qpe(9)),
        Benchmark::new("Adder_10-qubits", circuits::adder(10)),
        Benchmark::new("Multiplier_25-qubits", circuits::multiplier(25)),
        Benchmark::new("sqn_258", circuits::reversible_netlist(10, 4459, 258)),
        Benchmark::new("rd84_253", circuits::reversible_netlist(12, 5960, 253)),
        Benchmark::new("co14_215", circuits::reversible_netlist(15, 7840, 215)),
        Benchmark::new("sym9_193", circuits::reversible_netlist(11, 15232, 193)),
    ]
}

/// A reduced suite (the small and mid-size benchmarks) for quick runs and CI.
pub fn quick_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::new("Grover_4-qubits", circuits::grover(4)),
        Benchmark::new("Grover_6-qubits", circuits::grover(6)),
        Benchmark::new("VQE_8-qubits", circuits::vqe(8, 3, 1)),
        Benchmark::new("BV_19-qubits", circuits::bernstein_vazirani(19)),
        Benchmark::new("QFT_15-qubits", circuits::qft(15)),
        Benchmark::new("QPE_9-qubits", circuits::qpe(9)),
        Benchmark::new("Adder_10-qubits", circuits::adder(10)),
    ]
}

/// The five small circuits of the Figure 11 noise-model experiment.
pub fn noise_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::new("bv_n5", circuits::bernstein_vazirani(5)),
        Benchmark::new("mod5mils_65", circuits::mod5_circuit(65)),
        Benchmark::new("decod24-v2_43", circuits::decoder_2to4()),
        Benchmark::new("mod5d2_64", circuits::mod5_circuit(64)),
        Benchmark::new("grover_n4", circuits::grover(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_suite_matches_paper_names_and_widths() {
        let suite = table_benchmarks();
        assert_eq!(suite.len(), 15);
        let widths: Vec<usize> = suite.iter().map(|b| b.qubits).collect();
        assert_eq!(
            widths,
            vec![4, 6, 8, 8, 12, 19, 15, 20, 9, 10, 25, 10, 12, 15, 11]
        );
    }

    #[test]
    fn noise_suite_has_five_small_circuits() {
        let suite = noise_benchmarks();
        assert_eq!(suite.len(), 5);
        assert!(suite.iter().all(|b| b.qubits <= 5));
    }

    #[test]
    fn quick_suite_is_a_subset_scale() {
        let quick = quick_benchmarks();
        assert!(quick.len() < table_benchmarks().len());
        assert!(quick.iter().all(|b| b.circuit.num_gates() > 0));
    }
}
