//! Tokenizer for OpenQASM 2.0 source text.
//!
//! Number literals keep their exact lexeme so the parser can defer to
//! `f64::from_str` (correctly rounded) — that is what makes the
//! export → parse round trip bit-exact for gate parameters.

use crate::error::QasmError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (`qreg`, `gate`, `h`, …).
    Id(String),
    /// Integer or real literal, kept as its exact source lexeme.
    Number(String),
    /// A double-quoted string (include filenames).
    Str(String),
    /// Single-character punctuation: `; , ( ) { } [ ] + - * / ^ = < > !`.
    Symbol(char),
    /// The measurement arrow `->`.
    Arrow,
}

impl TokenKind {
    /// A short human-readable rendering for error messages.
    pub(crate) fn describe(&self) -> String {
        match self {
            TokenKind::Id(name) => format!("identifier \"{name}\""),
            TokenKind::Number(text) => format!("number {text}"),
            TokenKind::Str(text) => format!("string \"{text}\""),
            TokenKind::Symbol(c) => format!("'{c}'"),
            TokenKind::Arrow => "'->'".to_string(),
        }
    }
}

/// A token plus the 1-based line it started on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Tokenizes a whole source file.
///
/// Skips whitespace and `//` line comments; rejects characters outside the
/// OpenQASM 2.0 alphabet with a positioned [`QasmError`].
pub(crate) fn lex(source: &str) -> Result<Vec<Token>, QasmError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    line,
                });
                i += 2;
            }
            ';' | ',' | '(' | ')' | '{' | '}' | '[' | ']' | '+' | '-' | '*' | '/' | '^' | '='
            | '<' | '>' | '!' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(c),
                    line,
                });
                i += 1;
            }
            '"' => {
                let start_line = line;
                let mut text = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(QasmError::at(start_line, "unterminated string")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\n') => return Err(QasmError::at(start_line, "unterminated string")),
                        Some(&c) => {
                            text.push(c);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() || (c == '.' && next_is_digit(&chars, i + 1)) => {
                let mut text = String::new();
                while let Some(&c) = chars.get(i) {
                    if c.is_ascii_digit() || c == '.' {
                        text.push(c);
                        i += 1;
                    } else if (c == 'e' || c == 'E') && exponent_follows(&chars, i + 1) {
                        text.push(c);
                        i += 1;
                        if matches!(chars.get(i), Some('+') | Some('-')) {
                            text.push(chars[i]);
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(text),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.get(i) {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Id(text),
                    line,
                });
            }
            other => {
                return Err(QasmError::at(
                    line,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(tokens)
}

/// Whether `chars[i]` exists and is a digit.
fn next_is_digit(chars: &[char], i: usize) -> bool {
    chars.get(i).is_some_and(|c| c.is_ascii_digit())
}

/// Whether an exponent body (`7`, `+7`, `-7`) starts at `chars[i]`.
fn exponent_follows(chars: &[char], i: usize) -> bool {
    match chars.get(i) {
        Some('+') | Some('-') => next_is_digit(chars, i + 1),
        Some(c) => c.is_ascii_digit(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement_tokenizes() {
        assert_eq!(
            kinds("qreg q[3];"),
            vec![
                TokenKind::Id("qreg".into()),
                TokenKind::Id("q".into()),
                TokenKind::Symbol('['),
                TokenKind::Number("3".into()),
                TokenKind::Symbol(']'),
                TokenKind::Symbol(';'),
            ]
        );
    }

    #[test]
    fn numbers_keep_exact_lexemes() {
        assert_eq!(
            kinds("2.0 1e-7 .5 3.25E+2 0.0000000000000000125"),
            vec![
                TokenKind::Number("2.0".into()),
                TokenKind::Number("1e-7".into()),
                TokenKind::Number(".5".into()),
                TokenKind::Number("3.25E+2".into()),
                TokenKind::Number("0.0000000000000000125".into()),
            ]
        );
    }

    #[test]
    fn minus_before_digit_stays_a_symbol() {
        // `-0.5` must lex as unary minus + literal, so expression parsing
        // (not the lexer) owns negation.
        assert_eq!(
            kinds("-0.5"),
            vec![TokenKind::Symbol('-'), TokenKind::Number("0.5".into())]
        );
    }

    #[test]
    fn arrow_and_comments_and_strings() {
        assert_eq!(
            kinds("measure q -> c; // the readout\ninclude \"qelib1.inc\";"),
            vec![
                TokenKind::Id("measure".into()),
                TokenKind::Id("q".into()),
                TokenKind::Arrow,
                TokenKind::Id("c".into()),
                TokenKind::Symbol(';'),
                TokenKind::Id("include".into()),
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Symbol(';'),
            ]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let tokens = lex("x q[0];\n\ny q[1];").unwrap();
        assert_eq!(tokens.first().unwrap().line, 1);
        assert_eq!(tokens.last().unwrap().line, 3);
    }

    #[test]
    fn bad_characters_are_positioned() {
        let err = lex("x q[0];\n#").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unexpected character"));
        assert!(lex("\"open").unwrap_err().message.contains("unterminated"));
    }

    #[test]
    fn identifier_e_is_not_an_exponent() {
        // `2e` (no digits after) lexes as number `2` then identifier `e`.
        assert_eq!(
            kinds("2e"),
            vec![TokenKind::Number("2".into()), TokenKind::Id("e".into())]
        );
    }
}
