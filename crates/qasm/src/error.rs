//! The error type shared by the lexer, the parser and the exporter.

use std::fmt;

/// An error produced while lexing, parsing or exporting OpenQASM 2.0.
///
/// Carries the 1-based source line the problem was detected on (0 for
/// errors without a source position, e.g. export failures) and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based line number, or 0 when no source position applies.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl QasmError {
    /// An error anchored to a source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// An error without a source position (export-side failures).
    pub fn new(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "QASM error: {}", self.message)
        } else {
            write!(f, "QASM error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_present() {
        assert_eq!(
            QasmError::at(3, "boom").to_string(),
            "QASM error at line 3: boom"
        );
        assert_eq!(QasmError::new("boom").to_string(), "QASM error: boom");
    }
}
