//! OpenQASM 2.0 frontend and exporter for the NASSC reproduction.
//!
//! This crate turns the transpiler from a closed benchmark harness into a
//! system that ingests arbitrary external workloads:
//!
//! * [`parse`] — a dependency-free lexer + recursive-descent parser covering
//!   the practical OpenQASM 2.0 subset (qelib1 standard gates resolved
//!   built-in, user `gate` definitions expanded by inlining, parameter
//!   expressions over `pi` evaluated to `f64`, register broadcast,
//!   `barrier`/`measure`/`include "qelib1.inc"` tolerated), lowering into
//!   [`nassc_circuit::QuantumCircuit`];
//! * [`export`] — serializes any circuit of named gates back to valid
//!   OpenQASM 2.0 (delegating to [`QuantumCircuit::to_qasm`], which formats
//!   parameters with shortest-round-trip precision);
//! * the round-trip guarantee: for every circuit the transpiler can produce,
//!   `parse(&export(c)?)? == c` structurally, float parameters included;
//! * [`load_corpus`] — reads every `.qasm` file of a directory (sorted by
//!   filename for deterministic job order) for batch ingestion by the bench
//!   harness.
//!
//! Known limitations: no classical control (`if`), no `reset`, no `opaque`
//! gates, and includes other than `qelib1.inc` are rejected.
//!
//! # Example
//!
//! ```
//! use nassc_qasm::{export, parse};
//!
//! let mut qc = nassc_circuit::QuantumCircuit::new(2);
//! qc.h(0).cx(0, 1).rz(0.25, 1);
//! let qasm = export(&qc).unwrap();
//! assert_eq!(parse(&qasm).unwrap(), qc);
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use nassc_circuit::QuantumCircuit;

mod error;
mod lexer;
mod parser;

pub use error::QasmError;
pub use parser::parse;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// Thin wrapper over [`QuantumCircuit::to_qasm`] that converts its error into
/// [`QasmError`], so frontend and exporter share one error type.
///
/// # Errors
///
/// Fails when the circuit contains instructions with no OpenQASM 2.0
/// spelling: raw-matrix `unitary1`/`unitary2` blocks or non-finite
/// parameters.
pub fn export(circuit: &QuantumCircuit) -> Result<String, QasmError> {
    circuit.to_qasm().map_err(|e| QasmError::new(e.to_string()))
}

/// One `.qasm` file of a corpus directory: its stem, path and parse outcome.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// The file stem (`adder_n10` for `adder_n10.qasm`), used as the
    /// benchmark name.
    pub name: String,
    /// The full path the file was read from.
    pub path: PathBuf,
    /// The parsed circuit, or the parse error for this file.
    pub circuit: Result<QuantumCircuit, QasmError>,
}

/// Reads and parses every `*.qasm` file directly inside `dir`, sorted by
/// filename so corpus job order (and therefore batch output order) is
/// deterministic across filesystems.
///
/// Per-file parse failures are *data*, not errors: they come back inside the
/// returned [`CorpusFile`]s so callers can count or report them (the CI
/// corpus gate keys off exactly that count).
///
/// # Errors
///
/// Only I/O problems abort: an unreadable directory or file.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<CorpusFile>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| path.is_file() && path.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let source = fs::read_to_string(&path)?;
            let name = path
                .file_stem()
                .map(|stem| stem.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            Ok(CorpusFile {
                name,
                circuit: parse(&source),
                path,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::{circuits_equivalent, Gate, QuantumCircuit};
    use std::f64::consts::PI;

    fn parse_ok(source: &str) -> QuantumCircuit {
        parse(source).unwrap_or_else(|e| panic!("{e}\nsource:\n{source}"))
    }

    #[test]
    fn bell_program_lowers_to_the_expected_circuit() {
        let qc = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
        );
        let mut want = QuantumCircuit::new(2);
        want.h(0).cx(0, 1).measure(0).measure(1);
        assert_eq!(qc, want);
    }

    #[test]
    fn every_builtin_gate_parses() {
        let source = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
U(0.1,0.2,0.3) q[0];
CX q[0],q[1];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];
sx q[0]; sxdg q[0];
rx(0.5) q[0]; ry(0.5) q[1]; rz(0.5) q[2];
p(0.25) q[0]; u1(0.25) q[0]; u2(0.1,0.2) q[0]; u(0.1,0.2,0.3) q[0]; u3(0.1,0.2,0.3) q[0];
u0(1) q[0];
cx q[0],q[1]; cy q[0],q[1]; cz q[0],q[1]; ch q[0],q[1]; swap q[0],q[1];
crx(0.3) q[0],q[1]; cry(0.3) q[0],q[1]; crz(0.3) q[0],q[1];
cp(0.3) q[0],q[1]; cu1(0.3) q[0],q[1]; cu3(0.1,0.2,0.3) q[0],q[1];
rxx(0.3) q[0],q[1]; rzz(0.3) q[0],q[1];
ccx q[0],q[1],q[2]; cswap q[0],q[1],q[2];
"#;
        let qc = parse_ok(source);
        assert!(qc.num_gates() > 30);
        assert_eq!(qc.instructions()[0].gate, Gate::U(0.1, 0.2, 0.3));
        assert_eq!(qc.instructions()[1].gate, Gate::Cx);
        // u0 lowers to the identity.
        assert!(qc.iter().any(|i| i.gate == Gate::I));
    }

    #[test]
    fn cu3_expansion_is_unitarily_correct() {
        // Compare the inlined cu3 against the controlled-U matrix built from
        // first principles: ctrl(U(θ,φ,λ)) with control = qubit 0.
        let (theta, lambda) = (0.7, 1.3);
        let parsed = parse_ok(&format!(
            "OPENQASM 2.0;\nqreg q[2];\ncu3({theta},-0.4,{lambda}) q[0],q[1];\n"
        ));
        let mut cry = QuantumCircuit::new(2);
        cry.append(Gate::Cry(theta), vec![0, 1]);
        let parsed_theta_only = parse_ok(&format!(
            "OPENQASM 2.0;\nqreg q[2];\ncu3({theta},0,0) q[0],q[1];\n"
        ));
        assert!(
            circuits_equivalent(&parsed_theta_only, &cry, 1e-10),
            "cu3(θ,0,0) must equal cry(θ)"
        );
        // And cu3(0,0,λ) must equal cu1(λ) = cp(λ).
        let parsed_lambda_only = parse_ok(&format!(
            "OPENQASM 2.0;\nqreg q[2];\ncu3(0,0,{lambda}) q[0],q[1];\n"
        ));
        let mut cp = QuantumCircuit::new(2);
        cp.append(Gate::Cp(lambda), vec![0, 1]);
        assert!(
            circuits_equivalent(&parsed_lambda_only, &cp, 1e-10),
            "cu3(0,0,λ) must equal cp(λ)"
        );
        assert_eq!(parsed.num_gates(), 6);
    }

    #[test]
    fn expressions_evaluate_with_pi_and_precedence() {
        let qc = parse_ok(
            "OPENQASM 2.0;\nqreg q[1];\n\
             rz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(2*pi) q[0];\n\
             rz(1+2*3) q[0];\nrz((1+2)*3) q[0];\nrz(2^3^2) q[0];\n\
             rz(sqrt(4)) q[0];\nrz(cos(0)) q[0];\n\
             rz(-2^2) q[0];\nrz(2^-2) q[0];\nrz(2*-3) q[0];\n",
        );
        let angles: Vec<f64> = qc.iter().map(|i| i.gate.params()[0]).collect();
        assert_eq!(angles[0], PI / 2.0);
        assert_eq!(angles[1], -PI / 4.0);
        assert_eq!(angles[2], 2.0 * PI);
        assert_eq!(angles[3], 7.0);
        assert_eq!(angles[4], 9.0);
        assert_eq!(angles[5], 512.0, "^ must be right-associative");
        assert_eq!(angles[6], 2.0);
        assert_eq!(angles[7], 1.0);
        // Qiskit's precedence: `^` binds tighter than unary minus.
        assert_eq!(angles[8], -4.0, "-2^2 must be -(2^2)");
        assert_eq!(angles[9], 0.25, "the exponent may carry its own sign");
        assert_eq!(angles[10], -6.0);
    }

    #[test]
    fn user_gate_definitions_inline_with_parameters() {
        let qc = parse_ok(
            "OPENQASM 2.0;\nqreg q[3];\n\
             gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n\
             gate rot(t) a { rz(t/2) a; rx(-t) a; }\n\
             majority q[0],q[1],q[2];\n\
             rot(pi) q[1];\n",
        );
        let gates: Vec<&str> = qc.iter().map(|i| i.gate.name()).collect();
        assert_eq!(gates, vec!["cx", "cx", "ccx", "rz", "rx"]);
        assert_eq!(qc.instructions()[0].qubits().to_vec(), vec![2, 1]);
        assert_eq!(qc.instructions()[3].gate, Gate::Rz(PI / 2.0));
        assert_eq!(qc.instructions()[4].gate, Gate::Rx(-PI));
    }

    #[test]
    fn nested_user_gates_and_barriers_inline() {
        let qc = parse_ok(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate inner a { h a; }\n\
             gate outer a,b { inner a; barrier a,b; inner b; }\n\
             outer q[0],q[1];\n",
        );
        let gates: Vec<&str> = qc.iter().map(|i| i.gate.name()).collect();
        assert_eq!(gates, vec!["h", "barrier", "h"]);
        assert_eq!(qc.instructions()[1].qubits().to_vec(), vec![0, 1]);
    }

    #[test]
    fn gate_bodies_bind_callees_at_definition_time() {
        // A later shadowing definition of `h` must not rewrite `bell`'s
        // already-parsed body (OpenQASM 2.0 resolves identifiers at
        // definition time), but statements after the shadow do see it —
        // and a gate is not in scope inside its own body, so `gate x` can
        // wrap the builtin `x` without recursing.
        let qc = parse_ok(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate bell a,b { h a; cx a,b; }\n\
             gate h a { x a; }\n\
             gate x a { z a; x a; z a; }\n\
             bell q[0],q[1];\n\
             h q[0];\n\
             x q[1];\n",
        );
        let gates: Vec<&str> = qc.iter().map(|i| i.gate.name()).collect();
        assert_eq!(
            gates,
            vec![
                "h", "cx", // bell: the real h, not the shadow
                "x",  // h after the shadow: the user h = builtin x
                "z", "x", "z", // x after the shadow: z·x·z with the builtin x inside
            ]
        );
    }

    #[test]
    fn register_broadcast_expands_single_and_two_qubit_gates() {
        let qc = parse_ok(
            "OPENQASM 2.0;\nqreg a[3];\nqreg b[3];\n\
             h a;\ncx a,b;\ncx a[0],b;\n",
        );
        let gates: Vec<(&str, Vec<usize>)> = qc
            .iter()
            .map(|i| (i.gate.name(), i.qubits().to_vec()))
            .collect();
        assert_eq!(
            gates,
            vec![
                ("h", vec![0]),
                ("h", vec![1]),
                ("h", vec![2]),
                ("cx", vec![0, 3]),
                ("cx", vec![1, 4]),
                ("cx", vec![2, 5]),
                ("cx", vec![0, 3]),
                ("cx", vec![0, 4]),
                ("cx", vec![0, 5]),
            ]
        );
    }

    #[test]
    fn multiple_qregs_flatten_in_declaration_order() {
        let qc = parse_ok("OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\nx b[0];\nx a[1];\n");
        assert_eq!(qc.num_qubits(), 5);
        assert_eq!(qc.instructions()[0].qubits().to_vec(), vec![2]);
        assert_eq!(qc.instructions()[1].qubits().to_vec(), vec![1]);
    }

    #[test]
    fn export_then_parse_is_identity_on_a_mixed_circuit() {
        let mut qc = QuantumCircuit::new(4);
        qc.h(0)
            .cx(0, 1)
            .rz(0.123_456_789_012_345_68, 2)
            .u(0.1, -0.2, 0.3, 3)
            .p(PI / 8.0, 0)
            .ccx(0, 1, 2)
            .swap(1, 3)
            .barrier_all()
            .measure(0)
            .measure(3);
        let qasm = export(&qc).unwrap();
        assert_eq!(parse(&qasm).unwrap(), qc);
    }

    #[test]
    fn corpus_loader_reads_sorted_and_keeps_failures() {
        let dir = std::env::temp_dir().join("nassc_qasm_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("b_ok.qasm"),
            "OPENQASM 2.0;\nqreg q[1];\nx q[0];\n",
        )
        .unwrap();
        std::fs::write(dir.join("a_bad.qasm"), "OPENQASM 2.0;\nnope q[0];\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not qasm").unwrap();
        let corpus = load_corpus(&dir).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].name, "a_bad");
        assert!(corpus[0].circuit.is_err());
        assert_eq!(corpus[1].name, "b_ok");
        assert!(corpus[1].circuit.is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
