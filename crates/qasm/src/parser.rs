//! Recursive-descent parser and lowering for OpenQASM 2.0.
//!
//! The parser covers the practical OpenQASM 2.0 subset quantum benchmark
//! suites use:
//!
//! * `OPENQASM 2.0;` header, `include "qelib1.inc";` (resolved built-in),
//! * `qreg`/`creg` declarations (multiple registers flatten onto one
//!   contiguous qubit index space in declaration order),
//! * the `qelib1.inc` standard gates plus the `U`/`CX` primitives,
//! * user `gate` definitions, expanded by inlining at every call site,
//! * parameter expressions over `pi`, literals, gate parameters, `+ - * / ^`
//!   and the builtin functions `sin cos tan exp ln sqrt`, evaluated to `f64`,
//! * register-broadcast applications (`h q;`, `cx q,r;`, `measure q -> c;`),
//! * `barrier` and `measure` (measurement lowers to the `Measure` marker;
//!   the classical target is validated then discarded).
//!
//! Unsupported constructs fail with a positioned [`QasmError`]: `if`
//! (classical control), `reset`, `opaque`, and includes other than
//! `qelib1.inc`.

use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

use nassc_circuit::{Gate, Instruction, QuantumCircuit};

use crate::error::QasmError;
use crate::lexer::{lex, Token, TokenKind};

/// Hard cap on nested gate-definition inlining, against (ill-formed)
/// self-referential definitions.
const MAX_EXPANSION_DEPTH: usize = 64;

/// `(name, parameter count, qubit count)` of every built-in gate the parser
/// resolves without a user definition: the `U`/`CX` primitives and the
/// `qelib1.inc` standard library.
const BUILTINS: &[(&str, usize, usize)] = &[
    ("U", 3, 1),
    ("CX", 0, 2),
    ("id", 0, 1),
    ("u0", 1, 1),
    ("x", 0, 1),
    ("y", 0, 1),
    ("z", 0, 1),
    ("h", 0, 1),
    ("s", 0, 1),
    ("sdg", 0, 1),
    ("t", 0, 1),
    ("tdg", 0, 1),
    ("sx", 0, 1),
    ("sxdg", 0, 1),
    ("rx", 1, 1),
    ("ry", 1, 1),
    ("rz", 1, 1),
    ("p", 1, 1),
    ("u1", 1, 1),
    ("u2", 2, 1),
    ("u", 3, 1),
    ("u3", 3, 1),
    ("cx", 0, 2),
    ("cy", 0, 2),
    ("cz", 0, 2),
    ("ch", 0, 2),
    ("swap", 0, 2),
    ("crx", 1, 2),
    ("cry", 1, 2),
    ("crz", 1, 2),
    ("cp", 1, 2),
    ("cu1", 1, 2),
    ("cu3", 3, 2),
    ("rxx", 1, 2),
    ("rzz", 1, 2),
    ("ccx", 0, 3),
    ("cswap", 0, 3),
];

/// Parses OpenQASM 2.0 source into a flat [`QuantumCircuit`].
///
/// All quantum registers map onto one contiguous qubit index space in
/// declaration order; classical registers are validated but carry no state
/// (measurement lowers to the [`Gate::Measure`] marker on the measured
/// qubit).
///
/// # Errors
///
/// Returns a [`QasmError`] with the offending source line for syntax errors,
/// unknown gates, register overflows, arity mismatches and unsupported
/// constructs (`if`, `reset`, `opaque`, non-`qelib1.inc` includes).
///
/// # Example
///
/// ```
/// let qasm = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// creg c[2];
/// h q[0];
/// cx q[0],q[1];
/// measure q -> c;
/// "#;
/// let circuit = nassc_qasm::parse(qasm).unwrap();
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.cx_count(), 1);
/// assert_eq!(circuit.count_ops()["measure"], 2);
/// ```
pub fn parse(source: &str) -> Result<QuantumCircuit, QasmError> {
    nassc_circuit::failpoints::hit("parse");
    Parser::new(lex(source)?).run()
}

/// A quantum register: its offset into the flat qubit space and its size.
#[derive(Debug, Clone)]
struct QReg {
    offset: usize,
    size: usize,
}

/// One operation inside a `gate` definition body.
#[derive(Debug, Clone)]
enum GateOp {
    /// A gate application over formal qubit arguments.
    Apply {
        name: String,
        line: usize,
        params: Vec<Expr>,
        qargs: Vec<String>,
        /// The user definition `name` referred to *when this body was
        /// parsed* (`None` = a built-in). OpenQASM 2.0 resolves identifiers
        /// at definition time, so a later shadowing definition must not
        /// change the meaning of bodies that were parsed before it.
        resolved: Option<Rc<GateDef>>,
    },
    /// A barrier over formal qubit arguments.
    Barrier(Vec<String>),
}

/// A user `gate` definition, inlined at every call site.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<GateOp>,
}

/// A parameter expression, evaluated against the enclosing definition's
/// formal parameters (top level evaluates with an empty environment).
#[derive(Debug, Clone)]
enum Expr {
    Num(f64),
    Pi,
    Ident(String),
    Neg(Box<Expr>),
    Binary(char, Box<Expr>, Box<Expr>),
    Call(String, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &HashMap<String, f64>, line: usize) -> Result<f64, QasmError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => PI,
            Expr::Ident(name) => *env.get(name).ok_or_else(|| {
                QasmError::at(line, format!("unknown parameter \"{name}\" in expression"))
            })?,
            Expr::Neg(inner) => -inner.eval(env, line)?,
            Expr::Binary(op, lhs, rhs) => {
                let (a, b) = (lhs.eval(env, line)?, rhs.eval(env, line)?);
                match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    '/' => a / b,
                    '^' => a.powf(b),
                    _ => unreachable!("lexer only produces the five operators"),
                }
            }
            Expr::Call(function, arg) => {
                let v = arg.eval(env, line)?;
                match function.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => {
                        return Err(QasmError::at(
                            line,
                            format!("unknown function \"{other}\" in expression"),
                        ))
                    }
                }
            }
        })
    }
}

/// An argument of a top-level operation: a whole register or one element.
#[derive(Debug, Clone)]
struct Argument {
    reg: String,
    index: Option<usize>,
    line: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: HashMap<String, QReg>,
    creg_sizes: HashMap<String, usize>,
    gates: HashMap<String, Rc<GateDef>>,
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self {
            tokens,
            pos: 0,
            qregs: HashMap::new(),
            creg_sizes: HashMap::new(),
            gates: HashMap::new(),
            num_qubits: 0,
            instructions: Vec::new(),
        }
    }

    // ----- token cursor ----------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    /// Line of the most recently consumed token (for errors at end of input).
    fn last_line(&self) -> usize {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map_or(1, |t| t.line)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn err_here(&self, message: impl Into<String>) -> QasmError {
        QasmError::at(self.line().max(self.last_line()), message)
    }

    fn expect_symbol(&mut self, want: char) -> Result<usize, QasmError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Symbol(c),
                line,
            }) if c == want => Ok(line),
            Some(token) => Err(QasmError::at(
                token.line,
                format!("expected '{want}', found {}", token.kind.describe()),
            )),
            None => Err(QasmError::at(
                self.last_line(),
                format!("expected '{want}', found end of input"),
            )),
        }
    }

    fn expect_id(&mut self, context: &str) -> Result<(String, usize), QasmError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Id(name),
                line,
            }) => Ok((name, line)),
            Some(token) => Err(QasmError::at(
                token.line,
                format!("expected {context}, found {}", token.kind.describe()),
            )),
            None => Err(QasmError::at(
                self.last_line(),
                format!("expected {context}, found end of input"),
            )),
        }
    }

    fn expect_nninteger(&mut self, context: &str) -> Result<(usize, usize), QasmError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(text),
                line,
            }) => text.parse::<usize>().map(|n| (n, line)).map_err(|_| {
                QasmError::at(
                    line,
                    format!("expected a non-negative integer {context}, found {text}"),
                )
            }),
            Some(token) => Err(QasmError::at(
                token.line,
                format!(
                    "expected a non-negative integer {context}, found {}",
                    token.kind.describe()
                ),
            )),
            None => Err(QasmError::at(
                self.last_line(),
                format!("expected a non-negative integer {context}, found end of input"),
            )),
        }
    }

    fn at_symbol(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenKind::Symbol(s)) if *s == c)
    }

    // ----- program ---------------------------------------------------------

    fn run(mut self) -> Result<QuantumCircuit, QasmError> {
        self.parse_header()?;
        while self.peek().is_some() {
            self.parse_statement()?;
        }
        // Pre-size the circuit: 100k-gate ingest must not re-grow the
        // instruction buffer while the range-checking push loop runs.
        let mut circuit = QuantumCircuit::with_capacity(self.num_qubits, self.instructions.len());
        for instruction in self.instructions.drain(..) {
            circuit.push(instruction);
        }
        Ok(circuit)
    }

    fn parse_header(&mut self) -> Result<(), QasmError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Id(word),
                line,
            }) if word == "OPENQASM" => {
                let version = match self.next() {
                    Some(Token {
                        kind: TokenKind::Number(text),
                        ..
                    }) => text,
                    _ => return Err(QasmError::at(line, "expected a version after OPENQASM")),
                };
                if version != "2.0" && version != "2" {
                    return Err(QasmError::at(
                        line,
                        format!("unsupported OPENQASM version {version} (only 2.0)"),
                    ));
                }
                self.expect_symbol(';')?;
                Ok(())
            }
            Some(token) => Err(QasmError::at(
                token.line,
                "expected the OPENQASM 2.0; header as the first statement",
            )),
            None => Err(QasmError::at(1, "empty OpenQASM source")),
        }
    }

    fn parse_statement(&mut self) -> Result<(), QasmError> {
        let (word, line) = match self.peek() {
            Some(TokenKind::Id(word)) => (word.clone(), self.line()),
            Some(other) => {
                return Err(
                    self.err_here(format!("expected a statement, found {}", other.describe()))
                )
            }
            None => return Ok(()),
        };
        match word.as_str() {
            "include" => self.parse_include(),
            "qreg" => self.parse_qreg(),
            "creg" => self.parse_creg(),
            "gate" => self.parse_gate_def(),
            "barrier" => self.parse_barrier(),
            "measure" => self.parse_measure(),
            "if" => Err(QasmError::at(
                line,
                "classical control (`if`) is not supported",
            )),
            "reset" => Err(QasmError::at(line, "`reset` is not supported")),
            "opaque" => Err(QasmError::at(line, "`opaque` gates are not supported")),
            "OPENQASM" => Err(QasmError::at(line, "duplicate OPENQASM header")),
            _ => self.parse_application(),
        }
    }

    fn parse_include(&mut self) -> Result<(), QasmError> {
        let (_, line) = self.expect_id("include")?;
        let filename = match self.next() {
            Some(Token {
                kind: TokenKind::Str(name),
                ..
            }) => name,
            _ => {
                return Err(QasmError::at(
                    line,
                    "expected a filename string after include",
                ))
            }
        };
        self.expect_symbol(';')?;
        if filename == "qelib1.inc" {
            // The standard library is resolved built-in; nothing to read.
            Ok(())
        } else {
            Err(QasmError::at(
                line,
                format!("unsupported include \"{filename}\" (only qelib1.inc)"),
            ))
        }
    }

    /// The shared body of `qreg`/`creg` declarations: consumes the keyword
    /// through the `;`, validates the size and that the name is fresh (one
    /// namespace for both register kinds), and returns `(name, size)`.
    fn parse_register_decl(&mut self) -> Result<(String, usize), QasmError> {
        let (_, _) = self.expect_id("a register keyword")?;
        let (name, line) = self.expect_id("a register name")?;
        self.expect_symbol('[')?;
        let (size, _) = self.expect_nninteger("register size")?;
        self.expect_symbol(']')?;
        self.expect_symbol(';')?;
        if size == 0 {
            return Err(QasmError::at(line, format!("register {name} has size 0")));
        }
        if self.qregs.contains_key(&name) || self.creg_sizes.contains_key(&name) {
            return Err(QasmError::at(
                line,
                format!("register {name} already declared"),
            ));
        }
        Ok((name, size))
    }

    fn parse_qreg(&mut self) -> Result<(), QasmError> {
        let (name, size) = self.parse_register_decl()?;
        self.qregs.insert(
            name,
            QReg {
                offset: self.num_qubits,
                size,
            },
        );
        self.num_qubits += size;
        Ok(())
    }

    fn parse_creg(&mut self) -> Result<(), QasmError> {
        let (name, size) = self.parse_register_decl()?;
        self.creg_sizes.insert(name, size);
        Ok(())
    }

    // ----- gate definitions ------------------------------------------------

    fn parse_gate_def(&mut self) -> Result<(), QasmError> {
        let (_, _) = self.expect_id("gate")?;
        let (name, line) = self.expect_id("a gate name")?;
        let params = if self.at_symbol('(') {
            self.expect_symbol('(')?;
            if self.at_symbol(')') {
                self.expect_symbol(')')?;
                Vec::new()
            } else {
                let list = self.parse_id_list("a parameter name")?;
                self.expect_symbol(')')?;
                list
            }
        } else {
            Vec::new()
        };
        let qargs = self.parse_id_list("a qubit argument name")?;
        self.expect_symbol('{')?;
        let mut body = Vec::new();
        loop {
            match self.peek() {
                None => {
                    return Err(QasmError::at(
                        line,
                        format!("unterminated gate body for \"{name}\""),
                    ))
                }
                Some(TokenKind::Symbol('}')) => {
                    self.expect_symbol('}')?;
                    break;
                }
                Some(TokenKind::Id(word)) if word == "barrier" => {
                    self.expect_id("barrier")?;
                    let list = self.parse_id_list("a qubit argument name")?;
                    self.expect_symbol(';')?;
                    body.push(GateOp::Barrier(list));
                }
                Some(TokenKind::Id(_)) => {
                    let (op_name, op_line) = self.expect_id("a gate name")?;
                    let exprs = if self.at_symbol('(') {
                        self.expect_symbol('(')?;
                        if self.at_symbol(')') {
                            self.expect_symbol(')')?;
                            Vec::new()
                        } else {
                            let list = self.parse_expr_list()?;
                            self.expect_symbol(')')?;
                            list
                        }
                    } else {
                        Vec::new()
                    };
                    let op_qargs = self.parse_id_list("a qubit argument name")?;
                    self.expect_symbol(';')?;
                    // Definition-time resolution: bind the callee now (the
                    // gate being defined is not yet in the table, so bodies
                    // can never recurse into themselves).
                    let resolved = self.gates.get(&op_name).cloned();
                    body.push(GateOp::Apply {
                        name: op_name,
                        line: op_line,
                        params: exprs,
                        qargs: op_qargs,
                        resolved,
                    });
                }
                Some(other) => {
                    return Err(
                        self.err_here(format!("unexpected {} in gate body", other.describe()))
                    )
                }
            }
        }
        // Later definitions shadow earlier ones (and built-ins) for the
        // *statements that follow them*, so corpora that textually re-define
        // standard gates still parse; bodies parsed before a shadowing
        // definition keep their original (definition-time) meaning.
        self.gates.insert(
            name,
            Rc::new(GateDef {
                params,
                qargs,
                body,
            }),
        );
        Ok(())
    }

    fn parse_id_list(&mut self, context: &str) -> Result<Vec<String>, QasmError> {
        let mut list = vec![self.expect_id(context)?.0];
        while self.at_symbol(',') {
            self.expect_symbol(',')?;
            list.push(self.expect_id(context)?.0);
        }
        Ok(list)
    }

    // ----- expressions -----------------------------------------------------

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>, QasmError> {
        let mut list = vec![self.parse_expr()?];
        while self.at_symbol(',') {
            self.expect_symbol(',')?;
            list.push(self.parse_expr()?);
        }
        Ok(list)
    }

    fn parse_expr(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_term()?;
        while matches!(self.peek(), Some(TokenKind::Symbol('+' | '-'))) {
            let Some(Token {
                kind: TokenKind::Symbol(op),
                ..
            }) = self.next()
            else {
                unreachable!("peeked symbol");
            };
            let rhs = self.parse_term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), Some(TokenKind::Symbol('*' | '/'))) {
            let Some(Token {
                kind: TokenKind::Symbol(op),
                ..
            }) = self.next()
            else {
                unreachable!("peeked symbol");
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Unary sign binds *looser* than `^` (matching Qiskit's OpenQASM 2
    /// precedence table): `-pi^2` is `-(pi^2)`, not `(-pi)^2`.
    fn parse_unary(&mut self) -> Result<Expr, QasmError> {
        if self.at_symbol('-') {
            self.expect_symbol('-')?;
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.at_symbol('+') {
            self.expect_symbol('+')?;
            return self.parse_unary();
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, QasmError> {
        let base = self.parse_primary()?;
        if self.at_symbol('^') {
            self.expect_symbol('^')?;
            // Right-associative, and the exponent may carry its own sign
            // (`2^-3`).
            let exponent = self.parse_unary()?;
            return Ok(Expr::Binary('^', Box::new(base), Box::new(exponent)));
        }
        Ok(base)
    }

    fn parse_primary(&mut self) -> Result<Expr, QasmError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(text),
                line,
            }) => text
                .parse::<f64>()
                .map(Expr::Num)
                .map_err(|_| QasmError::at(line, format!("invalid number literal {text}"))),
            Some(Token {
                kind: TokenKind::Id(name),
                ..
            }) => {
                if name == "pi" {
                    return Ok(Expr::Pi);
                }
                if self.at_symbol('(') {
                    self.expect_symbol('(')?;
                    let arg = self.parse_expr()?;
                    self.expect_symbol(')')?;
                    return Ok(Expr::Call(name, Box::new(arg)));
                }
                Ok(Expr::Ident(name))
            }
            Some(Token {
                kind: TokenKind::Symbol('('),
                ..
            }) => {
                let inner = self.parse_expr()?;
                self.expect_symbol(')')?;
                Ok(inner)
            }
            Some(token) => Err(QasmError::at(
                token.line,
                format!("expected an expression, found {}", token.kind.describe()),
            )),
            None => Err(QasmError::at(
                self.last_line(),
                "expected an expression, found end of input",
            )),
        }
    }

    // ----- top-level operations --------------------------------------------

    fn parse_argument(&mut self) -> Result<Argument, QasmError> {
        let (reg, line) = self.expect_id("a register argument")?;
        let index = if self.at_symbol('[') {
            self.expect_symbol('[')?;
            let (index, _) = self.expect_nninteger("index")?;
            self.expect_symbol(']')?;
            Some(index)
        } else {
            None
        };
        Ok(Argument { reg, index, line })
    }

    fn parse_argument_list(&mut self) -> Result<Vec<Argument>, QasmError> {
        let mut list = vec![self.parse_argument()?];
        while self.at_symbol(',') {
            self.expect_symbol(',')?;
            list.push(self.parse_argument()?);
        }
        Ok(list)
    }

    /// Resolves a quantum argument to flat qubit indices (`None` index means
    /// the whole register).
    fn resolve_qubits(&self, argument: &Argument) -> Result<Vec<usize>, QasmError> {
        let reg = self.qregs.get(&argument.reg).ok_or_else(|| {
            QasmError::at(
                argument.line,
                format!("unknown quantum register \"{}\"", argument.reg),
            )
        })?;
        match argument.index {
            Some(index) if index >= reg.size => Err(QasmError::at(
                argument.line,
                format!(
                    "qubit index {index} out of range for register {} of size {}",
                    argument.reg, reg.size
                ),
            )),
            Some(index) => Ok(vec![reg.offset + index]),
            None => Ok((reg.offset..reg.offset + reg.size).collect()),
        }
    }

    fn parse_barrier(&mut self) -> Result<(), QasmError> {
        let (_, line) = self.expect_id("barrier")?;
        let arguments = self.parse_argument_list()?;
        self.expect_symbol(';')?;
        let mut qubits = Vec::new();
        for argument in &arguments {
            qubits.extend(self.resolve_qubits(argument)?);
        }
        self.push_instruction(Gate::Barrier(qubits.len()), qubits, line)
    }

    fn parse_measure(&mut self) -> Result<(), QasmError> {
        let (_, line) = self.expect_id("measure")?;
        let source = self.parse_argument()?;
        match self.next() {
            Some(Token {
                kind: TokenKind::Arrow,
                ..
            }) => {}
            _ => return Err(QasmError::at(line, "expected '->' in measure statement")),
        }
        let target = self.parse_argument()?;
        self.expect_symbol(';')?;
        let qubits = self.resolve_qubits(&source)?;
        let creg_size = *self.creg_sizes.get(&target.reg).ok_or_else(|| {
            QasmError::at(
                target.line,
                format!("unknown classical register \"{}\"", target.reg),
            )
        })?;
        match target.index {
            Some(index) => {
                if index >= creg_size {
                    return Err(QasmError::at(
                        target.line,
                        format!(
                            "bit index {index} out of range for register {} of size {creg_size}",
                            target.reg
                        ),
                    ));
                }
                if qubits.len() != 1 {
                    return Err(QasmError::at(
                        line,
                        "cannot measure a whole register into a single bit",
                    ));
                }
            }
            None => {
                if qubits.len() != creg_size {
                    return Err(QasmError::at(
                        line,
                        format!(
                            "measure width mismatch: {} qubits into {creg_size} bits",
                            qubits.len()
                        ),
                    ));
                }
            }
        }
        for qubit in qubits {
            self.push_instruction(Gate::Measure, vec![qubit], line)?;
        }
        Ok(())
    }

    fn parse_application(&mut self) -> Result<(), QasmError> {
        let (name, line) = self.expect_id("a gate name")?;
        let params = if self.at_symbol('(') {
            self.expect_symbol('(')?;
            let exprs = if self.at_symbol(')') {
                Vec::new()
            } else {
                self.parse_expr_list()?
            };
            self.expect_symbol(')')?;
            let env = HashMap::new();
            exprs
                .iter()
                .map(|e| e.eval(&env, line))
                .collect::<Result<Vec<f64>, QasmError>>()?
        } else {
            Vec::new()
        };
        let arguments = self.parse_argument_list()?;
        self.expect_symbol(';')?;

        // Register broadcast: every whole-register argument must have the
        // same size `n`; the statement repeats `n` times with indexed
        // arguments fixed.
        let mut broadcast: Option<usize> = None;
        for argument in &arguments {
            if argument.index.is_none() {
                let size = self.resolve_qubits(argument)?.len();
                match broadcast {
                    None => broadcast = Some(size),
                    Some(existing) if existing != size => {
                        return Err(QasmError::at(
                            line,
                            format!("mismatched register sizes in broadcast: {existing} vs {size}"),
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        let repetitions = broadcast.unwrap_or(1);
        // Resolve each argument once; whole registers yield their full span.
        let resolved: Vec<Vec<usize>> = arguments
            .iter()
            .map(|a| self.resolve_qubits(a))
            .collect::<Result<_, _>>()?;
        for repetition in 0..repetitions {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|span| {
                    if span.len() == 1 {
                        span[0]
                    } else {
                        span[repetition]
                    }
                })
                .collect();
            // Top-level statements execute in order, so they resolve
            // against the table as it stands here.
            let resolved = self.gates.get(&name).cloned();
            self.emit_gate(&name, resolved, &params, &qubits, line, 0)?;
        }
        Ok(())
    }

    // ----- lowering --------------------------------------------------------

    /// Emits one gate application: user definitions (`resolved`) inline
    /// recursively through their definition-time bindings, built-ins lower
    /// through [`Gate::from_qasm_name`] (plus the `U`/`CX` primitives and
    /// the composite `cu3`/`u0`).
    fn emit_gate(
        &mut self,
        name: &str,
        resolved: Option<Rc<GateDef>>,
        params: &[f64],
        qubits: &[usize],
        line: usize,
        depth: usize,
    ) -> Result<(), QasmError> {
        if depth > MAX_EXPANSION_DEPTH {
            // Unreachable through well-formed sources (definition-time
            // binding rules out recursion), kept as a hard backstop.
            return Err(QasmError::at(
                line,
                format!("gate expansion too deep at \"{name}\""),
            ));
        }
        if let Some(def) = resolved {
            if params.len() != def.params.len() {
                return Err(QasmError::at(
                    line,
                    format!(
                        "gate {name} takes {} parameter(s), got {}",
                        def.params.len(),
                        params.len()
                    ),
                ));
            }
            if qubits.len() != def.qargs.len() {
                return Err(QasmError::at(
                    line,
                    format!(
                        "gate {name} acts on {} qubit(s), got {}",
                        def.qargs.len(),
                        qubits.len()
                    ),
                ));
            }
            let env: HashMap<String, f64> = def
                .params
                .iter()
                .cloned()
                .zip(params.iter().copied())
                .collect();
            let qubit_of: HashMap<&str, usize> = def
                .qargs
                .iter()
                .map(String::as_str)
                .zip(qubits.iter().copied())
                .collect();
            for op in &def.body {
                match op {
                    GateOp::Apply {
                        name: op_name,
                        line: op_line,
                        params: exprs,
                        qargs,
                        resolved: op_resolved,
                    } => {
                        let values = exprs
                            .iter()
                            .map(|e| e.eval(&env, *op_line))
                            .collect::<Result<Vec<f64>, QasmError>>()?;
                        let mapped = Self::map_formals(&qubit_of, qargs, name, *op_line)?;
                        self.emit_gate(
                            op_name,
                            op_resolved.clone(),
                            &values,
                            &mapped,
                            *op_line,
                            depth + 1,
                        )?;
                    }
                    GateOp::Barrier(qargs) => {
                        let mapped = Self::map_formals(&qubit_of, qargs, name, line)?;
                        self.push_instruction(Gate::Barrier(mapped.len()), mapped, line)?;
                    }
                }
            }
            return Ok(());
        }
        self.emit_builtin(name, params, qubits, line)
    }

    /// Maps formal qubit-argument names to concrete indices.
    fn map_formals(
        qubit_of: &HashMap<&str, usize>,
        qargs: &[String],
        gate: &str,
        line: usize,
    ) -> Result<Vec<usize>, QasmError> {
        qargs
            .iter()
            .map(|formal| {
                qubit_of.get(formal.as_str()).copied().ok_or_else(|| {
                    QasmError::at(
                        line,
                        format!("unknown qubit argument \"{formal}\" in gate {gate}"),
                    )
                })
            })
            .collect()
    }

    fn emit_builtin(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        line: usize,
    ) -> Result<(), QasmError> {
        let Some(&(_, want_params, want_qubits)) =
            BUILTINS.iter().find(|(known, _, _)| *known == name)
        else {
            return Err(QasmError::at(line, format!("unknown gate \"{name}\"")));
        };
        if params.len() != want_params {
            return Err(QasmError::at(
                line,
                format!(
                    "gate {name} takes {want_params} parameter(s), got {}",
                    params.len()
                ),
            ));
        }
        if qubits.len() != want_qubits {
            return Err(QasmError::at(
                line,
                format!(
                    "gate {name} acts on {want_qubits} qubit(s), got {}",
                    qubits.len()
                ),
            ));
        }
        match name {
            // The bare primitives of the language.
            "U" => self.push_instruction(
                Gate::U(params[0], params[1], params[2]),
                qubits.to_vec(),
                line,
            ),
            "CX" => self.push_instruction(Gate::Cx, qubits.to_vec(), line),
            // qelib1's idle/delay gate: identity (the duration parameter has
            // no circuit-level meaning here).
            "u0" => self.push_instruction(Gate::I, qubits.to_vec(), line),
            // Controlled-U3 has no single-gate equivalent in the IR; inline
            // the standard qelib1 decomposition.
            "cu3" => {
                let (theta, phi, lambda) = (params[0], params[1], params[2]);
                let (c, t) = (qubits[0], qubits[1]);
                self.push_instruction(Gate::Phase((lambda + phi) / 2.0), vec![c], line)?;
                self.push_instruction(Gate::Phase((lambda - phi) / 2.0), vec![t], line)?;
                self.push_instruction(Gate::Cx, vec![c, t], line)?;
                self.push_instruction(
                    Gate::U(-theta / 2.0, 0.0, -(phi + lambda) / 2.0),
                    vec![t],
                    line,
                )?;
                self.push_instruction(Gate::Cx, vec![c, t], line)?;
                self.push_instruction(Gate::U(theta / 2.0, phi, 0.0), vec![t], line)
            }
            _ => {
                let gate = Gate::from_qasm_name(name, params)
                    .ok_or_else(|| QasmError::at(line, format!("unknown gate \"{name}\"")))?;
                self.push_instruction(gate, qubits.to_vec(), line)
            }
        }
    }

    /// Validates qubit distinctness (so [`Instruction::new`] cannot panic)
    /// and appends the instruction.
    fn push_instruction(
        &mut self,
        gate: Gate,
        qubits: Vec<usize>,
        line: usize,
    ) -> Result<(), QasmError> {
        for (i, a) in qubits.iter().enumerate() {
            if qubits[i + 1..].contains(a) {
                return Err(QasmError::at(
                    line,
                    format!("duplicate qubit in {} application", gate.name()),
                ));
            }
        }
        self.instructions.push(Instruction::new(gate, qubits));
        Ok(())
    }
}
