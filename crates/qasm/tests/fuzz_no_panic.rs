//! The parser's no-panic guarantee: for *any* input — arbitrary bytes or
//! corrupted corpus files — `parse` returns `Ok` or a positioned
//! [`QasmError`], and never panics. The daemon feeds request bodies
//! straight into `parse`, so a panicking parser would be a remotely
//! triggerable crash; this suite is the fuzz harness pinning that down.

use nassc_qasm::{load_corpus, parse, QasmError};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Runs `parse` under `catch_unwind`, failing the test on any panic and
/// checking that errors carry a plausible source position.
fn assert_parse_never_panics(source: &str, context: &str) {
    let outcome = std::panic::catch_unwind(|| parse(source));
    let result: Result<_, QasmError> = outcome.unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("parse panicked on {context}: {message}\nsource:\n{source:?}");
    });
    if let Err(e) = result {
        // Every parse-side error is positioned: a 1-based line within the
        // input (+1 for end-of-input errors), never the "no position"
        // sentinel 0 reserved for export failures.
        let lines = source.lines().count();
        assert!(
            e.line >= 1 && e.line <= lines + 1,
            "unpositioned or out-of-range error line {} (input has {} lines) on {context}: {e}",
            e.line,
            lines
        );
    }
}

fn corpus_sources() -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/qasm");
    load_corpus(&dir)
        .expect("corpus directory readable")
        .into_iter()
        .map(|file| {
            let source = std::fs::read_to_string(&file.path).expect("corpus file readable");
            (file.name, source)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in vec(any::<u8>(), 0..512),
    ) {
        let source = String::from_utf8_lossy(&bytes);
        assert_parse_never_panics(&source, "arbitrary bytes");
    }

    #[test]
    fn arbitrary_ascii_soup_never_panics_the_parser(
        seed in 0u64..u64::MAX,
        len in 0usize..600,
    ) {
        // Biased soup: QASM-ish tokens and punctuation glued together reach
        // much deeper into the parser than uniform bytes do.
        const VOCAB: &[&str] = &[
            "OPENQASM", "2.0", ";", "qreg", "creg", "q", "c", "[", "]", "(", ")",
            "{", "}", ",", "->", "gate", "cx", "h", "rz", "u3", "measure",
            "barrier", "pi", "0", "1", "9999999999999999999", "-", "+", "*", "/",
            "^", ".", "\n", " ", "\t", "//", "include", "\"qelib1.inc\"", "if",
            "theta", "1e309", "0x41",
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut source = String::new();
        while source.len() < len {
            source.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        }
        assert_parse_never_panics(&source, "ascii soup");
    }

    #[test]
    fn mutated_corpus_files_never_panic_the_parser(
        seed in 0u64..u64::MAX,
    ) {
        let corpus = corpus_sources();
        prop_assert!(!corpus.is_empty(), "benchmark corpus is missing");
        let mut rng = StdRng::seed_from_u64(seed);
        let (name, source) = &corpus[rng.gen_range(0..corpus.len())];
        let mut bytes = source.clone().into_bytes();
        match rng.gen_range(0..3) {
            // Truncate: cut the file anywhere, mid-token included.
            0 => {
                let at = rng.gen_range(0..=bytes.len());
                bytes.truncate(at);
            }
            // Splice: copy a random window over another random position.
            1 if !bytes.is_empty() => {
                let src = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(0..=(bytes.len() - src).min(64));
                let window: Vec<u8> = bytes[src..src + len].to_vec();
                let dst = rng.gen_range(0..=bytes.len());
                bytes.splice(dst..dst, window);
            }
            // Bit-flip: corrupt up to 8 random bytes.
            _ if !bytes.is_empty() => {
                for _ in 0..rng.gen_range(1..=8) {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] ^= 1 << rng.gen_range(0..8);
                }
            }
            _ => {}
        }
        let mutated = String::from_utf8_lossy(&bytes);
        assert_parse_never_panics(&mutated, &format!("mutated corpus file {name}"));
    }
}

#[test]
fn pathological_fixed_inputs_never_panic() {
    // Hand-picked nasties: deep nesting, unterminated constructs, huge
    // numbers, null bytes, lone surrogates' replacement chars.
    let cases = [
        "",
        ";",
        "OPENQASM",
        "OPENQASM 2.0",
        "OPENQASM 2.0;\nqreg q[99999999999999999999];",
        "OPENQASM 2.0;\nqreg q[3];\ncx q[0], q[0];",
        "OPENQASM 2.0;\nqreg q[1];\nrz((((((((((pi)))))))))) q[0];",
        "OPENQASM 2.0;\nqreg q[1];\nrz(1e999999) q[0];",
        "OPENQASM 2.0;\ngate g a { g a; }\nqreg q[1];\ng q[0];",
        "OPENQASM 2.0;\nqreg q[2];\nmeasure q ->",
        "\u{0}\u{0}\u{0}",
        "OPENQASM 2.0;\nqreg q[1];\nh q[0]",
        "// only a comment",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\"",
    ];
    for source in cases {
        assert_parse_never_panics(source, "fixed pathological input");
    }
}
