//! Parser error paths: every rejection carries a positioned, descriptive
//! [`QasmError`] instead of a panic or a silently wrong circuit.

use nassc_qasm::parse;

/// Asserts that `source` fails to parse and the error mentions `fragment`
/// (and, when nonzero, points at `line`).
fn assert_error(source: &str, fragment: &str, line: usize) {
    match parse(source) {
        Ok(circuit) => panic!(
            "expected an error mentioning {fragment:?}, parsed {} gates\nsource:\n{source}",
            circuit.num_gates()
        ),
        Err(e) => {
            assert!(
                e.to_string().contains(fragment),
                "error {e:?} does not mention {fragment:?}\nsource:\n{source}"
            );
            if line > 0 {
                assert_eq!(e.line, line, "wrong line for {fragment:?}: {e}");
            }
        }
    }
}

#[test]
fn unterminated_gate_body() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\ngate foo a,b { cx a,b;\n",
        "unterminated gate body",
        3,
    );
}

#[test]
fn unknown_gate() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n",
        "unknown gate \"frobnicate\"",
        3,
    );
}

#[test]
fn register_overflow() {
    assert_error("OPENQASM 2.0;\nqreg q[2];\nx q[5];\n", "out of range", 3);
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q[0] -> c[7];\n",
        "out of range",
        4,
    );
}

#[test]
fn undeclared_registers() {
    assert_error("OPENQASM 2.0;\nx q[0];\n", "unknown quantum register", 2);
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nmeasure q[0] -> c[0];\n",
        "unknown classical register",
        3,
    );
}

#[test]
fn missing_or_wrong_header() {
    assert_error("qreg q[2];\n", "OPENQASM 2.0", 1);
    assert_error(
        "OPENQASM 3.0;\nqreg q[2];\n",
        "unsupported OPENQASM version",
        1,
    );
    assert_error("", "empty OpenQASM source", 0);
}

#[test]
fn unsupported_constructs_are_named() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) x q[0];\n",
        "classical control",
        4,
    );
    assert_error("OPENQASM 2.0;\nqreg q[1];\nreset q[0];\n", "`reset`", 3);
    assert_error("OPENQASM 2.0;\nopaque magic a,b;\n", "`opaque`", 2);
    assert_error(
        "OPENQASM 2.0;\ninclude \"mylib.inc\";\n",
        "unsupported include",
        2,
    );
}

#[test]
fn arity_mismatches() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\nrx q[0];\n",
        "takes 1 parameter(s), got 0",
        3,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\nh q[0],q[1];\n",
        "acts on 1 qubit(s), got 2",
        3,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[3];\ngate foo a,b { cx a,b; }\nfoo q[0];\n",
        "acts on 2 qubit(s), got 1",
        4,
    );
}

#[test]
fn duplicate_qubits_are_rejected_not_panicked() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n",
        "duplicate qubit",
        3,
    );
    // ...including duplicates that only appear after gate-body inlining.
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\ngate foo a,b { cx a,b; }\nfoo q[1],q[1];\n",
        "duplicate qubit",
        0,
    );
}

#[test]
fn broadcast_size_mismatch() {
    assert_error(
        "OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a,b;\n",
        "mismatched register sizes",
        4,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nmeasure q -> c;\n",
        "width mismatch",
        4,
    );
}

#[test]
fn self_referential_gate_definitions_cannot_recurse() {
    // Identifiers resolve at definition time, and a gate is not in scope
    // inside its own body — so a self-call is an unknown gate, not an
    // infinite expansion.
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\ngate loop a { loop a; }\nloop q[0];\n",
        "unknown gate \"loop\"",
        0,
    );
}

#[test]
fn malformed_declarations() {
    assert_error("OPENQASM 2.0;\nqreg q[0];\n", "size 0", 2);
    assert_error(
        "OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n",
        "already declared",
        3,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nqreg q[1];\n",
        "already declared",
        3,
    );
    assert_error("OPENQASM 2.0;\nqreg q[1.5];\n", "non-negative integer", 2);
}

#[test]
fn expression_errors() {
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nrz(theta) q[0];\n",
        "unknown parameter",
        3,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nrz(frob(2)) q[0];\n",
        "unknown function",
        3,
    );
    // An explicit empty list is an arity error, not a syntax error.
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nrz() q[0];\n",
        "takes 1 parameter(s), got 0",
        3,
    );
    assert_error(
        "OPENQASM 2.0;\nqreg q[1];\nrz(1+) q[0];\n",
        "expected an expression",
        3,
    );
}

#[test]
fn truncated_statements_point_at_the_end() {
    assert_error("OPENQASM 2.0;\nqreg q[2];\ncx q[0],", "end of input", 0);
    assert_error("OPENQASM 2.0;\nqreg q[2", "expected ']'", 0);
}
