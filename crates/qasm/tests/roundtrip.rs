//! The round-trip guarantee: `parse(export(c)) == c` structurally —
//! instruction for instruction, float parameters bit-for-bit — for every
//! circuit built from named gates (everything the transpiler can produce).

use nassc_circuit::{Gate, Instruction, QuantumCircuit};
use nassc_qasm::{export, parse};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Draws one random named-gate instruction on a `width`-qubit circuit.
///
/// Covers every gate family the exporter can spell: the full 1q/2q/3q named
/// set, measure and barrier. Parameters are raw `f64`s over several orders
/// of magnitude (including negatives and subnormal-ish tiny values), so the
/// test pins exact shortest-round-trip formatting rather than pretty angles.
fn random_instruction(rng: &mut StdRng, width: usize) -> Instruction {
    let angle = |rng: &mut StdRng| -> f64 {
        let magnitude = 10f64.powi(rng.gen_range(-18..4));
        rng.gen_range(-1.0f64..1.0) * magnitude
    };
    let qubits = |rng: &mut StdRng, n: usize| -> Vec<usize> {
        let mut picked: Vec<usize> = Vec::with_capacity(n);
        while picked.len() < n {
            let q = rng.gen_range(0..width);
            if !picked.contains(&q) {
                picked.push(q);
            }
        }
        picked
    };
    // Cap the choice pool by width so a narrow circuit never draws a gate
    // with more qubits than it has: 0–17 work at any width, the 2q gates
    // start at 18, the 3q gates at 29.
    let pool = match width {
        1 => 18,
        2 => 29,
        _ => 31,
    };
    let choice = rng.gen_range(0..pool);
    let (gate, arity) = match choice {
        0 => (Gate::Measure, 1),
        1 => {
            let n = rng.gen_range(1..=width.min(4));
            let qs = qubits(rng, n);
            return Instruction::new(Gate::Barrier(qs.len()), qs);
        }
        2 => (Gate::I, 1),
        3 => (Gate::X, 1),
        4 => (Gate::Y, 1),
        5 => (Gate::Z, 1),
        6 => (Gate::H, 1),
        7 => (Gate::S, 1),
        8 => (Gate::Sdg, 1),
        9 => (Gate::T, 1),
        10 => (Gate::Tdg, 1),
        11 => (Gate::Sx, 1),
        12 => (Gate::Sxdg, 1),
        13 => (Gate::Rx(angle(rng)), 1),
        14 => (Gate::Ry(angle(rng)), 1),
        15 => (Gate::Rz(angle(rng)), 1),
        16 => (Gate::Phase(angle(rng)), 1),
        17 => (Gate::U(angle(rng), angle(rng), angle(rng)), 1),
        18 => (Gate::Cx, 2),
        19 => (Gate::Cy, 2),
        20 => (Gate::Cz, 2),
        21 => (Gate::Ch, 2),
        22 => (Gate::Swap, 2),
        23 => (Gate::Crx(angle(rng)), 2),
        24 => (Gate::Cry(angle(rng)), 2),
        25 => (Gate::Crz(angle(rng)), 2),
        26 => (Gate::Cp(angle(rng)), 2),
        27 => (Gate::Rxx(angle(rng)), 2),
        28 => (Gate::Rzz(angle(rng)), 2),
        29 => (Gate::Ccx, 3),
        _ => (Gate::Cswap, 3),
    };
    let qs = qubits(rng, arity);
    Instruction::new(gate, qs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn export_parse_is_structural_identity(
        seed in 0u64..u64::MAX,
        width in 1usize..9,
        gates in 1usize..60,
    ) {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circuit = QuantumCircuit::new(width);
        for _ in 0..gates {
            let instruction = random_instruction(&mut rng, width);
            circuit.push(instruction);
        }
        let qasm = export(&circuit).unwrap();
        let reparsed = parse(&qasm).unwrap_or_else(|e| {
            panic!("re-parse failed: {e}\nprogram:\n{qasm}")
        });
        prop_assert_eq!(&reparsed, &circuit);
        // And a second hop stays fixed: export is idempotent on its own output.
        prop_assert_eq!(export(&reparsed).unwrap(), qasm);
    }
}

#[test]
fn empty_and_gateless_circuits_round_trip() {
    for width in [0usize, 1, 5] {
        let circuit = QuantumCircuit::new(width);
        let qasm = export(&circuit).unwrap();
        assert_eq!(parse(&qasm).unwrap(), circuit, "width {width}");
    }
}

#[test]
fn extreme_float_parameters_round_trip_exactly() {
    let angles = [
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        f64::EPSILON,
        1.0 + f64::EPSILON,
        std::f64::consts::PI,
        -std::f64::consts::PI,
        1e308,
        -1e-308,
        0.1 + 0.2, // the classic non-representable sum
        0.0,
        -0.0,
    ];
    let mut circuit = QuantumCircuit::new(1);
    for angle in angles {
        circuit.rz(angle, 0);
    }
    let reparsed = parse(&export(&circuit).unwrap()).unwrap();
    for (original, reparsed) in circuit.iter().zip(reparsed.iter()) {
        let (a, b) = (original.gate.params()[0], reparsed.gate.params()[0]);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "angle {a:?} did not survive the round trip (got {b:?})"
        );
    }
}
