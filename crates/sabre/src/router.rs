//! The SWAP-insertion routing engine.
//!
//! The engine implements the SABRE traversal (front layer / extended layer /
//! decay, eager execution of gates that already fit the device) and delegates
//! the *scoring* of SWAP candidates to a [`SwapPolicy`]. The plain SABRE
//! heuristic is provided here as [`SabrePolicy`]; the NASSC crate plugs in
//! its optimization-aware cost function through the same interface.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use nassc_circuit::{DagCircuit, Gate, QuantumCircuit};
use nassc_topology::{CouplingMap, DistanceMatrix, Layout};

use crate::config::SabreConfig;

/// Read-only view of the router's state handed to a [`SwapPolicy`] when
/// scoring a SWAP candidate.
#[derive(Debug)]
pub struct RoutingContext<'a> {
    /// The device connectivity.
    pub coupling: &'a CouplingMap,
    /// The distance matrix used by the heuristic (plain or noise-aware).
    pub distances: &'a DistanceMatrix,
    /// The current logical→physical layout (before the candidate SWAP).
    pub layout: &'a Layout,
    /// DAG node ids of the unroutable two-qubit gates in the front layer.
    pub front: &'a [usize],
    /// DAG node ids of the lookahead (extended) layer.
    pub extended: &'a [usize],
    /// The logical circuit's dependency DAG.
    pub dag: &'a DagCircuit,
    /// The physical circuit emitted so far (resolved gates and earlier SWAPs).
    pub output: &'a QuantumCircuit,
    /// The heuristic configuration.
    pub config: &'a SabreConfig,
}

impl RoutingContext<'_> {
    /// The summed front-layer distance under a layout.
    pub fn front_distance(&self, layout: &Layout) -> f64 {
        self.front
            .iter()
            .map(|&node| {
                let inst = &self.dag.node(node).instruction;
                let a = layout.physical_of(inst.qubits[0]);
                let b = layout.physical_of(inst.qubits[1]);
                self.distances.weight(a, b)
            })
            .sum()
    }

    /// The summed extended-layer distance under a layout.
    pub fn extended_distance(&self, layout: &Layout) -> f64 {
        self.extended
            .iter()
            .map(|&node| {
                let inst = &self.dag.node(node).instruction;
                let a = layout.physical_of(inst.qubits[0]);
                let b = layout.physical_of(inst.qubits[1]);
                self.distances.weight(a, b)
            })
            .sum()
    }

    /// The layout obtained by applying the candidate SWAP.
    pub fn layout_after_swap(&self, p1: usize, p2: usize) -> Layout {
        let mut trial = self.layout.clone();
        trial.swap_physical(p1, p2);
        trial
    }

    /// SABRE's lookahead distance term: normalised front-layer distance plus
    /// the weighted, normalised extended-layer distance, evaluated after the
    /// candidate SWAP.
    pub fn lookahead_cost(&self, p1: usize, p2: usize) -> f64 {
        let trial = self.layout_after_swap(p1, p2);
        let front_len = self.front.len().max(1) as f64;
        let front_term = self.front_distance(&trial) / front_len;
        let extended_term = if self.extended.is_empty() {
            0.0
        } else {
            self.config.extended_set_weight * self.extended_distance(&trial)
                / self.extended.len() as f64
        };
        front_term + extended_term
    }
}

/// Scoring hook for SWAP candidates plus emission callbacks.
///
/// Lower scores are better. The engine multiplies the returned score by the
/// SABRE decay factor of the two physical qubits before comparing.
pub trait SwapPolicy {
    /// Scores the SWAP on physical qubits `(p1, p2)`.
    fn score(&mut self, ctx: &RoutingContext<'_>, p1: usize, p2: usize) -> f64;

    /// Called just before the SWAP instruction is appended to the output,
    /// allowing the policy to rearrange trailing gates (NASSC moves
    /// single-qubit gates through the SWAP here).
    fn before_swap_emit(
        &mut self,
        _output: &mut QuantumCircuit,
        _layout: &Layout,
        _p1: usize,
        _p2: usize,
    ) {
    }

    /// Called after the SWAP has been appended at `swap_index`. The output
    /// is mutable so policies can re-append gates they detached in
    /// [`SwapPolicy::before_swap_emit`] (e.g. single-qubit gates commuted
    /// through the SWAP).
    fn after_swap_emit(
        &mut self,
        _output: &mut QuantumCircuit,
        _swap_index: usize,
        _p1: usize,
        _p2: usize,
    ) {
    }
}

/// The plain SABRE heuristic: front-layer distance with extended-layer
/// lookahead (Li et al., ASPLOS 2019) — the paper's baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SabrePolicy;

impl SwapPolicy for SabrePolicy {
    fn score(&mut self, ctx: &RoutingContext<'_>, p1: usize, p2: usize) -> f64 {
        ctx.lookahead_cost(p1, p2)
    }
}

/// The product of routing a circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// The physical circuit: resolved gates plus inserted SWAPs (kept as
    /// `swap` instructions so later passes can decompose them as they wish).
    pub circuit: QuantumCircuit,
    /// The layout in force before the first gate.
    pub initial_layout: Layout,
    /// The layout in force after the last gate (differs from the initial one
    /// by the net effect of the inserted SWAPs).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Routes a logical circuit with the given SWAP policy.
///
/// Every gate of the output acts on physical qubits and every two-qubit gate
/// respects the coupling map (inserted SWAPs included).
///
/// # Panics
///
/// Panics when the device is smaller than the circuit, the coupling graph is
/// disconnected, or routing fails to make progress (which would indicate an
/// internal bug).
pub fn route_with_policy<P: SwapPolicy>(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    policy: &mut P,
    rng: &mut StdRng,
) -> RoutingResult {
    assert!(
        circuit.num_qubits() <= coupling.num_qubits(),
        "circuit needs {} qubits but the device has {}",
        circuit.num_qubits(),
        coupling.num_qubits()
    );
    let dag = DagCircuit::from_circuit(circuit);
    let mut in_deg = dag.in_degrees();
    let mut executed = vec![false; dag.num_nodes()];
    let mut ready: Vec<usize> = dag.front_layer();
    let mut layout = initial_layout.clone();
    let mut output = QuantumCircuit::new(coupling.num_qubits());
    let mut decay = vec![1.0_f64; coupling.num_qubits()];
    let mut swaps_since_reset = 0usize;
    let mut swap_count = 0usize;
    let mut remaining = dag.num_nodes();

    let max_swaps = 10 + 20 * dag.num_nodes() * coupling.num_qubits();
    let mut total_swaps_guard = 0usize;

    while remaining > 0 {
        // Execute everything that fits under the current layout.
        let mut progress = true;
        while progress {
            progress = false;
            let mut next_ready = Vec::new();
            for &node in &ready {
                if executed[node] {
                    continue;
                }
                let inst = &dag.node(node).instruction;
                let runnable = if inst.is_two_qubit() {
                    let a = layout.physical_of(inst.qubits[0]);
                    let b = layout.physical_of(inst.qubits[1]);
                    coupling.are_connected(a, b)
                } else {
                    true
                };
                if runnable {
                    output.push(inst.map_qubits(|q| layout.physical_of(q)));
                    executed[node] = true;
                    remaining -= 1;
                    progress = true;
                    for &succ in dag.node(node).successors() {
                        in_deg[succ] -= 1;
                        if in_deg[succ] == 0 {
                            next_ready.push(succ);
                        }
                    }
                } else {
                    next_ready.push(node);
                }
            }
            ready = next_ready;
            ready.sort_unstable();
            ready.dedup();
        }
        if remaining == 0 {
            break;
        }

        // The remaining ready gates are two-qubit gates that need SWAPs.
        let front: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&n| !executed[n] && dag.node(n).instruction.is_two_qubit())
            .collect();
        assert!(
            !front.is_empty(),
            "routing stalled: unresolved gates remain but the front layer is empty"
        );
        let extended = collect_extended_set(&dag, &front, &executed, config.extended_set_size);

        // Candidate SWAPs: every coupling edge incident to a front-layer qubit.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &node in &front {
            for &logical in &dag.node(node).instruction.qubits {
                let p = layout.physical_of(logical);
                for &n in coupling.neighbors(p) {
                    let edge = (p.min(n), p.max(n));
                    if !candidates.contains(&edge) {
                        candidates.push(edge);
                    }
                }
            }
        }
        candidates.shuffle(rng);

        let ctx = RoutingContext {
            coupling,
            distances,
            layout: &layout,
            front: &front,
            extended: &extended,
            dag: &dag,
            output: &output,
            config,
        };
        let mut best: Option<((usize, usize), f64)> = None;
        for &(p1, p2) in &candidates {
            let raw = policy.score(&ctx, p1, p2);
            let score = raw * decay[p1].max(decay[p2]);
            if best.is_none_or(|(_, b)| score < b) {
                best = Some(((p1, p2), score));
            }
        }
        let ((p1, p2), _) = best.expect("at least one SWAP candidate");

        policy.before_swap_emit(&mut output, &layout, p1, p2);
        output.push(nassc_circuit::Instruction::new(Gate::Swap, vec![p1, p2]));
        let swap_index = output.num_gates() - 1;
        policy.after_swap_emit(&mut output, swap_index, p1, p2);
        layout.swap_physical(p1, p2);
        swap_count += 1;
        total_swaps_guard += 1;
        assert!(
            total_swaps_guard <= max_swaps,
            "routing exceeded the SWAP budget; the coupling graph may be disconnected"
        );
        decay[p1] += config.decay_delta;
        decay[p2] += config.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    RoutingResult {
        circuit: output,
        initial_layout: initial_layout.clone(),
        final_layout: layout,
        swap_count,
    }
}

/// Routes with the plain SABRE heuristic.
pub fn sabre_route(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    distances: &DistanceMatrix,
    initial_layout: &Layout,
    config: &SabreConfig,
    rng: &mut StdRng,
) -> RoutingResult {
    route_with_policy(
        circuit,
        coupling,
        distances,
        initial_layout,
        config,
        &mut SabrePolicy,
        rng,
    )
}

/// Collects up to `limit` not-yet-executed two-qubit gates reachable from the
/// front layer — the lookahead (extended) layer.
fn collect_extended_set(
    dag: &DagCircuit,
    front: &[usize],
    executed: &[bool],
    limit: usize,
) -> Vec<usize> {
    let mut extended = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
    let mut seen: std::collections::HashSet<usize> = front.iter().copied().collect();
    while let Some(node) = queue.pop_front() {
        if extended.len() >= limit {
            break;
        }
        for &succ in dag.node(node).successors() {
            if seen.insert(succ) && !executed[succ] {
                if dag.node(succ).instruction.is_two_qubit() {
                    extended.push(succ);
                    if extended.len() >= limit {
                        break;
                    }
                }
                queue.push_back(succ);
            }
        }
    }
    extended
}

/// Returns a uniformly random tie-broken integer in `0..n` (helper for
/// policies that need reproducible randomness).
pub fn random_index(rng: &mut StdRng, n: usize) -> usize {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nassc_circuit::circuits_equivalent_up_to_permutation;
    use nassc_passes::is_mapped;
    use rand::SeedableRng;

    fn route(circuit: &QuantumCircuit, coupling: &CouplingMap, seed: u64) -> RoutingResult {
        let config = SabreConfig::with_seed(seed);
        let distances = coupling.distance_matrix();
        let layout = Layout::trivial(coupling.num_qubits());
        let mut rng = StdRng::seed_from_u64(seed);
        sabre_route(circuit, coupling, &distances, &layout, &config, &mut rng)
    }

    /// Expands SWAPs so the equivalence checker sees plain unitaries and
    /// verifies the routed circuit implements the original (up to the final
    /// qubit permutation induced by the SWAPs and layout).
    fn assert_routing_preserves_semantics(original: &QuantumCircuit, result: &RoutingResult) {
        // Embed the original on the device width with the initial layout.
        let device_width = result.circuit.num_qubits();
        let embedded = original.map_qubits(device_width, |q| result.initial_layout.physical_of(q));
        let perm = result.initial_layout.permutation_to(&result.final_layout);
        // The routed circuit applies: initial-embedding followed by extra
        // SWAPs, so original ∘ permutation == routed.
        assert!(
            circuits_equivalent_up_to_permutation(&embedded, &result.circuit, &perm, 1e-7),
            "routing changed circuit semantics"
        );
    }

    #[test]
    fn already_mapped_circuit_needs_no_swaps() {
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let result = route(&qc, &line, 1);
        assert_eq!(result.swap_count, 0);
        assert_eq!(result.circuit.num_gates(), 3);
    }

    #[test]
    fn routes_distant_cnot_on_a_line() {
        let line = CouplingMap::linear(4);
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3);
        let result = route(&qc, &line, 3);
        assert!(result.swap_count >= 2);
        assert!(is_mapped(&result.circuit, &line));
        assert_routing_preserves_semantics(&qc, &result);
    }

    #[test]
    fn figure1_linear_example_routes_with_one_swap() {
        // The paper's Figure 1: gates on (1,2), (0,1), (0,2) on a 3-qubit line.
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(3);
        qc.cx(1, 2).cx(0, 1).cx(0, 2);
        let result = route(&qc, &line, 5);
        assert_eq!(result.swap_count, 1);
        assert!(is_mapped(&result.circuit, &line));
        assert_routing_preserves_semantics(&qc, &result);
    }

    #[test]
    fn routing_preserves_semantics_on_random_circuits() {
        use rand::Rng;
        let grid = CouplingMap::grid(2, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let mut qc = QuantumCircuit::new(5);
            for _ in 0..15 {
                let a = rng.gen_range(0..5);
                let b = (a + rng.gen_range(1..5)) % 5;
                if rng.gen_bool(0.3) {
                    qc.h(a);
                } else {
                    qc.cx(a, b);
                }
            }
            let result = route(&qc, &grid, trial as u64);
            assert!(
                is_mapped(&result.circuit, &grid),
                "trial {trial} not mapped"
            );
            assert_routing_preserves_semantics(&qc, &result);
        }
    }

    #[test]
    fn measurements_are_mapped_to_physical_qubits() {
        let line = CouplingMap::linear(3);
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).measure(0).measure(1);
        let mut layout = Layout::trivial(3);
        layout.swap_physical(0, 2);
        let config = SabreConfig::default();
        let distances = line.distance_matrix();
        let mut rng = StdRng::seed_from_u64(0);
        let result = sabre_route(&qc, &line, &distances, &layout, &config, &mut rng);
        let measures: Vec<_> = result
            .circuit
            .iter()
            .filter(|i| i.gate == Gate::Measure)
            .map(|i| i.qubits[0])
            .collect();
        assert_eq!(measures.len(), 2);
        assert!(measures.contains(&2) || measures.contains(&1));
    }

    #[test]
    fn extended_set_respects_limit() {
        let mut qc = QuantumCircuit::new(6);
        for i in 0..5 {
            qc.cx(i, i + 1);
        }
        let dag = DagCircuit::from_circuit(&qc);
        let executed = vec![false; dag.num_nodes()];
        let extended = collect_extended_set(&dag, &[0], &executed, 2);
        assert!(extended.len() <= 2);
    }
}
